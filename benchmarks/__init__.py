"""Benchmark harness regenerating every figure/table of the paper's evaluation."""
