"""Ablation (beyond the paper's figures): translated triggers vs. the
MATERIALIZED design the introduction argues against.

The MATERIALIZED baseline re-materializes the monitored path on every
relational update, regardless of whether any trigger is interested — its cost
scales with the view size, while the translated approach only pays for the
affected element.
"""

import pytest

from repro.core.service import ExecutionMode
from benchmarks.common import BENCH_DEFAULTS, time_updates

MODES = [ExecutionMode.GROUPED_AGG, ExecutionMode.GROUPED, "materialized"]


@pytest.mark.parametrize("mode", MODES)
def test_ablation_vs_materialized(benchmark, mode):
    benchmark.group = "ablation-materialized"
    parameters = BENCH_DEFAULTS.with_(
        leaf_tuples=max(512, BENCH_DEFAULTS.leaf_tuples // 4),
        num_triggers=20,
        satisfied_triggers=5,
    )
    rounds = 3 if mode == "materialized" else 10
    runner = time_updates(benchmark, parameters, mode, rounds=rounds)
    assert runner.fired > 0
