"""SQLite execution backend vs the in-memory engines on the Figure 17 stress.

PR 5 adds :mod:`repro.backends.sqlite`: base tables are mirrored into
SQLite via the commit-listener delta stream, and the generated trigger
plans run there as lowered ``WITH ... SELECT`` statements (JSON node
construction + a Python finishing pass).  This benchmark drives the same
scaled Figure 17 trigger population as ``bench_eval_hotpath`` through all
**three** engines —

* ``interpreted`` — the dictionary-row oracle evaluator,
* ``compiled``    — the slot-tuple physical plans with the result cache,
* ``sqlite``      — the lowered statements executed inside SQLite,

— and asserts two things: the activation logs are identical across engines
(every plan lowered, zero fallbacks), and the backend's per-update cost
stays within a sane constant factor of the interpreted evaluator.  The
backend pays per firing for materializing transition temp tables and
finishing JSON into XML, so it is not expected to beat the compiled
engine; what matters is that a *real external engine* executes the
translated SQL at comparable cost, which is the paper's actual deployment
shape (triggers inside the RDBMS).

Run with pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_backend_sqlite.py -q

or standalone for the three-way comparison (records the trajectory)::

    PYTHONPATH=src python -m benchmarks.bench_backend_sqlite
"""

import time

from repro.core.service import ExecutionMode
from repro.workloads import ExperimentHarness, WorkloadParameters

from benchmarks.common import BENCH_SCALE, record_result

#: Figure-17-style population (scaled), same shape as the hot-path gate.
BACKEND_PARAMETERS = WorkloadParameters(
    depth=2,
    leaf_tuples=max(256, int(4_096 * BENCH_SCALE)),
    fanout=32,
    num_triggers=max(8, int(50 * BENCH_SCALE)),
    satisfied_triggers=min(20, max(4, int(20 * BENCH_SCALE))),
    seed=42,
)

_CHECK_STATEMENTS = 30
_WARMUP_STATEMENTS = 5

#: The backend must stay within this factor of the interpreted evaluator
#: per update (generous: it covers temp-table churn, JSON finishing, and
#: scheduler noise on a loaded CI runner, while still catching an
#: accidental O(table) scan slipping into the per-firing path).
_MAX_SLOWDOWN_VS_INTERPRETED = 8.0


def _run(engine: str, parameters: WorkloadParameters = BACKEND_PARAMETERS,
         statements: int = _CHECK_STATEMENTS, mode=ExecutionMode.GROUPED_AGG):
    """Time ``statements`` updates on one engine; returns (seconds, log, setup)."""
    harness = ExperimentHarness(parameters, updates=1)
    setup = harness.build_setup(
        parameters,
        mode,
        use_compiled_plans=(engine == "compiled"),
        backend="sqlite" if engine == "sqlite" else None,
    )
    if engine == "sqlite":
        errors = setup.service.backend_lowering_errors()
        assert not errors, f"lowering fallbacks would skew the comparison: {errors}"
    pool = setup.workload.update_statements(
        statements + _WARMUP_STATEMENTS, setup.database
    )
    for statement in pool[:_WARMUP_STATEMENTS]:
        setup.run_statement(statement)
    mark = len(setup.service.fired)
    started = time.perf_counter()
    for statement in pool[_WARMUP_STATEMENTS:]:
        setup.run_statement(statement)
    elapsed = time.perf_counter() - started
    log = sorted((f.trigger, f.key) for f in setup.service.fired[mark:])
    return elapsed, log, setup


def test_sqlite_backend_matches_in_memory_engines():
    """Acceptance gate: identical activations, all plans lowered, no fallback."""
    _, interpreted_log, _ = _run("interpreted")
    _, compiled_log, _ = _run("compiled")
    _, sqlite_log, setup = _run("sqlite")
    assert sqlite_log == interpreted_log == compiled_log
    assert sqlite_log, "the gate is vacuous if nothing fired"
    report = setup.service.evaluation_report()
    assert report["backend_lowering_fallbacks"] == 0
    assert report["backend_statements"] > 0


def test_sqlite_backend_cost_is_bounded():
    """The external engine stays within a constant factor of the oracle."""
    best = float("inf")
    for _ in range(3):  # best-of-3 shields the ratio from scheduler noise
        interpreted, _, _ = _run("interpreted")
        on_sqlite, _, _ = _run("sqlite")
        best = min(best, on_sqlite / interpreted)
        if best <= _MAX_SLOWDOWN_VS_INTERPRETED / 2:
            break
    assert best <= _MAX_SLOWDOWN_VS_INTERPRETED, (
        f"sqlite backend is {best:.1f}x the interpreted evaluator "
        f"(allowed {_MAX_SLOWDOWN_VS_INTERPRETED}x)"
    )


def main() -> None:  # pragma: no cover - CLI convenience
    record: dict = {
        "statements": _CHECK_STATEMENTS,
        "num_triggers": BACKEND_PARAMETERS.num_triggers,
    }
    logs = {}
    for engine in ("interpreted", "compiled", "sqlite"):
        elapsed, log, setup = _run(engine)
        logs[engine] = log
        extra = ""
        if engine == "sqlite":
            report = setup.service.evaluation_report()
            extra = (
                f"   backend stmts {report['backend_statements']}"
                f"   fallbacks {report['backend_lowering_fallbacks']}"
            )
        print(
            f"{engine:>12}: {_CHECK_STATEMENTS} updates, {len(log)} firings  "
            f"{elapsed * 1000:8.1f} ms  "
            f"({elapsed * 1000 / _CHECK_STATEMENTS:6.2f} ms/update){extra}"
        )
        record[f"{engine}_ms"] = round(elapsed * 1000, 2)
    assert logs["interpreted"] == logs["compiled"] == logs["sqlite"]
    print("equivalence (interpreted == compiled == sqlite activations): OK")
    test_sqlite_backend_cost_is_bounded()
    print(f"cost-bound assertion (<= {_MAX_SLOWDOWN_VS_INTERPRETED}x interpreted): OK")
    print("trajectory:", record_result(
        "backend_sqlite", record,
        headline="sqlite_ms", higher_is_better=False,
    ))


if __name__ == "__main__":  # pragma: no cover
    main()
