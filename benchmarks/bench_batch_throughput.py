"""Batch execution engine: set-at-a-time `execute_batch` vs the per-statement loop.

The paper's middleware compiles XML triggers into *statement-level* SQL
triggers precisely so updates are handled set-at-a-time (Section 2.3); the
batch engine extends that granularity from one statement to a whole batch of
statements.  This benchmark drives the Figure 17 default workload (independent
leaf updates under one monitored top element, 20 satisfied triggers) through
both paths:

* ``per-statement`` — the classic loop: every UPDATE fires the generated SQL
  trigger, which evaluates the pushed-down plan and activates the satisfied
  XML triggers; N statements → N plan evaluations.
* ``batched`` — the same statements submitted via
  ``ActiveViewService.execute_batch``: the per-statement deltas are coalesced
  into one net transition-table pair and the plan is evaluated **once**, so
  trigger-processing cost is amortized over the whole batch.

Expected result: batched throughput beats the per-statement loop by well over
2x at batch size 20 (the gap widens with batch size, because the plan
evaluation and trigger activation dominate the raw row-update cost).

Run with pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_batch_throughput.py -q

or standalone for a quick text comparison (also asserts the >= 2x speedup)::

    PYTHONPATH=src python -m benchmarks.bench_batch_throughput
"""

import time

import pytest

from repro.core.service import ExecutionMode
from benchmarks.common import BENCH_DEFAULTS, build_setup, time_batches

BATCH_SIZES = [5, 20, 100]

#: Statements per timed comparison round in the speedup check.
_CHECK_STATEMENTS = 100


@pytest.mark.parametrize("mode", [ExecutionMode.GROUPED, ExecutionMode.GROUPED_AGG])
def test_batch_per_statement_baseline(benchmark, mode):
    """The per-statement loop, expressed as a batch of size 1 for comparability."""
    benchmark.group = "batch-throughput"
    runner = time_batches(benchmark, BENCH_DEFAULTS, mode, batch_size=1)
    assert runner.fired > 0


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize("mode", [ExecutionMode.GROUPED, ExecutionMode.GROUPED_AGG])
def test_batch_sizes(benchmark, mode, batch_size):
    """Set-oriented execution at growing batch sizes (time is per *batch*)."""
    benchmark.group = "batch-throughput"
    benchmark.extra_info["batch_size"] = batch_size
    runner = time_batches(benchmark, BENCH_DEFAULTS, mode, batch_size=batch_size)
    assert runner.fired > 0


def _time_paths(mode=ExecutionMode.GROUPED_AGG, statements=_CHECK_STATEMENTS):
    """Time the same workload per-statement and batched; returns seconds pairs."""
    setup_seq, pool_seq = build_setup(BENCH_DEFAULTS, mode)
    started = time.perf_counter()
    for statement in pool_seq[:statements]:
        setup_seq.run_statement(statement)
    sequential = time.perf_counter() - started

    setup_bat, pool_bat = build_setup(BENCH_DEFAULTS, mode)
    started = time.perf_counter()
    setup_bat.run_batch(pool_bat[:statements])
    batched = time.perf_counter() - started
    return sequential, batched, setup_seq, setup_bat


def test_batched_beats_per_statement_by_2x():
    """Acceptance check: one batch of N updates is >= 2x faster than N statements."""
    best = 0.0
    for _ in range(3):  # best-of-3 shields the ratio from scheduler noise
        sequential, batched, setup_seq, setup_bat = _time_paths()
        assert setup_seq.fired_count > 0 and setup_bat.fired_count > 0
        # Both paths leave the database in the same state.
        assert setup_seq.database.snapshot() == setup_bat.database.snapshot()
        best = max(best, sequential / batched)
        if best >= 2.0:
            break
    assert best >= 2.0, f"batched path only {best:.2f}x faster than per-statement"


def main() -> None:  # pragma: no cover - CLI convenience
    from benchmarks.common import record_result

    record: dict = {"statements": _CHECK_STATEMENTS}
    for mode in (ExecutionMode.GROUPED, ExecutionMode.GROUPED_AGG):
        sequential, batched, *_ = _time_paths(mode)
        print(
            f"{mode.value:>12}: {_CHECK_STATEMENTS} updates  "
            f"per-statement {sequential * 1000:8.1f} ms   "
            f"batched {batched * 1000:8.1f} ms   "
            f"speedup {sequential / batched:5.1f}x"
        )
        record[mode.value] = {
            "per_statement_ms": round(sequential * 1000, 2),
            "batched_ms": round(batched * 1000, 2),
            "speedup": round(sequential / batched, 2),
        }
    test_batched_beats_per_statement_by_2x()
    print("speedup assertion (>= 2x): OK")
    print("trajectory:", record_result(
        "batch_throughput", record,
        headline="grouped_agg.batched_ms", higher_is_better=False,
    ))


if __name__ == "__main__":  # pragma: no cover
    main()
