"""Section 6 compile-time claim: translating an XML trigger takes ~100 ms
(once, at creation time), even for complex views.

The benchmark times ``ActiveViewService.create_trigger`` — parsing, view
composition, event pushdown, affected-node graph generation, grouping, and
SQL-trigger generation — for views of increasing depth.
"""

import itertools

import pytest

from repro.core.service import ActiveViewService, ExecutionMode
from repro.workloads import HierarchyWorkload
from benchmarks.common import BENCH_DEFAULTS


@pytest.mark.parametrize("depth", [2, 3, 5])
def test_trigger_compile_time(benchmark, depth):
    benchmark.group = f"compile-depth-{depth}"
    parameters = BENCH_DEFAULTS.with_(depth=depth, num_triggers=1, satisfied_triggers=1)
    workload = HierarchyWorkload(parameters)
    database = workload.build_database()
    service = ActiveViewService(database, mode=ExecutionMode.GROUPED_AGG)
    service.register_view(workload.build_view())
    service.register_action("collect", lambda node: None)
    definitions = HierarchyWorkload(
        parameters.with_(num_triggers=BENCH_DEFAULTS.num_triggers)
    ).trigger_definitions()
    counter = itertools.count()

    def compile_next():
        service.create_trigger(definitions[next(counter)])

    benchmark.pedantic(compile_next, rounds=20, iterations=1, warmup_rounds=2)
