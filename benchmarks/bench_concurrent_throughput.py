"""Serving layer: aggregate throughput vs. shard count under concurrent load.

The Figure 17 default workload (structurally similar triggers over the
hierarchy view, 20 of them satisfied on the monitored top element) is served
by an :class:`~repro.serving.ActiveViewServer` while concurrent closed-loop
clients stream conflict-free leaf updates spread over every top element.
Each trigger's action models what the paper's actions actually do — notify an
external user — as a synchronous per-activation delivery latency
(``ACTION_LATENCY``, think "one notification RPC").

What scales and why (measured on the reference container, which has **one**
CPU core):

* The trigger-processing CPU work is pure Python and therefore serialized by
  the GIL no matter how many shard workers run — per-update CPU cost is also
  deliberately *independent of data size* (the paper's pushdown design, cf.
  Figure 23), so partitioning the rows cannot shrink it.  On a multi-core
  machine the single-writer-per-shard design additionally overlaps this CPU
  work; on one core it cannot, and this benchmark does not pretend otherwise.
* Delivery latency, however, **overlaps across shards**: each shard worker
  blocks only its own queue while an action delivers, so 8 shards push 8
  notifications concurrently where 1 shard pushes them one after another.
  Under load, micro-batching keeps the CPU share per statement low, and
  aggregate throughput approaches ``min(shards x per-shard rate, GIL-bound
  CPU rate)`` — near-linear until the CPU share dominates.

Expected result: >= 3x aggregate throughput at 8 shards vs. 1 shard (the
measured curve is ~4x at 8 shards, bending as the serialized CPU share and
the hottest subtree — the 20-satisfied-trigger top element — start to bind).

Run with pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_concurrent_throughput.py -q

or standalone for the full shard curve (also asserts the >= 3x scaling)::

    PYTHONPATH=src python -m benchmarks.bench_concurrent_throughput
"""

from repro.core.service import ExecutionMode
from repro.workloads import ExperimentHarness

from benchmarks.common import BENCH_DEFAULTS

#: The Figure 17 default point, floored so the spread update stream always
#: has enough distinct top elements (128+) to dilute the 20-satisfied-trigger
#: hot subtree across shards.  REPRO_BENCH_SCALE below 1.0 would otherwise
#: shrink the top population until one shard serializes most activations and
#: the scaling measurement measures the hotspot, not the architecture.
PARAMETERS = BENCH_DEFAULTS.with_(
    leaf_tuples=max(BENCH_DEFAULTS.leaf_tuples, 4_096),
    num_triggers=max(BENCH_DEFAULTS.num_triggers, 200),
)

#: Concurrent closed-loop clients driving the server.
CLIENTS = 16
#: Statements per client stream (conflict-free, spread over all tops).
UPDATES_PER_CLIENT = 24
#: Modeled synchronous delivery cost of one activation (seconds).
ACTION_LATENCY = 0.015
#: Shard counts for the standalone curve.
SHARD_COUNTS = (1, 2, 4, 8)


def _throughputs(shard_counts, *, mode=ExecutionMode.GROUPED_AGG):
    """Aggregate statements/second for each shard count (same streams each)."""
    harness = ExperimentHarness(PARAMETERS)
    points = harness.concurrent_throughput(
        shard_counts,
        clients=CLIENTS,
        updates_per_client=UPDATES_PER_CLIENT,
        mode=mode,
        action_latency=ACTION_LATENCY,
    )
    return [(point.value, 1000.0 / point.avg_ms, point) for point in points]


def test_eight_shards_scale_at_least_3x():
    """Acceptance check: 8 shards serve >= 3x the 1-shard aggregate throughput."""
    best = 0.0
    for _ in range(2):  # best-of-2 shields the ratio from scheduler noise
        (_, single, p1), (_, eight, p8) = _throughputs((1, 8))
        # Same logical work happened in both configurations.
        assert p1.updates == p8.updates
        assert p1.fired_per_update == p8.fired_per_update
        best = max(best, eight / single)
        if best >= 3.0:
            break
    assert best >= 3.0, f"8 shards only {best:.2f}x the 1-shard throughput"


def main() -> None:  # pragma: no cover - CLI convenience
    from benchmarks.common import record_result

    results = _throughputs(SHARD_COUNTS)
    base = results[0][1]
    record: dict = {"clients": CLIENTS, "action_latency_ms": ACTION_LATENCY * 1000}
    for shards, throughput, point in results:
        print(
            f"shards={shards}:  {point.updates} stmts from {CLIENTS} clients  "
            f"{point.avg_ms:6.2f} ms/stmt  {throughput:6.0f} stmt/s  "
            f"scaling x{throughput / base:.2f}"
        )
        record[f"shards_{shards}"] = {
            "stmt_per_s": round(throughput, 1),
            "scaling": round(throughput / base, 2),
        }
    ratio = results[-1][1] / base
    assert ratio >= 3.0, f"8 shards only {ratio:.2f}x the 1-shard throughput"
    print("scaling assertion (>= 3x at 8 shards): OK")
    print("trajectory:", record_result(
        "concurrent_throughput", record,
        headline="shards_8.stmt_per_s", higher_is_better=True,
    ))


if __name__ == "__main__":  # pragma: no cover
    main()
