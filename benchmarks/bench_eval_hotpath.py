"""Evaluation hot path: compiled physical plans vs the interpreted evaluator.

Trigger firing is the system's innermost loop: every DML statement evaluates
the pushed-down XQGM plan of each qualifying trigger group.  PR 4 lowers
those logical plans once into *compiled physical plans* — tuple rows with
integer slot layouts, pre-compiled expression closures, slot-aware hash
joins and index probes (:mod:`repro.xqgm.physical`) — and layers a
**version-stamped result cache** on top: subplan results are stamped with
the versions of the tables they read (plus the firing's context token for
delta-dependent subplans) and reused whenever the stamp is unchanged.

The cache is the data-level realization of the paper's shared trigger
processing (Section 5): trigger groups compiled for the same monitored path
share logical subgraphs, so the *first* group fired by a statement computes
and every sibling group reuses.  This benchmark therefore drives the
paper's own trigger-scaling stress — the Figure 17 population of
structurally similar triggers — in UNGROUPED mode, where every trigger is
its own group and the interpreted engine re-evaluates the same plan once
per trigger per statement.  That is exactly the workload the paper built
GROUPED mode for; the compiled engine's shared-subgraph cache recovers the
sharing at the data level, and the gate asserts it fires triggers at
**>= 3x** the interpreted throughput (measured speedups are far higher).

PR 7 adds the batch-oriented *columnar* engine (:mod:`repro.xqgm.columnar`)
on top: parameter-precise stability classification makes the root
``NodesDiffer`` select statement-shared instead of per-firing, a single-slot
pairs memo hands the derived affected pairs to every sibling group, and
per-row XML construction is memoized across recomputes.  Its gate asserts
**>= 2x** the *compiled* engine's trigger-firing throughput on the same
ungrouped stress — measured against the full Figure 17 trigger population
(the population is pinned, not scaled down, because per-statement
amortization across sibling groups is exactly the quantity under test; the
table sizes still scale with ``REPRO_BENCH_SCALE``).

For transparency the standalone run also reports the GROUPED_AGG default
point, where one group serves the whole population and per-statement
evaluation is already delta-bounded — there nothing can repeat, so the
service skips the cache bookkeeping entirely and both fast engines are
gated only on *not regressing* (>= 0.7x; in practice they sit at parity,
with the XML-node construction shared by all engines dominating).

Run with pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_eval_hotpath.py -q

or standalone for a text comparison (also asserts both gates)::

    PYTHONPATH=src python -m benchmarks.bench_eval_hotpath
"""

import dataclasses
import gc
import time

from repro.core.service import ExecutionMode
from repro.workloads import ExperimentHarness, WorkloadParameters

from benchmarks.common import BENCH_SCALE, record_result

#: Figure-17-style population for the UNGROUPED gate (scaled).
HOTPATH_PARAMETERS = WorkloadParameters(
    depth=2,
    leaf_tuples=max(256, int(4_096 * BENCH_SCALE)),
    fanout=32,
    num_triggers=max(16, int(100 * BENCH_SCALE)),
    satisfied_triggers=min(20, max(4, int(20 * BENCH_SCALE))),
    seed=42,
)

#: The columnar gate's stress: same tables, but the trigger population is
#: pinned at the full Figure 17 count regardless of ``REPRO_BENCH_SCALE`` —
#: scaling the population down would scale away the sibling-group sharing
#: the columnar engine is built to exploit.
COLUMNAR_STRESS_PARAMETERS = dataclasses.replace(
    HOTPATH_PARAMETERS, num_triggers=100, satisfied_triggers=20
)

#: Statements per timed run (plus warm-up).
_CHECK_STATEMENTS = 40
_WARMUP_STATEMENTS = 5


def _run(mode: ExecutionMode, use_compiled: bool,
         parameters: WorkloadParameters = HOTPATH_PARAMETERS,
         statements: int = _CHECK_STATEMENTS,
         use_columnar: bool = False):
    """Time ``statements`` updates; returns (seconds, firings, firing log)."""
    harness = ExperimentHarness(parameters, updates=1)
    setup = harness.build_setup(
        parameters, mode, use_compiled_plans=use_compiled, use_columnar=use_columnar
    )
    pool = setup.workload.update_statements(
        statements + _WARMUP_STATEMENTS, setup.database
    )
    for statement in pool[:_WARMUP_STATEMENTS]:
        setup.run_statement(statement)
    fired_before = setup.fired_count
    started = time.perf_counter()
    for statement in pool[_WARMUP_STATEMENTS:]:
        setup.run_statement(statement)
    elapsed = time.perf_counter() - started
    fired = setup.fired_count - fired_before
    log = [
        (f.trigger, f.key) for f in setup.service.fired
    ] if setup.service is not None else []
    return elapsed, fired, log, setup


def test_compiled_hotpath_3x_ungrouped():
    """Acceptance gate: >= 3x trigger-firing throughput on the Figure 17 stress."""
    best = 0.0
    for _ in range(3):  # best-of-3 shields the ratio from scheduler noise
        interpreted, fired_i, log_i, _ = _run(ExecutionMode.UNGROUPED, False)
        compiled, fired_c, log_c, setup = _run(ExecutionMode.UNGROUPED, True)
        # Same activations either way: the engines are interchangeable.
        assert fired_i == fired_c > 0
        assert sorted(log_i) == sorted(log_c)
        # The shared-subgraph cache must actually be doing the sharing.
        assert setup.service.result_cache.stats()["hits"] > 0
        best = max(best, interpreted / compiled)
        if best >= 3.0:
            break
    assert best >= 3.0, (
        f"compiled trigger firing only {best:.2f}x the interpreted evaluator"
    )


def test_columnar_hotpath_2x_over_compiled():
    """Acceptance gate: the columnar engine fires triggers at >= 2x the
    compiled row engine's throughput on the ungrouped Figure 17 stress.

    The ratio is taken between each engine's *best* run (min over trials):
    scheduler noise hits individual runs, not engines, so min/min converges
    on the true ratio where per-trial ratios flake.
    """
    best_compiled = float("inf")
    best_columnar = float("inf")
    for _ in range(3):
        gc.collect()
        compiled, fired_c, log_c, _ = _run(
            ExecutionMode.UNGROUPED, True, parameters=COLUMNAR_STRESS_PARAMETERS
        )
        gc.collect()
        columnar, fired_k, log_k, setup = _run(
            ExecutionMode.UNGROUPED, False,
            parameters=COLUMNAR_STRESS_PARAMETERS, use_columnar=True,
        )
        # Same activations either way: the engines are interchangeable.
        assert fired_c == fired_k > 0
        assert sorted(log_c) == sorted(log_k)
        # The columnar engine must actually have served every firing.
        report = setup.service.evaluation_report()
        assert report["columnar_firings"] > 0
        assert report["columnar_fallbacks"] == 0
        assert report["columnar_plan_errors"] == 0
        best_compiled = min(best_compiled, compiled)
        best_columnar = min(best_columnar, columnar)
        if best_compiled / best_columnar >= 2.2:
            break
    ratio = best_compiled / best_columnar
    assert ratio >= 2.0, (
        f"columnar trigger firing only {ratio:.2f}x the compiled engine "
        f"(compiled {best_compiled * 1000:.1f} ms, columnar {best_columnar * 1000:.1f} ms)"
    )


def test_compiled_no_regression_grouped_agg():
    """The grouped default point must not regress (evaluation is delta-bounded).

    Per-update time here is dominated by costs both engines share (node
    construction, activation, the row update itself), so the expected ratio
    is ~1.0; the 0.7 floor with a best-of-4 and a longer window merely
    guards against a real constant-factor regression without flaking on
    scheduler noise.
    """
    best = 0.0
    for _ in range(4):
        gc.collect()
        interpreted, fired_i, log_i, _ = _run(
            ExecutionMode.GROUPED_AGG, False, statements=100
        )
        gc.collect()
        compiled, fired_c, log_c, _ = _run(
            ExecutionMode.GROUPED_AGG, True, statements=100
        )
        assert fired_i == fired_c > 0
        assert sorted(log_i) == sorted(log_c)
        best = max(best, interpreted / compiled)
        if best >= 0.85:
            break
    assert best >= 0.7, f"compiled engine regressed the grouped path: {best:.2f}x"


def test_columnar_no_regression_grouped_agg():
    """The columnar engine must not regress the grouped default point either
    (same rationale and floor as the compiled no-regression gate)."""
    best = 0.0
    for _ in range(4):
        gc.collect()
        interpreted, fired_i, log_i, _ = _run(
            ExecutionMode.GROUPED_AGG, False, statements=100
        )
        gc.collect()
        columnar, fired_k, log_k, setup = _run(
            ExecutionMode.GROUPED_AGG, False, statements=100, use_columnar=True
        )
        assert fired_i == fired_k > 0
        assert sorted(log_i) == sorted(log_k)
        assert setup.service.evaluation_report()["columnar_fallbacks"] == 0
        best = max(best, interpreted / columnar)
        if best >= 0.85:
            break
    assert best >= 0.7, f"columnar engine regressed the grouped path: {best:.2f}x"


def main() -> None:  # pragma: no cover - CLI convenience
    record: dict = {
        "statements": _CHECK_STATEMENTS,
        "num_triggers": HOTPATH_PARAMETERS.num_triggers,
        "columnar_num_triggers": COLUMNAR_STRESS_PARAMETERS.num_triggers,
    }
    for mode in (ExecutionMode.UNGROUPED, ExecutionMode.GROUPED_AGG):
        interpreted, fired, _, _ = _run(mode, False)
        compiled, fired_c, _, setup = _run(mode, True)
        columnar, fired_k, _, columnar_setup = _run(mode, False, use_columnar=True)
        assert fired == fired_c == fired_k
        cache = setup.service.result_cache.stats()
        report = columnar_setup.service.evaluation_report()
        print(
            f"{mode.value:>12}: {_CHECK_STATEMENTS} updates, {fired} firings  "
            f"interpreted {interpreted * 1000:8.1f} ms   "
            f"compiled {compiled * 1000:8.1f} ms   "
            f"columnar {columnar * 1000:8.1f} ms   "
            f"speedup {interpreted / compiled:5.1f}x / {interpreted / columnar:5.1f}x   "
            f"cache hits {cache['hits']}"
        )
        record[mode.value] = {
            "interpreted_ms": round(interpreted * 1000, 2),
            "compiled_ms": round(compiled * 1000, 2),
            "columnar_ms": round(columnar * 1000, 2),
            "speedup": round(interpreted / compiled, 2),
            "columnar_speedup": round(interpreted / columnar, 2),
            "firings": fired,
            "cache_hits": cache["hits"],
            "columnar_batches": report["columnar_batches"],
            "columnar_fallbacks": report["columnar_fallbacks"],
        }
    test_compiled_hotpath_3x_ungrouped()
    print("hot-path assertion (>= 3x on the ungrouped Figure 17 stress): OK")
    test_columnar_hotpath_2x_over_compiled()
    print("columnar assertion (>= 2x over compiled, ungrouped stress): OK")
    test_compiled_no_regression_grouped_agg()
    print("no-regression assertion (grouped_agg, compiled): OK")
    test_columnar_no_regression_grouped_agg()
    print("no-regression assertion (grouped_agg, columnar): OK")
    print("trajectory:", record_result(
        "eval_hotpath", record,
        headline="ungrouped.compiled_ms", higher_is_better=False,
    ))


if __name__ == "__main__":  # pragma: no cover
    main()
