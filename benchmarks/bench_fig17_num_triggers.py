"""Figure 17: average time per update while varying the number of triggers.

Paper result: UNGROUPED degrades with the number of XML triggers (no shared
computation); GROUPED and GROUPED-AGG stay essentially flat, with GROUPED-AGG
about 30% faster than GROUPED.
"""

import pytest

from repro.core.service import ExecutionMode
from benchmarks.common import BENCH_DEFAULTS, time_updates

GROUPED_COUNTS = [1, 10, 100, 1000]
UNGROUPED_COUNTS = [1, 10, 50]  # UNGROUPED scales linearly; keep the suite fast.


def _params(num_triggers: int):
    return BENCH_DEFAULTS.with_(
        num_triggers=num_triggers,
        satisfied_triggers=min(BENCH_DEFAULTS.satisfied_triggers, num_triggers),
    )


@pytest.mark.parametrize("num_triggers", GROUPED_COUNTS)
@pytest.mark.parametrize("mode", [ExecutionMode.GROUPED, ExecutionMode.GROUPED_AGG])
def test_fig17_grouped_modes(benchmark, mode, num_triggers):
    benchmark.group = f"fig17-triggers-{num_triggers}"
    runner = time_updates(benchmark, _params(num_triggers), mode)
    assert runner.fired > 0


@pytest.mark.parametrize("num_triggers", UNGROUPED_COUNTS)
def test_fig17_ungrouped(benchmark, num_triggers):
    benchmark.group = f"fig17-triggers-{num_triggers}"
    rounds = 5 if num_triggers >= 50 else 10
    runner = time_updates(benchmark, _params(num_triggers), ExecutionMode.UNGROUPED, rounds=rounds)
    assert runner.fired > 0
