"""Figure 18: average time per update while varying the hierarchy depth.

Paper result: run time grows roughly linearly with the view depth because the
generated trigger must evaluate more joins to recreate the hierarchy.
"""

import pytest

from repro.core.service import ExecutionMode
from benchmarks.common import BENCH_DEFAULTS, time_updates


@pytest.mark.parametrize("depth", [2, 3, 4, 5])
@pytest.mark.parametrize("mode", [ExecutionMode.GROUPED, ExecutionMode.GROUPED_AGG])
def test_fig18_depth(benchmark, mode, depth):
    benchmark.group = f"fig18-depth-{depth}"
    runner = time_updates(benchmark, BENCH_DEFAULTS.with_(depth=depth), mode)
    assert runner.fired > 0
