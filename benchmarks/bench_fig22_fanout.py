"""Figure 22 (Appendix G.1): varying the number of leaf tuples per XML element.

Paper result: only a small increase in run time as the fanout grows, caused by
the larger (OLD_NODE, NEW_NODE) values that have to be produced.
"""

import pytest

from repro.core.service import ExecutionMode
from benchmarks.common import BENCH_DEFAULTS, time_updates


@pytest.mark.parametrize("fanout", [16, 32, 64, 128, 256])
@pytest.mark.parametrize("mode", [ExecutionMode.GROUPED, ExecutionMode.GROUPED_AGG])
def test_fig22_fanout(benchmark, mode, fanout):
    benchmark.group = f"fig22-fanout-{fanout}"
    parameters = BENCH_DEFAULTS.with_(
        fanout=fanout, leaf_tuples=max(BENCH_DEFAULTS.leaf_tuples, fanout * 8)
    )
    runner = time_updates(benchmark, parameters, mode)
    assert runner.fired > 0
