"""Figure 23 (Appendix G.2): varying the database size (number of leaf tuples).

Paper result: both GROUPED and GROUPED-AGG scale gracefully — because the view
is never materialized, only the affected XML element's leaves are touched, so
the per-update cost is essentially independent of the total data size.
"""

import pytest

from repro.core.service import ExecutionMode
from benchmarks.common import BENCH_DEFAULTS, BENCH_SCALE, time_updates

LEAF_COUNTS = [int(n * BENCH_SCALE) for n in (1_024, 4_096, 16_384, 65_536)]


@pytest.mark.parametrize("leaf_tuples", LEAF_COUNTS)
@pytest.mark.parametrize("mode", [ExecutionMode.GROUPED, ExecutionMode.GROUPED_AGG])
def test_fig23_data_size(benchmark, mode, leaf_tuples):
    benchmark.group = f"fig23-leaves-{leaf_tuples}"
    runner = time_updates(benchmark, BENCH_DEFAULTS.with_(leaf_tuples=leaf_tuples), mode)
    assert runner.fired > 0
