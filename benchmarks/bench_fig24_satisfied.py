"""Figure 24 (Appendix G.3): varying the number of satisfied triggers.

Paper result: run time increases roughly linearly with the number of triggers
that actually fire per update, because one (OLD_NODE, NEW_NODE) parameter set
is produced per satisfied trigger.
"""

import pytest

from repro.core.service import ExecutionMode
from benchmarks.common import BENCH_DEFAULTS, time_updates


@pytest.mark.parametrize("satisfied", [1, 20, 40, 80, 100])
@pytest.mark.parametrize("mode", [ExecutionMode.GROUPED, ExecutionMode.GROUPED_AGG])
def test_fig24_satisfied(benchmark, mode, satisfied):
    benchmark.group = f"fig24-satisfied-{satisfied}"
    parameters = BENCH_DEFAULTS.with_(
        satisfied_triggers=satisfied,
        num_triggers=max(BENCH_DEFAULTS.num_triggers, satisfied),
    )
    runner = time_updates(benchmark, parameters, mode)
    assert runner.fired > 0
