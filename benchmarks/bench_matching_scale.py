"""Matching scale: sublinear trigger matching vs the linear constants scan.

The paper's trigger-scaling experiment (Figure 17) stops near 10^5 grouped
triggers because — even with grouped *evaluation* — every statement still
probed the constants table linearly: one parameterized-condition evaluation
per registered constant set.  PR 6 adds the matching subsystem
(:mod:`repro.matching`): per-group predicate indexes select the candidate
constants rows in ~O(matching triggers), and ``register_triggers_bulk``
builds the indexes once per batch.

This benchmark sweeps the registered population (default 10^5 and 10^6;
10^7 is opt-in via ``REPRO_BENCH_MATCHING_MAX=10000000``) over a fixed small
database, so the only thing growing is the trigger population — exactly the
Figure 17 axis, two decades past the paper's last point.  At every size it
measures:

* bulk registration throughput (triggers/second);
* indexed per-statement matching cost (the ``headline_indexed_ms`` metric
  gated by ``tools/check_bench_regression.py``);
* the linear oracle's per-statement cost on the *same* service
  (``use_matching_indexes = False`` — the scan the seed system performed).

Gates (also asserted standalone):

* per-statement indexed cost grows **<= 2x** from the smallest to the
  largest swept size while the population grows 10x (the linear scan grows
  >= 4x on the same sweep — it is the control that proves the sweep is
  actually stressing matching);
* with a single swept size (the CI smoke: ``REPRO_BENCH_MATCHING_MAX=100000``)
  the indexed engine must be >= 5x faster than the linear scan;
* both engines fire exactly the expected activations per statement and the
  indexed run reports **zero** matching fallbacks.

Run standalone::

    PYTHONPATH=src python -m benchmarks.bench_matching_scale
"""

import os
import time

from repro.core.service import ActiveViewService, ExecutionMode
from repro.core.trigger import TriggerSpec, XmlTriggerEvent
from repro.workloads import HierarchyWorkload, WorkloadParameters

from benchmarks.common import BENCH_SCALE, record_result

#: Small fixed database: the sweep axis is the trigger population.
_DB_PARAMETERS = WorkloadParameters(
    depth=2,
    leaf_tuples=2_048,
    fanout=32,
    num_triggers=1,
    satisfied_triggers=1,
    seed=42,
)

#: Triggers that actually match the update workload (Table 2's "satisfied").
_SATISFIED = 4

#: Swept population sizes; ``REPRO_BENCH_MATCHING_MAX`` truncates the sweep
#: (CI smoke: 100000) or extends it (10000000 opts into the 10^7 point).
_ALL_SIZES = (100_000, 1_000_000, 10_000_000)
_MAX_SIZE = int(os.environ.get("REPRO_BENCH_MATCHING_MAX", "1000000"))

_INDEXED_STATEMENTS = 30
_LINEAR_STATEMENTS = 3
_WARMUP_STATEMENTS = 4


def swept_sizes() -> list[int]:
    """The population sizes to sweep, after the cap and ``REPRO_BENCH_SCALE``."""
    sizes = [size for size in _ALL_SIZES if size <= _MAX_SIZE]
    if not sizes:
        sizes = [_MAX_SIZE]
    return [max(1_000, int(size * BENCH_SCALE)) for size in sizes]


def build_population(workload: HierarchyWorkload, total: int) -> list[TriggerSpec]:
    """A Figure-17-style population with mostly *distinct* equality constants.

    The workload generator's population spreads constants over the top
    elements (constants-table rows collapse by constant), which is the right
    shape for evaluation benchmarks; a matching sweep needs one constants
    row per trigger, so all but the ``_SATISFIED`` matching triggers get a
    unique never-matching constant.
    """
    top = workload.level_element(0)
    view_name = workload.parameters.view_name
    specs = []
    for index in range(total):
        constant = (
            workload.target_top_name if index < _SATISFIED else f"unmatched_{index}"
        )
        specs.append(
            TriggerSpec(
                name=f"t{index}",
                event=XmlTriggerEvent.UPDATE,
                view=view_name,
                path=(top,),
                condition=f"OLD_NODE/@name = '{constant}'",
                action_name="collect",
                action_args=("NEW_NODE",),
            )
        )
    return specs


def run_point(total: int) -> dict:
    """Register ``total`` triggers, measure indexed and linear matching cost."""
    workload = HierarchyWorkload(_DB_PARAMETERS)
    database = workload.build_database()
    service = ActiveViewService(database, ExecutionMode.GROUPED_AGG)
    service.register_view(workload.build_view())
    collected: list = []
    service.register_action("collect", lambda node: collected.append(node))

    specs = build_population(workload, total)
    started = time.perf_counter()
    service.register_triggers_bulk(specs)
    register_seconds = time.perf_counter() - started

    pool = workload.update_statements(
        2 * _WARMUP_STATEMENTS + _INDEXED_STATEMENTS + _LINEAR_STATEMENTS + 1,
        database,
    )
    statements = iter(pool)
    expected = {spec.name for spec in specs[:_SATISFIED]}

    def run_statements(count: int) -> float:
        mark = len(service.fired)
        elapsed = 0.0
        for _ in range(count):
            statement = next(statements)
            t0 = time.perf_counter()
            service.execute(statement)
            elapsed += time.perf_counter() - t0
        fired = service.fired[mark:]
        # Every statement updates leaves under the monitored target element,
        # so each one must activate exactly the satisfied triggers — in both
        # engines.  (The property suite pins full equivalence; this pins the
        # bench against silently matching nothing or everything.)
        assert len(fired) == count * _SATISFIED, (
            f"expected {count * _SATISFIED} activations, saw {len(fired)}"
        )
        assert {f.trigger for f in fired} == expected
        return elapsed / count

    for _ in range(_WARMUP_STATEMENTS):  # includes the one-off index build
        service.execute(next(statements))
    indexed_ms = run_statements(_INDEXED_STATEMENTS) * 1000

    service.use_matching_indexes = False
    service.execute(next(statements))  # builds the linear constants table
    linear_ms = run_statements(_LINEAR_STATEMENTS) * 1000
    service.use_matching_indexes = True

    report = service.evaluation_report()
    assert report["matching_fallbacks"] == 0, report
    assert report["matching_probes"] > 0, report

    return {
        "triggers": total,
        "register_seconds": round(register_seconds, 2),
        "triggers_per_second": round(total / register_seconds),
        "indexed_ms": round(indexed_ms, 3),
        "linear_ms": round(linear_ms, 3),
        "speedup": round(linear_ms / indexed_ms, 1),
        "candidate_rows_per_probe": round(
            report["matching_candidate_rows"] / report["matching_probes"], 2
        ),
    }


def check_gates(points: list[dict]) -> None:
    """The acceptance gates over one sweep's points."""
    for point in points:
        assert point["speedup"] >= 5.0, (
            f"indexed matching only {point['speedup']}x the linear scan at "
            f"{point['triggers']} triggers"
        )
    if len(points) >= 2:
        first, last = points[0], points[-1]
        indexed_growth = last["indexed_ms"] / first["indexed_ms"]
        linear_growth = last["linear_ms"] / first["linear_ms"]
        population_growth = last["triggers"] / first["triggers"]
        assert indexed_growth <= 2.0, (
            f"indexed per-statement cost grew {indexed_growth:.2f}x over a "
            f"{population_growth:.0f}x population sweep (gate: <= 2x)"
        )
        assert linear_growth >= 4.0, (
            f"linear control only grew {linear_growth:.2f}x over a "
            f"{population_growth:.0f}x population sweep — the sweep is not "
            "stressing matching"
        )


def main() -> None:  # pragma: no cover - CLI convenience
    sizes = swept_sizes()
    points = []
    for size in sizes:
        point = run_point(size)
        points.append(point)
        print(
            f"{point['triggers']:>9} triggers: register {point['register_seconds']:7.1f}s "
            f"({point['triggers_per_second']}/s)   "
            f"indexed {point['indexed_ms']:8.3f} ms/stmt   "
            f"linear {point['linear_ms']:10.3f} ms/stmt   "
            f"speedup {point['speedup']:7.1f}x"
        )
    check_gates(points)
    if len(points) >= 2:
        print(
            f"sweep gate OK: indexed {points[-1]['indexed_ms'] / points[0]['indexed_ms']:.2f}x "
            f"vs linear {points[-1]['linear_ms'] / points[0]['linear_ms']:.2f}x over "
            f"{points[-1]['triggers'] / points[0]['triggers']:.0f}x more triggers"
        )
    else:
        print(f"smoke gate OK: {points[0]['speedup']}x at {points[0]['triggers']} triggers")
    record = {
        "sizes": sizes,
        "points": points,
        "headline_indexed_ms": points[-1]["indexed_ms"],
    }
    print("trajectory:", record_result(
        "matching_scale", record,
        headline="headline_indexed_ms", higher_is_better=False,
    ))


if __name__ == "__main__":  # pragma: no cover
    main()
