"""Network front end: connection-scale activation fan-out.

The paper's active-view scenario ends with *users* holding subscriptions
("notify external users"); this benchmark measures the piece the in-process
serving benchmarks cannot — how many **concurrent subscriber connections**
the asyncio front end sustains while every one of them receives every
activation of a trigger workload.

Shape: one :class:`~repro.serving.ActiveViewServer` (hierarchy workload,
Figure 17-style triggers) behind a :class:`~repro.serving.net.NetworkServer`;
``CONNECTIONS`` network subscribers attach, then a producer client streams
conflict-free leaf updates over the wire.  Every run is **equivalence-checked**
against an in-process :class:`~repro.serving.Subscriber` oracle attached to
the same server: every connection must receive exactly the oracle's
activation sequence, per shard, in order — delivery at scale, not best-effort
sampling.

The standalone run sweeps the front-end configuration: an unbatched
single-loop reference point (today's wire path with batching negotiated
off) against activation frame batching at ``loops`` ∈ {1, 2, 4}.  The
headline metric is the batched 4-loop aggregate delivery rate
(``batched_deliveries_per_s``), gated by
``tools/check_bench_regression.py``; the run itself additionally asserts
the batched multi-loop front end beats the **recorded PR 8 single-loop
baseline** (the first ``deliveries_per_s`` record in
``benchmarks/results/BENCH_net_fanout.json``, measured before the
multi-loop/batching work) by ``MIN_SPEEDUP``x.  The in-run unbatched
point is reported, not gated: it shares this PR's delivery-path
optimizations (coalesced wakeups, decode caches), so it moves together
with the batched points and understates the speedup over PR 8.

Run with pytest (scaled-down)::

    PYTHONPATH=src python -m pytest benchmarks/bench_net_fanout.py -q

or standalone for the full 1000-connection sweep::

    PYTHONPATH=src python -m benchmarks.bench_net_fanout
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import Counter
from pathlib import Path

import pytest

from repro.serving import Subscriber
from repro.serving.net import NetClient, NetworkServer
from repro.workloads import ExperimentHarness

from benchmarks.common import BENCH_DEFAULTS, BENCH_SCALE

#: A small trigger population: fan-out cost scales with *subscribers x
#: activations*, so the interesting axis is connection count, not triggers.
PARAMETERS = BENCH_DEFAULTS.with_(
    leaf_tuples=max(64, min(BENCH_DEFAULTS.leaf_tuples, 1_024)),
    num_triggers=20,
    satisfied_triggers=5,
)

#: Concurrent subscriber connections for the standalone run.  The floor is
#: the acceptance bar: the front end must hold 1000 subscribers on the CI
#: container; ``REPRO_BENCH_SCALE`` only scales it *up*.
CONNECTIONS = max(1000, int(1000 * BENCH_SCALE))

#: Producer statements streamed over the wire.
UPDATES = 12

#: Handshakes in flight at once while building the connection population.
CONNECT_BATCH = 100

#: Loop counts swept by the standalone run (batching on).
LOOP_SWEEP = (1, 2, 4)

#: Required speedup of the batched 4-loop point over the recorded PR 8
#: single-loop baseline — the PR's acceptance gate.
MIN_SPEEDUP = 2.0

#: The PR 8 single-loop front end measured 680 deliveries/s at 1000
#: connections on the reference container (first record in
#: ``benchmarks/results/BENCH_net_fanout.json``).  Used as a fallback when
#: the results file is unavailable (fresh checkout without history).
PR8_BASELINE_DELIVERIES_PER_S = 680.0


def pr8_baseline_deliveries_per_s() -> float:
    """The recorded PR 8 headline: first ``deliveries_per_s`` record.

    Later records use the ``batched_deliveries_per_s`` headline, so the
    first single-frame record stays the pre-batching anchor even as the
    trajectory file grows.
    """
    results = Path(__file__).resolve().parent / "results" / "BENCH_net_fanout.json"
    try:
        records = json.loads(results.read_text())
    except (OSError, ValueError):
        return PR8_BASELINE_DELIVERIES_PER_S
    for record in records:
        headline = record.get("_headline", {})
        if headline.get("metric") == "deliveries_per_s":
            return float(record["deliveries_per_s"])
    return PR8_BASELINE_DELIVERIES_PER_S

#: Batch linger for the batched sweep points.  Fan-out throughput wants a
#: linger generous relative to the engine's burst production (~tens of ms
#: for a statement batch) so one burst coalesces into one frame per
#: connection; the 2 ms server default favors latency instead.
BATCH_LINGER = 0.02


def build_stack(*, loops: int = 1, batching: bool = True) -> tuple:
    """A started server + network front end running the hierarchy workload."""
    harness = ExperimentHarness(PARAMETERS)
    server, workload = harness.build_server(PARAMETERS, shard_count=2)
    oracle = Subscriber("oracle", capacity=65536)
    server.attach_subscriber(oracle)
    server.start()
    net = NetworkServer(
        server, send_buffer=4096, loops=loops, batching=batching,
        batch_linger=BATCH_LINGER,
    ).start()
    return server, net, workload, oracle


async def _fan_out(host, port, statements, connections):
    """Connect, subscribe, produce, and consume; returns the measured run."""
    clients: list[NetClient] = []
    connect_started = time.perf_counter()
    for batch_start in range(0, connections, CONNECT_BATCH):
        batch = min(CONNECT_BATCH, connections - batch_start)
        clients.extend(
            await asyncio.gather(
                *(NetClient.connect(host, port) for _ in range(batch))
            )
        )
    subscriptions = []
    for batch_start in range(0, connections, CONNECT_BATCH):
        subscriptions.extend(
            await asyncio.gather(
                *(client.subscribe() for client in
                  clients[batch_start:batch_start + CONNECT_BATCH])
            )
        )
    connect_seconds = time.perf_counter() - connect_started

    producer = await NetClient.connect(host, port)
    produce_started = time.perf_counter()
    await producer.execute_batch(statements)

    async def consume(subscription, expected):
        received = []
        while len(received) < expected:
            activation = await subscription.get(timeout=120)
            assert activation is not None, "stream ended early (pause/close)"
            received.append(activation)
        return received

    # The oracle knows how many activations the workload produced; every
    # connection must receive exactly that many (checked in detail after).
    stats = await producer.stats()
    expected = stats["activations_published"]
    per_connection = await asyncio.gather(
        *(consume(subscription, expected) for subscription in subscriptions)
    )
    fanout_seconds = time.perf_counter() - produce_started

    for client in clients:
        await client.close()
    await producer.close()
    return connect_seconds, fanout_seconds, expected, per_connection


def run_fanout(connections: int, *, loops: int = 1, batching: bool = True) -> dict:
    """One measured fan-out point, equivalence-checked against the oracle."""
    server, net, workload, oracle = build_stack(loops=loops, batching=batching)
    try:
        statements = workload.client_streams(1, UPDATES)[0]
        host, port = net.address
        connect_seconds, fanout_seconds, expected, per_connection = asyncio.run(
            _fan_out(host, port, statements, connections)
        )
        server.drain()
        oracle_stream = oracle.drain()
        assert len(oracle_stream) == expected
        oracle_by_shard: dict[int, list[tuple]] = {}
        for activation in oracle_stream:
            oracle_by_shard.setdefault(activation.shard, []).append(
                (activation.sequence, activation.trigger, activation.key)
            )
        # Every connection's stream is the oracle's stream: same multiset,
        # same per-shard order.  (One violation anywhere fails the run.)
        oracle_counter = Counter(
            (a.shard, a.sequence, a.trigger) for a in oracle_stream
        )
        for received in per_connection:
            assert Counter(
                (a.shard, a.sequence, a.trigger) for a in received
            ) == oracle_counter, "a connection diverged from the oracle"
            by_shard: dict[int, list[tuple]] = {}
            for activation in received:
                by_shard.setdefault(activation.shard, []).append(
                    (activation.sequence, activation.trigger, activation.key)
                )
            assert by_shard == oracle_by_shard
        deliveries = expected * connections
        report = net.net_report()
        assert report["subscriptions_paused"] == 0, "fan-out paused a subscriber"
        if not batching:
            assert report["activation_batches_sent"] == 0
        return {
            "connections": connections,
            "loops": loops,
            "batching": batching,
            "activations": expected,
            "deliveries": deliveries,
            "connect_per_s": round(connections / max(connect_seconds, 1e-9), 1),
            "fanout_seconds": round(fanout_seconds, 3),
            "deliveries_per_s": round(deliveries / max(fanout_seconds, 1e-9), 1),
            "frames_sent": report["frames_sent"],
            "activation_batches_sent": report["activation_batches_sent"],
            "shared_encode_hits": report["shared_encode_hits"],
        }
    finally:
        net.stop()
        server.stop()


@pytest.mark.parametrize(
    "loops,batching", [(1, False), (2, True)], ids=["baseline", "loops2-batched"]
)
def test_every_connection_receives_the_oracle_stream(loops, batching):
    """Scaled-down acceptance: full equivalence at 64 connections."""
    result = run_fanout(64, loops=loops, batching=batching)
    assert result["deliveries"] == result["activations"] * 64
    assert result["activations"] > 0
    if batching:
        assert result["activation_batches_sent"] > 0


def main() -> None:  # pragma: no cover - CLI convenience
    from benchmarks.common import record_result

    def show(result: dict) -> None:
        mode = "batched " if result["batching"] else "unbatched"
        print(
            f"loops={result['loops']}  {mode}  "
            f"connections={result['connections']}  "
            f"activations={result['activations']}  "
            f"frames={result['frames_sent']}  "
            f"fan-out {result['deliveries_per_s']:9.0f} deliveries/s"
        )

    unbatched = run_fanout(CONNECTIONS, loops=1, batching=False)
    show(unbatched)
    sweep = []
    for loops in LOOP_SWEEP:
        point = run_fanout(CONNECTIONS, loops=loops, batching=True)
        sweep.append(point)
        show(point)
    headline = sweep[-1]
    pr8_baseline = pr8_baseline_deliveries_per_s()
    speedup = headline["deliveries_per_s"] / max(pr8_baseline, 1e-9)
    vs_unbatched = headline["deliveries_per_s"] / max(
        unbatched["deliveries_per_s"], 1e-9
    )
    print("equivalence vs in-process oracle: OK (every run, every connection)")
    print(
        f"batched loops={headline['loops']} vs PR 8 baseline "
        f"({pr8_baseline:.0f}/s): {speedup:.2f}x"
        f"  (vs in-run unbatched: {vs_unbatched:.2f}x)"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"front end too slow: {speedup:.2f}x < required {MIN_SPEEDUP}x"
    )
    summary = {
        "connections": CONNECTIONS,
        "activations": headline["activations"],
        "deliveries": headline["deliveries"],
        "pr8_baseline_deliveries_per_s": pr8_baseline,
        "unbatched_deliveries_per_s": unbatched["deliveries_per_s"],
        "sweep": {f"loops_{p['loops']}": p["deliveries_per_s"] for p in sweep},
        "batched_deliveries_per_s": headline["deliveries_per_s"],
        "speedup_vs_pr8": round(speedup, 2),
        "speedup_vs_unbatched": round(vs_unbatched, 2),
        "frames_sent_unbatched": unbatched["frames_sent"],
        "frames_sent_batched": headline["frames_sent"],
    }
    print("trajectory:", record_result(
        "net_fanout", summary,
        headline="batched_deliveries_per_s", higher_is_better=True,
    ))


if __name__ == "__main__":  # pragma: no cover
    main()
