"""Network front end: connection-scale activation fan-out.

The paper's active-view scenario ends with *users* holding subscriptions
("notify external users"); this benchmark measures the piece the in-process
serving benchmarks cannot — how many **concurrent subscriber connections**
the asyncio front end sustains while every one of them receives every
activation of a trigger workload.

Shape: one :class:`~repro.serving.ActiveViewServer` (hierarchy workload,
Figure 17-style triggers) behind a :class:`~repro.serving.net.NetworkServer`;
``CONNECTIONS`` network subscribers attach, then a producer client streams
conflict-free leaf updates over the wire.  The run is **equivalence-checked**
against an in-process :class:`~repro.serving.Subscriber` oracle attached to
the same server: every connection must receive exactly the oracle's
activation sequence, per shard, in order — delivery at scale, not best-effort
sampling.  The headline metric is aggregate delivered activations per second
(``deliveries_per_s``), gated by ``tools/check_bench_regression.py``.

Run with pytest (scaled-down)::

    PYTHONPATH=src python -m pytest benchmarks/bench_net_fanout.py -q

or standalone for the full 1000-connection point::

    PYTHONPATH=src python -m benchmarks.bench_net_fanout
"""

from __future__ import annotations

import asyncio
import time
from collections import Counter

from repro.serving import Subscriber
from repro.serving.net import NetClient, NetworkServer
from repro.workloads import ExperimentHarness

from benchmarks.common import BENCH_DEFAULTS, BENCH_SCALE

#: A small trigger population: fan-out cost scales with *subscribers x
#: activations*, so the interesting axis is connection count, not triggers.
PARAMETERS = BENCH_DEFAULTS.with_(
    leaf_tuples=max(64, min(BENCH_DEFAULTS.leaf_tuples, 1_024)),
    num_triggers=20,
    satisfied_triggers=5,
)

#: Concurrent subscriber connections for the standalone run.  The floor is
#: the acceptance bar: the front end must hold 1000 subscribers on the CI
#: container; ``REPRO_BENCH_SCALE`` only scales it *up*.
CONNECTIONS = max(1000, int(1000 * BENCH_SCALE))

#: Producer statements streamed over the wire.
UPDATES = 12

#: Handshakes in flight at once while building the connection population.
CONNECT_BATCH = 100


def build_stack() -> tuple:
    """A started server + network front end running the hierarchy workload."""
    harness = ExperimentHarness(PARAMETERS)
    server, workload = harness.build_server(PARAMETERS, shard_count=2)
    oracle = Subscriber("oracle", capacity=65536)
    server.attach_subscriber(oracle)
    server.start()
    net = NetworkServer(server, send_buffer=4096).start()
    return server, net, workload, oracle


async def _fan_out(host, port, statements, connections):
    """Connect, subscribe, produce, and consume; returns the measured run."""
    clients: list[NetClient] = []
    connect_started = time.perf_counter()
    for batch_start in range(0, connections, CONNECT_BATCH):
        batch = min(CONNECT_BATCH, connections - batch_start)
        clients.extend(
            await asyncio.gather(
                *(NetClient.connect(host, port) for _ in range(batch))
            )
        )
    subscriptions = []
    for batch_start in range(0, connections, CONNECT_BATCH):
        subscriptions.extend(
            await asyncio.gather(
                *(client.subscribe() for client in
                  clients[batch_start:batch_start + CONNECT_BATCH])
            )
        )
    connect_seconds = time.perf_counter() - connect_started

    producer = await NetClient.connect(host, port)
    produce_started = time.perf_counter()
    await producer.execute_batch(statements)

    async def consume(subscription, expected):
        received = []
        while len(received) < expected:
            activation = await subscription.get(timeout=120)
            assert activation is not None, "stream ended early (pause/close)"
            received.append(activation)
        return received

    # The oracle knows how many activations the workload produced; every
    # connection must receive exactly that many (checked in detail after).
    stats = await producer.stats()
    expected = stats["activations_published"]
    per_connection = await asyncio.gather(
        *(consume(subscription, expected) for subscription in subscriptions)
    )
    fanout_seconds = time.perf_counter() - produce_started

    for client in clients:
        await client.close()
    await producer.close()
    return connect_seconds, fanout_seconds, expected, per_connection


def run_fanout(connections: int) -> dict:
    """One measured fan-out point, equivalence-checked against the oracle."""
    server, net, workload, oracle = build_stack()
    try:
        statements = workload.client_streams(1, UPDATES)[0]
        host, port = net.address
        connect_seconds, fanout_seconds, expected, per_connection = asyncio.run(
            _fan_out(host, port, statements, connections)
        )
        server.drain()
        oracle_stream = oracle.drain()
        assert len(oracle_stream) == expected
        oracle_by_shard: dict[int, list[tuple]] = {}
        for activation in oracle_stream:
            oracle_by_shard.setdefault(activation.shard, []).append(
                (activation.sequence, activation.trigger, activation.key)
            )
        # Every connection's stream is the oracle's stream: same multiset,
        # same per-shard order.  (One violation anywhere fails the run.)
        oracle_counter = Counter(
            (a.shard, a.sequence, a.trigger) for a in oracle_stream
        )
        for received in per_connection:
            assert Counter(
                (a.shard, a.sequence, a.trigger) for a in received
            ) == oracle_counter, "a connection diverged from the oracle"
            by_shard: dict[int, list[tuple]] = {}
            for activation in received:
                by_shard.setdefault(activation.shard, []).append(
                    (activation.sequence, activation.trigger, activation.key)
                )
            assert by_shard == oracle_by_shard
        deliveries = expected * connections
        report = net.net_report()
        assert report["subscriptions_paused"] == 0, "fan-out paused a subscriber"
        return {
            "connections": connections,
            "activations": expected,
            "deliveries": deliveries,
            "connect_per_s": round(connections / max(connect_seconds, 1e-9), 1),
            "fanout_seconds": round(fanout_seconds, 3),
            "deliveries_per_s": round(deliveries / max(fanout_seconds, 1e-9), 1),
        }
    finally:
        net.stop()
        server.stop()


def test_every_connection_receives_the_oracle_stream():
    """Scaled-down acceptance: full equivalence at 64 connections."""
    result = run_fanout(64)
    assert result["deliveries"] == result["activations"] * 64
    assert result["activations"] > 0


def main() -> None:  # pragma: no cover - CLI convenience
    from benchmarks.common import record_result

    result = run_fanout(CONNECTIONS)
    print(
        f"connections={result['connections']}  "
        f"activations={result['activations']}  "
        f"deliveries={result['deliveries']}  "
        f"connect {result['connect_per_s']:8.0f} conn/s  "
        f"fan-out {result['deliveries_per_s']:8.0f} deliveries/s"
    )
    print("equivalence vs in-process oracle: OK (every connection, every activation)")
    print("trajectory:", record_result(
        "net_fanout", result,
        headline="deliveries_per_s", higher_is_better=True,
    ))


if __name__ == "__main__":  # pragma: no cover
    main()
