"""Recovery time: linear in WAL length, bounded by snapshots.

Crash recovery (`repro.persist.recovery`) is a fold over the durable files:
restore the latest snapshot, then replay the WAL records beyond it.  Two
properties matter operationally and are measured here:

* **Replay is linear in WAL length** — each record applies a net row delta
  in O(delta) time, so a WAL holding 4x the records takes ~4x as long (plus
  a constant open/restore term).
* **Snapshots bound recovery** — an update-heavy workload grows the WAL
  without growing the table, so recovery from a long WAL costs much more
  than recovery from the snapshot that supersedes it.  Snapshotting
  truncates the WAL, turning O(history) recovery into O(live data).

Run with pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_recovery_time.py -q

or standalone (also asserts the snapshot bound)::

    PYTHONPATH=src python -m benchmarks.bench_recovery_time
"""

import pathlib
import shutil
import tempfile
import time

import pytest

from repro.persist import Snapshot, recover_database
from repro.persist.recovery import SNAPSHOT_FILE, WAL_FILE
from repro.persist.wal import WriteAheadLog
from repro.relational import Column, DataType, Database, TableSchema
from repro.relational.dml import UpdateStatement

#: Rows in the (fixed-size) table; the WAL grows with updates, not rows.
TABLE_ROWS = 1_000

WAL_LENGTHS = [500, 2_000, 8_000]


def _build_history(directory: pathlib.Path, updates: int) -> tuple[Database, int]:
    """A fixed-size table plus ``updates`` logged UPDATE records.

    Returns the live database and the WAL's final LSN (needed to checkpoint
    without replaying the log just to learn the position).
    """
    database = Database("recovery-bench")
    wal = WriteAheadLog(directory / WAL_FILE, sync="none")
    wal.attach(database)
    database.create_table(
        TableSchema(
            "counters",
            [Column("k", DataType.INTEGER, nullable=False),
             Column("v", DataType.INTEGER, nullable=False)],
            primary_key=["k"],
        )
    )
    database.load_rows("counters", [{"k": key, "v": 0} for key in range(TABLE_ROWS)])
    for step in range(updates):
        database.execute(
            UpdateStatement("counters", {"v": step}, keys=[(step % TABLE_ROWS,)])
        )
    wal.close()
    return database, wal.last_lsn


def _time_recovery(directory: pathlib.Path) -> tuple[float, Database]:
    started = time.perf_counter()
    database, wal = recover_database(directory)
    elapsed = time.perf_counter() - started
    wal.close()
    return elapsed, database


@pytest.mark.parametrize("updates", WAL_LENGTHS)
def test_recovery_scales_with_wal_length(benchmark, updates, tmp_path):
    """Replay cost grows with the number of logged records."""
    benchmark.group = "recovery-time"
    benchmark.extra_info["wal_records"] = updates
    directory = tmp_path / f"wal{updates}"
    original, _ = _build_history(directory, updates)

    def recover():
        elapsed, database = _time_recovery(directory)
        return database

    database = benchmark.pedantic(recover, rounds=5, iterations=1, warmup_rounds=1)
    assert database.snapshot() == original.snapshot()


def test_snapshot_bounds_recovery(tmp_path):
    """Snapshot + truncate beats replaying the full history, same final state."""
    updates = WAL_LENGTHS[-1]
    directory = tmp_path / "node"
    original, last_lsn = _build_history(directory, updates)

    long_wal_seconds, recovered = _time_recovery(directory)
    assert recovered.snapshot() == original.snapshot()

    # Checkpoint: snapshot the state, truncate the WAL behind it.
    Snapshot.capture(original, wal_lsn=last_lsn).write(directory / SNAPSHOT_FILE)
    wal = WriteAheadLog(directory / WAL_FILE, sync="none")
    wal.truncate()
    wal.close()

    best_snapshot_seconds = min(_time_recovery(directory)[0] for _ in range(3))
    _, from_snapshot = _time_recovery(directory)
    assert from_snapshot.snapshot() == original.snapshot()
    assert best_snapshot_seconds < long_wal_seconds, (
        f"snapshot recovery ({best_snapshot_seconds * 1000:.1f} ms) not faster than "
        f"full-WAL recovery ({long_wal_seconds * 1000:.1f} ms)"
    )


def main() -> None:  # pragma: no cover - CLI convenience
    from benchmarks.common import record_result

    print(f"table: {TABLE_ROWS} rows (fixed); WAL grows with update count")
    times = {}
    for updates in WAL_LENGTHS:
        directory = pathlib.Path(tempfile.mkdtemp(prefix="recovery-bench-"))
        try:
            _build_history(directory, updates)
            times[updates] = min(_time_recovery(directory)[0] for _ in range(3))
            print(f"  {updates:>6} WAL records: recovery {times[updates] * 1000:8.1f} ms")
        finally:
            shutil.rmtree(directory, ignore_errors=True)

    directory = pathlib.Path(tempfile.mkdtemp(prefix="recovery-bench-"))
    try:
        original, last_lsn = _build_history(directory, WAL_LENGTHS[-1])
        long_wal = min(_time_recovery(directory)[0] for _ in range(3))
        Snapshot.capture(original, wal_lsn=last_lsn).write(directory / SNAPSHOT_FILE)
        wal = WriteAheadLog(directory / WAL_FILE, sync="none")
        wal.truncate()
        wal.close()
        snap = min(_time_recovery(directory)[0] for _ in range(3))
        print(
            f"  snapshot bound: full-WAL {long_wal * 1000:8.1f} ms  ->  "
            f"after snapshot {snap * 1000:8.1f} ms  ({long_wal / max(snap, 1e-9):4.1f}x faster)"
        )
        assert snap < long_wal
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    print("snapshot-bound assertion: OK")
    record = {
        "table_rows": TABLE_ROWS,
        "recovery_ms_by_wal_records": {str(k): round(v * 1000, 2) for k, v in times.items()},
        "full_wal_ms": round(long_wal * 1000, 2),
        "after_snapshot_ms": round(snap * 1000, 2),
    }
    print("trajectory:", record_result(
        "recovery_time", record,
        headline="full_wal_ms", higher_is_better=False,
    ))


if __name__ == "__main__":  # pragma: no cover
    main()
