"""Table 2 default parameter point: all three systems at the default workload.

This is the anchor measurement every figure varies from (depth 2, default
data size and fanout, default trigger population, 20 satisfied triggers).
"""

import pytest

from repro.core.service import ExecutionMode
from benchmarks.common import BENCH_DEFAULTS, time_updates


@pytest.mark.parametrize(
    "mode",
    [ExecutionMode.UNGROUPED, ExecutionMode.GROUPED, ExecutionMode.GROUPED_AGG],
)
def test_table2_default_point(benchmark, mode):
    benchmark.group = "table2-defaults"
    parameters = BENCH_DEFAULTS
    if mode is ExecutionMode.UNGROUPED:
        # One SQL trigger per XML trigger: keep the population small enough
        # for the benchmark to finish while preserving the per-trigger cost.
        parameters = parameters.with_(num_triggers=20, satisfied_triggers=20)
    runner = time_updates(benchmark, parameters, mode, rounds=5)
    assert runner.fired > 0
