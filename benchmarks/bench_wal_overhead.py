"""Durability tax: WAL-on vs in-memory throughput on the Figure 17 workload.

The write-ahead log (`repro.persist`) appends one net-delta record per
committed statement (or batch), *after* the rows are applied and *before*
triggers fire.  Because the paper's per-update cost is dominated by the
trigger pipeline — pushed-down plan evaluation, node construction, condition
checks over the constants table — the extra encode+write is a small fraction
of the update path.  This benchmark pins that claim: on the Figure 17
default workload (200 structurally similar triggers, 20 satisfied), WAL-on
throughput stays **within ~25 %** of the pure in-memory engine.

Sync policies trade durability for latency (see ``docs/operations.md``):

* ``none``   — records buffered in the process (fastest, weakest);
* ``flush``  — every record pushed to the OS page cache (survives a process
  crash; the default, and what this benchmark measures);
* ``fsync``  — every record forced to stable storage (survives power loss).

Run with pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_wal_overhead.py -q

or standalone for a text comparison (also asserts the <= 25 % overhead)::

    PYTHONPATH=src python -m benchmarks.bench_wal_overhead
"""

import shutil
import tempfile
import time

import pytest

from repro.core.service import ExecutionMode
from benchmarks.common import BENCH_DEFAULTS, StatementRunner

from repro.workloads import ExperimentHarness

#: Statements per timed comparison round in the overhead check.
_CHECK_STATEMENTS = 200


def _build(durable_dir=None, sync="flush"):
    harness = ExperimentHarness(BENCH_DEFAULTS, updates=1)
    setup = harness.build_setup(
        BENCH_DEFAULTS, ExecutionMode.GROUPED_AGG,
        durable_dir=durable_dir, durability_sync=sync,
    )
    statements = setup.workload.update_statements(400, setup.database)
    return setup, statements


@pytest.mark.parametrize("durability", ["off", "flush", "fsync"])
def test_wal_overhead(benchmark, durability, tmp_path):
    """Per-update time with durability off / flush / fsync."""
    benchmark.group = "wal-overhead"
    if durability == "off":
        setup, statements = _build()
    else:
        setup, statements = _build(str(tmp_path / "node"), durability)
    runner = StatementRunner(setup, statements)
    benchmark.pedantic(runner, rounds=10, iterations=1, warmup_rounds=2)
    assert runner.fired > 0
    if durability != "off":
        assert setup.wal.appended > 0


def _time_updates(durable_dir=None, sync="flush", statements=_CHECK_STATEMENTS):
    setup, pool = _build(durable_dir, sync)
    started = time.perf_counter()
    for statement in pool[:statements]:
        setup.run_statement(statement)
    elapsed = time.perf_counter() - started
    assert setup.fired_count > 0
    return elapsed, setup


def test_wal_on_within_25_percent():
    """Acceptance check: WAL-on ('flush') stays within ~25 % of in-memory."""
    best = float("inf")
    for _ in range(3):  # best-of-3 shields the ratio from scheduler noise
        memory_seconds, _ = _time_updates()
        durable_dir = tempfile.mkdtemp(prefix="wal-bench-")
        try:
            wal_seconds, setup = _time_updates(durable_dir)
            assert setup.wal.appended >= _CHECK_STATEMENTS
        finally:
            shutil.rmtree(durable_dir, ignore_errors=True)
        best = min(best, wal_seconds / memory_seconds)
        if best <= 1.25:
            break
    assert best <= 1.25, f"WAL-on path is {best:.2f}x the in-memory path (> 1.25x)"


def main() -> None:  # pragma: no cover - CLI convenience
    from benchmarks.common import record_result

    record: dict = {"statements": _CHECK_STATEMENTS}
    memory_seconds, _ = _time_updates()
    record["in_memory_ms"] = round(memory_seconds * 1000, 2)
    for sync in ("none", "flush", "fsync"):
        durable_dir = tempfile.mkdtemp(prefix="wal-bench-")
        try:
            wal_seconds, _ = _time_updates(durable_dir, sync)
        finally:
            shutil.rmtree(durable_dir, ignore_errors=True)
        print(
            f"sync={sync:>6}: {_CHECK_STATEMENTS} updates  "
            f"in-memory {memory_seconds * 1000:8.1f} ms   "
            f"wal-on {wal_seconds * 1000:8.1f} ms   "
            f"overhead {wal_seconds / memory_seconds:5.2f}x"
        )
        record[f"sync_{sync}"] = {
            "wal_on_ms": round(wal_seconds * 1000, 2),
            "overhead": round(wal_seconds / memory_seconds, 3),
        }
    test_wal_on_within_25_percent()
    print("overhead assertion (<= 1.25x at sync=flush): OK")
    print("trajectory:", record_result(
        "wal_overhead", record,
        headline="sync_flush.wal_on_ms", higher_is_better=False,
    ))


if __name__ == "__main__":  # pragma: no cover
    main()
