"""Web gateway: WebSocket-connection-scale activation fan-out.

The web twin of ``bench_net_fanout.py``: one
:class:`~repro.serving.ActiveViewServer` (hierarchy workload, Figure
17-style triggers) behind a :class:`~repro.serving.web.WebGateway`;
``CONNECTIONS`` WebSocket subscribers attach, then a producer streams
conflict-free leaf updates over the REST surface.  Every run is
**equivalence-checked** against an in-process
:class:`~repro.serving.Subscriber` oracle attached to the same server:
every connection must receive exactly the oracle's activation sequence,
per shard, in order — delivery at scale, not best-effort sampling.

The interesting question versus the TCP front end is the cost of the web
packaging: JSON activation records inside RFC 6455 TEXT frames instead of
CRC-framed binary, with the :class:`~repro.serving.web.JsonFrameCache`
amortizing the encode to once per activation process-wide.  The headline
metric is the aggregate delivery rate (``ws_deliveries_per_s``), gated by
``tools/check_bench_regression.py``; the standalone run additionally
asserts the fan-out moved at least ``MIN_DELIVERIES`` activation
deliveries (the ≥1000-activation acceptance floor) and that the frame
cache did its job (one encode per activation, not per connection).

Run with pytest (scaled-down)::

    PYTHONPATH=src python -m pytest benchmarks/bench_web_fanout.py -q

or standalone for the full sweep::

    PYTHONPATH=src python -m benchmarks.bench_web_fanout
"""

from __future__ import annotations

import asyncio
import time
from collections import Counter

from repro.serving import Subscriber
from repro.serving.web import WebClient, WebGateway, WsClient
from repro.workloads import ExperimentHarness

from benchmarks.common import BENCH_DEFAULTS, BENCH_SCALE

#: A small trigger population: fan-out cost scales with *subscribers x
#: activations*, so the interesting axis is connection count, not triggers.
PARAMETERS = BENCH_DEFAULTS.with_(
    leaf_tuples=max(64, min(BENCH_DEFAULTS.leaf_tuples, 1_024)),
    num_triggers=20,
    satisfied_triggers=5,
)

#: Concurrent WebSocket subscriber connections for the standalone run.
CONNECTIONS = max(500, int(500 * BENCH_SCALE))

#: Producer statements streamed over REST.
UPDATES = 12

#: Upgrade handshakes in flight at once while building the population.
CONNECT_BATCH = 100

#: Acceptance floor: the recorded run must move at least this many
#: activation deliveries end to end (ISSUE: "≥1000-activation fan-out").
MIN_DELIVERIES = 1000


def build_stack() -> tuple:
    """A started server + web gateway running the hierarchy workload."""
    harness = ExperimentHarness(PARAMETERS)
    server, workload = harness.build_server(PARAMETERS, shard_count=2)
    oracle = Subscriber("oracle", capacity=65536)
    server.attach_subscriber(oracle)
    server.start()
    gateway = WebGateway(server, send_buffer=4096).start()
    return server, gateway, workload, oracle


async def _fan_out(host, port, statements, connections):
    """Connect, subscribe, produce, and consume; returns the measured run."""
    clients: list[WsClient] = []
    connect_started = time.perf_counter()
    for batch_start in range(0, connections, CONNECT_BATCH):
        batch = min(CONNECT_BATCH, connections - batch_start)
        clients.extend(
            await asyncio.gather(
                *(WsClient.connect(host, port) for _ in range(batch))
            )
        )
    subscriptions = []
    for batch_start in range(0, connections, CONNECT_BATCH):
        subscriptions.extend(
            await asyncio.gather(
                *(client.subscribe() for client in
                  clients[batch_start:batch_start + CONNECT_BATCH])
            )
        )
    connect_seconds = time.perf_counter() - connect_started

    producer = await WebClient.connect(host, port)
    produce_started = time.perf_counter()
    await producer.submit_batch(statements)

    async def consume(subscription, expected):
        received = []
        while len(received) < expected:
            activation = await subscription.get(timeout=120)
            assert activation is not None, "stream ended early (pause/close)"
            received.append(activation)
        return received

    # The server knows how many activations the workload produced; every
    # connection must receive exactly that many (checked in detail after).
    stats = await producer.stats()
    expected = stats["activations_published"]
    per_connection = await asyncio.gather(
        *(consume(subscription, expected) for subscription in subscriptions)
    )
    fanout_seconds = time.perf_counter() - produce_started

    for client in clients:
        await client.close()
    await producer.close()
    return connect_seconds, fanout_seconds, expected, per_connection


def run_fanout(connections: int) -> dict:
    """One measured fan-out point, equivalence-checked against the oracle."""
    server, gateway, workload, oracle = build_stack()
    try:
        statements = workload.client_streams(1, UPDATES)[0]
        host, port = gateway.address
        connect_seconds, fanout_seconds, expected, per_connection = asyncio.run(
            _fan_out(host, port, statements, connections)
        )
        server.drain()
        oracle_stream = oracle.drain()
        assert len(oracle_stream) == expected
        oracle_by_shard: dict[int, list[tuple]] = {}
        for activation in oracle_stream:
            oracle_by_shard.setdefault(activation.shard, []).append(
                (activation.sequence, activation.trigger, activation.key)
            )
        # Every connection's stream is the oracle's stream: same multiset,
        # same per-shard order.  (One violation anywhere fails the run.)
        oracle_counter = Counter(
            (a.shard, a.sequence, a.trigger) for a in oracle_stream
        )
        for received in per_connection:
            assert Counter(
                (a.shard, a.sequence, a.trigger) for a in received
            ) == oracle_counter, "a connection diverged from the oracle"
            by_shard: dict[int, list[tuple]] = {}
            for activation in received:
                by_shard.setdefault(activation.shard, []).append(
                    (activation.sequence, activation.trigger, activation.key)
                )
            assert by_shard == oracle_by_shard
        deliveries = expected * connections
        report = gateway.web_report()
        assert report["subscriptions_paused"] == 0, "fan-out paused a subscriber"
        # One JSON encode per activation, not per connection: the cache
        # misses once per activation and hits for every other delivery.
        assert report["shared_encode_misses"] <= expected
        assert report["shared_encode_hits"] >= deliveries - expected
        return {
            "connections": connections,
            "activations": expected,
            "deliveries": deliveries,
            "connect_per_s": round(connections / max(connect_seconds, 1e-9), 1),
            "fanout_seconds": round(fanout_seconds, 3),
            "ws_deliveries_per_s": round(
                deliveries / max(fanout_seconds, 1e-9), 1
            ),
            "ws_frames_sent": report["ws_frames_sent"],
            "frame_cache_hits": report["shared_encode_hits"],
            "frame_cache_misses": report["shared_encode_misses"],
        }
    finally:
        gateway.stop()
        server.stop()


def test_every_connection_receives_the_oracle_stream():
    """Scaled-down acceptance: full equivalence at 48 connections."""
    result = run_fanout(48)
    assert result["deliveries"] == result["activations"] * 48
    assert result["activations"] > 0
    assert result["frame_cache_hits"] > 0


def test_fanout_clears_the_delivery_floor():
    """Mid-scale stress point: ≥1000 deliveries through the gateway."""
    result = run_fanout(128)
    assert result["deliveries"] >= MIN_DELIVERIES


def main() -> None:  # pragma: no cover - CLI convenience
    from benchmarks.common import record_result

    result = run_fanout(CONNECTIONS)
    print(
        f"connections={result['connections']}  "
        f"activations={result['activations']}  "
        f"ws_frames={result['ws_frames_sent']}  "
        f"encodes={result['frame_cache_misses']}  "
        f"fan-out {result['ws_deliveries_per_s']:9.0f} deliveries/s"
    )
    print("equivalence vs in-process oracle: OK (every connection)")
    assert result["deliveries"] >= MIN_DELIVERIES, (
        f"fan-out too small: {result['deliveries']} < {MIN_DELIVERIES}"
    )
    print("trajectory:", record_result(
        "web_fanout", result,
        headline="ws_deliveries_per_s", higher_is_better=True,
    ))


if __name__ == "__main__":  # pragma: no cover
    main()
