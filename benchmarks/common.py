"""Shared setup for the benchmark suite.

Every benchmark regenerates one figure/table of the paper's evaluation
(Section 6 and Appendix G) on a scaled-down workload so the whole suite runs
in minutes on a laptop.  The *shapes* the paper reports (who wins, how the
curves scale) are preserved; absolute numbers differ because the substrate is
a pure-Python engine rather than DB2 on the paper's hardware.

Set the environment variable ``REPRO_BENCH_SCALE`` to scale the workload
sizes (1.0 = the sizes used below; larger values approach the paper's).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.core.service import ExecutionMode
from repro.workloads import ExperimentHarness, WorkloadParameters

#: Multiplier applied to the scaled-down benchmark sizes.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Where benchmark trajectory files are written (``BENCH_<name>.json``).
#: Override with ``REPRO_BENCH_RESULTS``; CI uploads this directory as an
#: artifact so every run extends the repository's perf baseline.
RESULTS_DIR = os.environ.get("REPRO_BENCH_RESULTS", "benchmarks/results")


def record_result(name: str, record: dict, *, timestamp: str | None = None,
                  results_dir: str | None = None, headline: str | None = None,
                  higher_is_better: bool = False) -> pathlib.Path:
    """Append one benchmark run's numbers to ``BENCH_<name>.json``.

    The file holds a JSON list — one entry per run, appended, never
    rewritten away — so successive runs (and successive PRs, via the CI
    artifact) form a perf *trajectory* rather than a single point.  Each
    entry carries a timestamp (``timestamp=`` argument, else the
    ``REPRO_BENCH_TIMESTAMP`` environment variable — useful to stamp a whole
    CI run coherently — else the current UTC time), the active
    ``REPRO_BENCH_SCALE``, the git commit being measured (the
    ``REPRO_BENCH_GIT_SHA`` environment variable, which CI sets to the
    workflow's SHA so the regression gate can attribute points to commits),
    and the benchmark's own numbers.

    ``headline`` names the record key (dots descend into nested dicts, e.g.
    ``"ungrouped.compiled_ms"``) that summarizes this benchmark's
    performance; ``tools/check_bench_regression.py`` compares that metric
    across trajectory entries and fails CI on a large regression.
    ``higher_is_better`` states the metric's direction (throughputs vs
    latencies).
    """
    directory = pathlib.Path(results_dir or RESULTS_DIR)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    trajectory: list = []
    if path.exists():
        try:
            existing = json.loads(path.read_text(encoding="utf-8"))
            if isinstance(existing, list):
                trajectory = existing
        except ValueError:
            # An interrupted write left the file unreadable.  The history is
            # the whole point of the trajectory, so set the damaged file
            # aside for inspection instead of clobbering it.
            quarantine = path.with_suffix(".json.corrupt")
            path.replace(quarantine)
            print(f"record_result: unreadable {path.name} moved to {quarantine.name}")
    if timestamp is None:
        timestamp = os.environ.get("REPRO_BENCH_TIMESTAMP")
    if timestamp is None:
        timestamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    entry = {"timestamp": timestamp, "scale": BENCH_SCALE, **record}
    git_sha = os.environ.get("REPRO_BENCH_GIT_SHA")
    if git_sha:
        entry["git_sha"] = git_sha
    if headline is not None:
        entry["_headline"] = {"metric": headline, "higher_is_better": higher_is_better}
    trajectory.append(entry)
    path.write_text(json.dumps(trajectory, indent=2, default=str) + "\n", encoding="utf-8")
    return path

#: Scaled-down stand-in for the bold column of Table 2.
BENCH_DEFAULTS = WorkloadParameters(
    depth=2,
    leaf_tuples=max(64, int(4_096 * BENCH_SCALE)),
    fanout=32,
    num_triggers=max(1, int(200 * BENCH_SCALE)),
    satisfied_triggers=20,
    seed=42,
)

#: How many prepared update statements each benchmark may consume.
STATEMENT_POOL = 400


def build_setup(parameters: WorkloadParameters, mode: ExecutionMode | str):
    """Build a wired system plus a pool of update statements to time."""
    harness = ExperimentHarness(parameters, updates=1)
    setup = harness.build_setup(parameters, mode)
    statements = setup.workload.update_statements(STATEMENT_POOL, setup.database)
    return setup, statements


class StatementRunner:
    """Callable that executes the next prepared statement on each invocation.

    Re-running the *same* statement would be a no-op update (empty pruned
    transition tables) and would not exercise the trigger path, so each timed
    call consumes a fresh statement from the pool.
    """

    def __init__(self, setup, statements):
        self.setup = setup
        self.statements = list(statements)
        self.position = 0

    def __call__(self):
        statement = self.statements[self.position % len(self.statements)]
        self.position += 1
        self.setup.run_statement(statement)

    @property
    def fired(self) -> int:
        return self.setup.fired_count


def time_updates(benchmark, parameters: WorkloadParameters, mode, rounds: int = 10):
    """Benchmark the average per-update time for one parameter point / mode."""
    setup, statements = build_setup(parameters, mode)
    runner = StatementRunner(setup, statements)
    benchmark.pedantic(runner, rounds=rounds, iterations=1, warmup_rounds=2)
    return runner


class BatchRunner:
    """Callable executing the next ``batch_size`` prepared statements as one batch.

    The set-oriented counterpart of :class:`StatementRunner`: each timed call
    submits a fresh slice of the statement pool through ``execute_batch``, so
    the trigger pipeline runs once per call instead of once per statement.
    The pool must hold enough statements for every timed call — re-running a
    consumed statement would be a no-op update (empty pruned transitions)
    and would skip the trigger path, understating batched cost.
    """

    def __init__(self, setup, statements, batch_size: int):
        self.setup = setup
        self.statements = list(statements)
        self.batch_size = batch_size
        self.position = 0

    def __call__(self):
        chunk = self.statements[self.position:self.position + self.batch_size]
        if len(chunk) < self.batch_size:
            raise RuntimeError(
                "statement pool exhausted: size the pool to rounds x batch_size"
            )
        self.position += self.batch_size
        self.setup.run_batch(chunk)

    @property
    def fired(self) -> int:
        return self.setup.fired_count


def time_batches(benchmark, parameters: WorkloadParameters, mode, batch_size: int,
                 rounds: int = 10, warmup_rounds: int = 2):
    """Benchmark the per-batch time for one parameter point / mode / batch size."""
    harness = ExperimentHarness(parameters, updates=1)
    setup = harness.build_setup(parameters, mode)
    # Every timed (and warmup) call consumes a fresh batch of statements.
    pool = (rounds + warmup_rounds + 1) * batch_size
    statements = setup.workload.update_statements(pool, setup.database)
    runner = BatchRunner(setup, statements, batch_size)
    benchmark.pedantic(runner, rounds=rounds, iterations=1, warmup_rounds=warmup_rounds)
    return runner
