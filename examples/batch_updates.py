"""Batch execution: set-at-a-time trigger processing across many statements.

Builds the Figure 17 default hierarchy workload, then runs the same 50
independent leaf-price updates twice — once as a per-statement loop (the
paper's measurement) and once through ``ActiveViewService.execute_batch`` —
and prints the timing plus the firing behaviour.  The batch path coalesces
all 50 statements into one net transition table per (table, event), so every
satisfied XML trigger activates once with the final node state instead of
once per statement.

Run with:  PYTHONPATH=src python examples/batch_updates.py
"""

from __future__ import annotations

import time

from repro.core.service import ExecutionMode
from repro.workloads import ExperimentHarness, WorkloadParameters

UPDATES = 50


def build(parameters: WorkloadParameters):
    harness = ExperimentHarness(parameters, updates=UPDATES)
    setup = harness.build_setup(parameters, ExecutionMode.GROUPED_AGG)
    statements = setup.workload.update_statements(UPDATES, setup.database)
    return setup, statements


def main() -> None:
    parameters = WorkloadParameters(
        leaf_tuples=4_000, fanout=32, num_triggers=100, satisfied_triggers=20
    )

    # --- per-statement loop -------------------------------------------------------
    setup, statements = build(parameters)
    started = time.perf_counter()
    for statement in statements:
        setup.run_statement(statement)
    sequential = time.perf_counter() - started
    print(f"per-statement: {UPDATES} updates in {sequential * 1000:7.1f} ms, "
          f"{setup.fired_count} XML trigger firings")

    # --- one batch ----------------------------------------------------------------
    setup, statements = build(parameters)
    started = time.perf_counter()
    result = setup.service.execute_batch(statements)
    batched = time.perf_counter() - started
    print(f"batched:       {UPDATES} updates in {batched * 1000:7.1f} ms, "
          f"{setup.fired_count} XML trigger firings")

    (delta,) = result.deltas
    print(f"\ncoalesced delta: {delta.statements} statements -> one "
          f"{delta.event} slice on {delta.table!r} with {delta.rowcount} rows")
    print(f"speedup: {sequential / batched:.1f}x")


if __name__ == "__main__":
    main()
