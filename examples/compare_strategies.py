"""Compare UNGROUPED / GROUPED / GROUPED-AGG / MATERIALIZED on one workload.

A miniature version of the paper's evaluation (Section 6): the synthetic
hierarchy workload of Table 2 at a reduced size, 1 000 structurally similar
triggers, and a stream of leaf updates.  Prints the average time per update
for each execution strategy, plus the trigger-compilation time.

Run with:  python examples/compare_strategies.py
"""

from __future__ import annotations

from repro.core.service import ExecutionMode
from repro.workloads import ExperimentHarness, WorkloadParameters


def main() -> None:
    parameters = WorkloadParameters(
        depth=2,
        leaf_tuples=8_000,
        fanout=32,
        num_triggers=1_000,
        satisfied_triggers=20,
    )
    harness = ExperimentHarness(parameters, updates=15)

    print(f"workload: depth={parameters.depth}, leaf tuples={parameters.effective_leaf_tuples}, "
          f"fanout={parameters.fanout}, triggers={parameters.effective_num_triggers}, "
          f"satisfied={parameters.effective_satisfied}")
    print()

    strategies = [
        ExecutionMode.GROUPED_AGG,
        ExecutionMode.GROUPED,
        harness.MATERIALIZED,
    ]
    print(f"{'strategy':<16} {'avg ms / update':>16} {'fired / update':>16}")
    for strategy in strategies:
        setup = harness.build_setup(parameters, strategy)
        avg_seconds, fired = harness.measure(setup)
        name = strategy if isinstance(strategy, str) else strategy.value
        print(f"{name:<16} {avg_seconds * 1000.0:>16.2f} {fired:>16.1f}")

    # UNGROUPED with the full trigger population would take minutes; show the
    # per-trigger cost with a small population instead.
    small = parameters.with_(num_triggers=50, satisfied_triggers=20)
    setup = harness.build_setup(small, ExecutionMode.UNGROUPED)
    avg_seconds, fired = harness.measure(setup)
    print(f"{'ungrouped(50)':<16} {avg_seconds * 1000.0:>16.2f} {fired:>16.1f}")
    print()

    report = harness.compile_time(trigger_count=20)
    print(f"trigger compile time: avg {report['avg_compile_ms']:.2f} ms, "
          f"max {report['max_compile_ms']:.2f} ms over {report['triggers_compiled']} triggers")


if __name__ == "__main__":
    main()
