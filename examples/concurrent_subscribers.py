"""Concurrent serving: many clients, sharded execution, subscriber fan-out.

Builds a small hierarchy workload partitioned across 4 shards, registers the
trigger population through an ``ActiveViewServer``, and then:

1. drives the server with 6 concurrent closed-loop clients streaming
   conflict-free leaf-price updates (each client owns its own top-element
   subtrees);
2. consumes the resulting activations live from a bounded ``Subscriber`` on
   a separate consumer thread (backpressure-safe, per-node ordered);
3. prints what happened — shard batch statistics, delivery counts, and a
   sample of the delivered activations.

Run with:  PYTHONPATH=src python examples/concurrent_subscribers.py
"""

from __future__ import annotations

import threading

from repro.core.service import ExecutionMode
from repro.serving import ActiveViewServer
from repro.workloads import HierarchyWorkload, WorkloadParameters, run_concurrent_clients

SHARDS = 4
CLIENTS = 6
UPDATES_PER_CLIENT = 12


def main() -> None:
    parameters = WorkloadParameters(
        depth=2, leaf_tuples=1_024, fanout=16, num_triggers=64,
        satisfied_triggers=8, seed=42,
    )
    workload = HierarchyWorkload(parameters)

    # One catalog, four shards; every top element's subtree lives on exactly
    # one shard (view-closed placement), so per-shard trigger processing is
    # exact.
    server = ActiveViewServer(
        workload.build_sharded_database(SHARDS),
        mode=ExecutionMode.GROUPED_AGG,
        max_batch=16,
    )
    server.register_view(workload.build_view())
    server.register_action("collect", lambda node: None)
    for definition in workload.trigger_definitions():
        server.create_trigger(definition)
    print(f"installed {len(server.triggers)} triggers on {SHARDS} shards "
          f"(plan cache: {server.plan_cache.misses} compiles, "
          f"{server.plan_cache.hits} reuses)")

    # A bounded subscriber consumed live from its own thread.
    inbox = server.subscribe("inbox", capacity=32)
    received = []

    def consume() -> None:
        for activation in inbox:  # ends once the subscriber is closed + empty
            received.append(activation)

    consumer = threading.Thread(target=consume, name="consumer", daemon=True)
    consumer.start()

    streams = workload.client_streams(CLIENTS, UPDATES_PER_CLIENT)
    with server:
        result = run_concurrent_clients(server, streams)
    inbox.close()
    consumer.join(timeout=10)

    print(f"{result.statements} statements from {CLIENTS} clients in "
          f"{result.seconds * 1000:.0f} ms "
          f"({result.throughput:.0f} stmt/s aggregate)")
    for index, stats in enumerate(server.stats):
        print(f"  shard {index}: {stats.statements} statements in "
              f"{stats.batches} micro-batches (largest {stats.max_batch})")
    print(f"delivered {inbox.delivered} activations "
          f"({result.activations} published, {inbox.abandoned} abandoned)")

    for activation in received[:5]:
        print(f"  [{activation.shard}:{activation.sequence}] {activation.trigger} "
              f"{activation.event.value} key={activation.key}")

    assert inbox.delivered == result.activations and inbox.abandoned == 0
    assert len(received) == result.activations


if __name__ == "__main__":
    main()
