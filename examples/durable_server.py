"""Durability end to end: log, crash, recover, redeliver.

Walks the full persistence story on the paper's product/vendor example:

1. open a :class:`~repro.persist.DurableServer` on an empty directory,
   create the schema, register the catalog view and a price-watch trigger
   (everything lands in the per-shard WALs and the DDL log);
2. serve a few updates, consume *some* of the resulting activations from a
   named durable subscriber — acking only part of them;
3. **crash**: abandon the process state without a clean shutdown;
4. reopen the same directory: tables, triggers, and sequence counters come
   back via snapshot + WAL replay (no trigger re-fires), and the
   activations that were accepted but never acked are redelivered to the
   re-subscribed consumer — at-least-once, per-shard ordered;
5. checkpoint with ``snapshot()`` (snapshots every shard, truncates the
   WALs, compacts the outbox) and show that a third open starts clean.

Run with:  PYTHONPATH=src python examples/durable_server.py
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

from repro.persist import DurableServer
from repro.relational import Column, DataType, ForeignKey, TableSchema
from repro.relational.dml import UpdateStatement
from repro.xqgm.views import catalog_view

PRODUCTS = [
    {"pid": "P1", "pname": "CRT 15", "mfr": "Samsung"},
    {"pid": "P2", "pname": "LCD 19", "mfr": "Samsung"},
]
VENDORS = [
    {"vid": "Amazon", "pid": "P1", "price": 100.0},
    {"vid": "Bestbuy", "pid": "P1", "price": 120.0},
    {"vid": "Buy.com", "pid": "P2", "price": 200.0},
    {"vid": "Bestbuy", "pid": "P2", "price": 180.0},
]


def by_product(table: str, key: tuple | None):
    """Routing key: co-locate each product with its vendors (view-closure)."""
    if table == "vendor" and key is not None:
        return key[1]
    return key[0] if key is not None else table


def open_server(directory: Path) -> DurableServer:
    # Views, actions, and the routing function are code: supply them on every
    # open.  Registrations and trigger definitions replay from the logs.
    return DurableServer(
        directory,
        shard_count=2,
        key_fn=by_product,
        views=[catalog_view()],
        actions={"notify": lambda node: None},
    )


def main() -> None:
    directory = Path(tempfile.mkdtemp(prefix="durable-server-"))
    try:
        # ---- 1. first boot: schema + registry, all logged --------------------
        server = open_server(directory)
        db = server.sharded
        db.create_table(TableSchema(
            "product",
            [Column("pid", DataType.TEXT, nullable=False),
             Column("pname", DataType.TEXT, nullable=False),
             Column("mfr", DataType.TEXT)],
            primary_key=["pid"],
        ))
        db.create_table(TableSchema(
            "vendor",
            [Column("vid", DataType.TEXT, nullable=False),
             Column("pid", DataType.TEXT, nullable=False),
             Column("price", DataType.REAL, nullable=False)],
            primary_key=["vid", "pid"],
            foreign_keys=[ForeignKey(("pid",), "product", ("pid",))],
        ))
        db.load_rows("product", PRODUCTS)
        db.load_rows("vendor", VENDORS)
        server.ensure_view(catalog_view())
        server.ensure_trigger("""
            CREATE TRIGGER PriceWatch AFTER UPDATE ON view('catalog')/product
            DO notify(NEW_NODE)
        """)

        # ---- 2. serve, consume, ack only the first activation ----------------
        inbox = server.subscribe("inbox", capacity=64)
        with server:
            server.execute(UpdateStatement("vendor", {"price": 75.0},
                                           keys=[("Amazon", "P1")]))
            server.execute(UpdateStatement("vendor", {"price": 190.0},
                                           keys=[("Buy.com", "P2")]))
        delivered = inbox.drain()
        print(f"served 2 updates -> {len(delivered)} activations delivered")
        inbox.ack(delivered[0])
        print(f"acked [{delivered[0].shard}:{delivered[0].sequence}] "
              f"{delivered[0].trigger} key={delivered[0].key}; "
              f"crashing with 1 unacked")
        pre_crash = db.snapshot()
        del server, inbox, db  # ---- 3. crash: no close(), no snapshot() ------

        # ---- 4. recover ------------------------------------------------------
        recovered = open_server(directory)
        assert recovered.sharded.snapshot() == pre_crash
        assert [t.name for t in recovered.server.triggers] == ["PriceWatch"]
        print("recovered: tables match pre-crash state, trigger registry intact, "
              f"sequences {recovered.server.sequences}")

        inbox = recovered.subscribe("inbox", capacity=64)
        backlog = inbox.drain()
        print(f"redelivered {len(backlog)} unacked activation(s):")
        for activation in backlog:
            print(f"  [{activation.shard}:{activation.sequence}] "
                  f"{activation.trigger} key={activation.key} "
                  f"new price visible: "
                  f"{activation.new_node.attribute('name')}")
            inbox.ack(activation)
        assert len(backlog) == 1 and backlog[0].key == delivered[1].key

        # New work still flows (and is logged) after recovery.
        with recovered:
            recovered.execute(UpdateStatement("vendor", {"price": 60.0},
                                              keys=[("Amazon", "P1")]))
        for activation in inbox.drain():
            inbox.ack(activation)

        # ---- 5. checkpoint ---------------------------------------------------
        recovered.snapshot()
        wal_bytes = sum(wal.byte_size for wal in recovered.wals)
        print(f"snapshot taken: WALs truncated to {wal_bytes} bytes, "
              f"outbox compacted to {len(recovered._pending)} pending")
        recovered.close()

        fresh = open_server(directory)
        inbox = fresh.subscribe("inbox", capacity=64)
        assert inbox.drain() == [] and fresh.sharded.row_count("vendor") == 4
        print("third open: clean start from snapshot, nothing to redeliver")
        fresh.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)


if __name__ == "__main__":
    main()
