"""Inventory feed over a three-level view: INSERT / DELETE triggers.

Scenario: a distributor publishes a three-level XML view — regions containing
warehouses containing stock items — and downstream systems want to be told
when a warehouse *enters* or *leaves* the feed.  A warehouse is published
only while it stocks at least two items (a nested count predicate), so plain
row-level relational triggers cannot express this: whether a warehouse
appears or disappears depends on an aggregate over another table.  The
translated XML triggers handle it.

Run with:  python examples/inventory_feed.py
"""

from __future__ import annotations

from repro.core.service import ActiveViewService, ExecutionMode
from repro.relational import Column, DataType, Database, ForeignKey, TableSchema
from repro.xmlmodel import serialize
from repro.xqgm.expressions import ColumnRef, Comparison, Constant
from repro.xqgm.views import ViewDefinition, ViewElementSpec


def build_database() -> Database:
    db = Database("inventory")
    db.create_table(
        TableSchema(
            "region",
            [Column("rid", DataType.INTEGER, nullable=False), Column("name", DataType.TEXT)],
            primary_key=["rid"],
        )
    )
    db.create_table(
        TableSchema(
            "warehouse",
            [
                Column("wid", DataType.INTEGER, nullable=False),
                Column("rid", DataType.INTEGER, nullable=False),
                Column("city", DataType.TEXT),
            ],
            primary_key=["wid"],
            foreign_keys=[ForeignKey(("rid",), "region", ("rid",))],
        )
    )
    db.create_table(
        TableSchema(
            "stock",
            [
                Column("sid", DataType.INTEGER, nullable=False),
                Column("wid", DataType.INTEGER, nullable=False),
                Column("sku", DataType.TEXT, nullable=False),
                Column("quantity", DataType.INTEGER, nullable=False),
            ],
            primary_key=["sid"],
            foreign_keys=[ForeignKey(("wid",), "warehouse", ("wid",))],
        )
    )
    db.load_rows("region", [{"rid": 1, "name": "EMEA"}, {"rid": 2, "name": "APAC"}])
    db.load_rows(
        "warehouse",
        [
            {"wid": 10, "rid": 1, "city": "Rotterdam"},
            {"wid": 11, "rid": 1, "city": "Lyon"},
            {"wid": 20, "rid": 2, "city": "Osaka"},
        ],
    )
    db.load_rows(
        "stock",
        [
            {"sid": 1, "wid": 10, "sku": "bolt-m6", "quantity": 900},
            {"sid": 2, "wid": 10, "sku": "nut-m6", "quantity": 1200},
            {"sid": 3, "wid": 11, "sku": "bolt-m6", "quantity": 40},
            {"sid": 4, "wid": 20, "sku": "washer-8", "quantity": 300},
            {"sid": 5, "wid": 20, "sku": "bolt-m8", "quantity": 500},
        ],
    )
    return db


def build_view() -> ViewDefinition:
    """regions → warehouses (only those stocking >= 2 items) → items."""
    item = ViewElementSpec(
        name="item",
        table="stock",
        alias="S",
        content=[("sku", "S.sku"), ("quantity", "S.quantity")],
        link=[("wid", "wid")],
    )
    warehouse = ViewElementSpec(
        name="warehouse",
        table="warehouse",
        alias="W",
        attributes=[("city", "W.city")],
        children=[item],
        having=Comparison(">=", ColumnRef("count_item"), Constant(2)),
        link=[("rid", "rid")],
    )
    region = ViewElementSpec(
        name="region",
        table="region",
        alias="R",
        attributes=[("name", "R.name")],
        children=[warehouse],
    )
    return ViewDefinition("feed", "inventory", region)


def main() -> None:
    db = build_database()
    view = build_view()
    print("=== Published inventory feed (virtual; materialized for illustration) ===")
    print(serialize(view.materialize(db), indent=2))
    print()

    service = ActiveViewService(db, mode=ExecutionMode.GROUPED_AGG)
    service.register_view(view)
    service.register_action(
        "onPublished",
        lambda city: print(f"  >> warehouse published to the feed: {city.value}"),
    )
    service.register_action(
        "onRemoved",
        lambda city: print(f"  >> warehouse removed from the feed: {city.value}"),
    )
    service.create_trigger(
        "CREATE TRIGGER WarehousePublished AFTER INSERT "
        "ON view('feed')/region/warehouse DO onPublished(NEW_NODE/@city)"
    )
    service.create_trigger(
        "CREATE TRIGGER WarehouseRemoved AFTER DELETE "
        "ON view('feed')/region/warehouse DO onRemoved(OLD_NODE/@city)"
    )

    print("=== Lyon receives a second SKU: it crosses the 2-item threshold ===")
    service.insert("stock", {"sid": 6, "wid": 11, "sku": "nut-m6", "quantity": 75})
    print()

    print("=== Osaka ships out its bolts: it drops below the threshold ===")
    service.delete("stock", where=lambda r: r["sid"] == 5)
    print()

    print("=== A quantity-only update neither publishes nor removes anything ===")
    result = service.update("stock", {"quantity": 10}, where=lambda r: r["sid"] == 1)
    print(f"  fired triggers for this statement: {result.fired_xml_triggers}")


if __name__ == "__main__":
    main()
