"""Price-watch web service: many structurally similar triggers, one SQL trigger.

Scenario (the paper's motivating web-service setting): thousands of buyers
subscribe to price alerts on the supplier's XML catalog view — "tell me when
<product X> has a vendor selling below $Y".  All of these subscriptions are
structurally identical XML triggers that differ only in their constants, so
the Trigger Grouping stage (Section 5.1) collapses them into a single SQL
trigger driven by a constants table, no matter how many buyers subscribe.

Run with:  python examples/price_watch.py
"""

from __future__ import annotations

import random

from repro.core.service import ActiveViewService, ExecutionMode
from repro.xqgm.views import catalog_view

try:
    from examples.quickstart import build_database
except ImportError:  # running as `python examples/price_watch.py`
    from quickstart import build_database


def main() -> None:
    rng = random.Random(7)
    db = build_database()
    service = ActiveViewService(db, mode=ExecutionMode.GROUPED)
    service.register_view(catalog_view())

    alerts: list[tuple] = []
    service.register_action(
        "alert",
        lambda buyer, name, cheapest: alerts.append((str(buyer), str(name), float(str(cheapest)))),
    )

    # Register 500 buyer subscriptions: same shape, different constants.
    products = ["CRT 15", "LCD 19"]
    for buyer_id in range(500):
        product = rng.choice(products)
        threshold = rng.choice([90, 110, 130, 160, 190])
        service.create_trigger(
            f"CREATE TRIGGER watch_{buyer_id} AFTER UPDATE ON view('catalog')/product "
            f"WHERE NEW_NODE/@name = '{product}' "
            f"  and count(NEW_NODE/vendor[./price < {threshold}]) >= 1 "
            f"DO alert('buyer-{buyer_id}', NEW_NODE/@name, min(NEW_NODE/vendor/price))"
        )

    print(f"XML triggers registered : {len(service.triggers)}")
    print(f"trigger groups          : {service.group_count()}")
    print(f"SQL triggers installed  : {len(db.triggers())}")
    print()

    print("=== Amazon drops the price of P1 (a 'CRT 15') to 85 ===")
    service.update("vendor", {"price": 85.0},
                   where=lambda r: r["vid"] == "Amazon" and r["pid"] == "P1")
    print(f"alerts delivered: {len(alerts)}")
    for buyer, name, cheapest in alerts[:5]:
        print(f"  {buyer}: {name} now has a vendor at {cheapest:.2f}")
    if len(alerts) > 5:
        print(f"  ... and {len(alerts) - 5} more")
    print()

    alerts.clear()
    service.clear_logs()
    print("=== Buy.com raises the price of P2 (a 'LCD 19') to 210 ===")
    service.update("vendor", {"price": 210.0},
                   where=lambda r: r["vid"] == "Buy.com" and r["pid"] == "P2")
    print(f"alerts delivered: {len(alerts)} "
          "(the LCD 19 element changed, so subscriptions whose threshold still "
          "matches the cheapest remaining vendor are notified)")
    print()

    print("=== A vendor starts selling the LCD 19 for 95 ===")
    alerts.clear()
    service.insert("vendor", {"vid": "Newegg", "pid": "P2", "price": 95.0})
    print(f"alerts delivered: {len(alerts)}")
    buyers = sorted({buyer for buyer, _, _ in alerts})
    print(f"  distinct buyers notified: {len(buyers)}")


if __name__ == "__main__":
    main()
