"""Quickstart: the paper's running example, end to end.

Builds the product/vendor database of Figure 2, registers the catalog view of
Figure 3 (products with at least two vendors, vendors nested inside), creates
the Notify trigger of Section 2.2, and then runs the relational update from
Section 2.3 (product P1 goes on sale at Amazon).  The XML trigger fires with
the new value of the affected <product> element — without the XML view ever
being materialized.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.service import ActiveViewService, ExecutionMode
from repro.relational import Column, DataType, Database, ForeignKey, TableSchema
from repro.xmlmodel import serialize
from repro.xqgm.views import catalog_view


def build_database() -> Database:
    """The relational database of Figure 2."""
    db = Database("shop")
    db.create_table(
        TableSchema(
            "product",
            [
                Column("pid", DataType.TEXT, nullable=False),
                Column("pname", DataType.TEXT, nullable=False),
                Column("mfr", DataType.TEXT),
            ],
            primary_key=["pid"],
        )
    )
    db.create_table(
        TableSchema(
            "vendor",
            [
                Column("vid", DataType.TEXT, nullable=False),
                Column("pid", DataType.TEXT, nullable=False),
                Column("price", DataType.REAL, nullable=False),
            ],
            primary_key=["vid", "pid"],
            foreign_keys=[ForeignKey(("pid",), "product", ("pid",))],
        )
    )
    db.load_rows(
        "product",
        [
            {"pid": "P1", "pname": "CRT 15", "mfr": "Samsung"},
            {"pid": "P2", "pname": "LCD 19", "mfr": "Samsung"},
            {"pid": "P3", "pname": "CRT 15", "mfr": "Viewsonic"},
        ],
    )
    db.load_rows(
        "vendor",
        [
            {"vid": "Amazon", "pid": "P1", "price": 100.0},
            {"vid": "Bestbuy", "pid": "P1", "price": 120.0},
            {"vid": "Circuitcity", "pid": "P1", "price": 150.0},
            {"vid": "Buy.com", "pid": "P2", "price": 200.0},
            {"vid": "Bestbuy", "pid": "P2", "price": 180.0},
            {"vid": "Bestbuy", "pid": "P3", "price": 120.0},
            {"vid": "Circuitcity", "pid": "P3", "price": 140.0},
        ],
    )
    return db


def main() -> None:
    db = build_database()
    view = catalog_view()  # Figure 3: products with >= 2 vendors, vendors nested

    print("=== The (virtual) catalog view, materialized once for illustration ===")
    print(serialize(view.materialize(db), indent=2))
    print()

    # The active middleware: XML triggers translated into SQL triggers.
    service = ActiveViewService(db, mode=ExecutionMode.GROUPED_AGG)
    service.register_view(view)
    service.register_action(
        "notifySmith",
        lambda new_node: print("[notifySmith] product changed:\n"
                               + serialize(new_node, indent=2)),
    )

    trigger = service.create_trigger(
        """
        CREATE TRIGGER Notify AFTER Update
        ON view('catalog')/product
        WHERE OLD_NODE/@name = 'CRT 15'
        DO notifySmith(NEW_NODE)
        """
    )
    print(f"=== Created XML trigger {trigger.name!r} "
          f"(compiled in {service.last_compile_seconds * 1000:.1f} ms) ===")
    print()
    print("=== Generated SQL trigger for the vendor table (cf. Figure 16) ===")
    print(service.generated_sql("Notify")[0][:2000])
    print("  ... (truncated)")
    print()

    print("=== UPDATE vendor SET price = 75 WHERE vid = 'Amazon' AND pid = 'P1' ===")
    result = service.update(
        "vendor", {"price": 75.0}, where=lambda r: r["vid"] == "Amazon" and r["pid"] == "P1"
    )
    print(f"rows updated: {result.rowcount}; XML triggers fired: {result.fired_xml_triggers}")
    print()

    print("=== An update to a different product does NOT fire the trigger ===")
    result = service.update(
        "vendor", {"price": 170.0}, where=lambda r: r["vid"] == "Bestbuy" and r["pid"] == "P2"
    )
    print(f"rows updated: {result.rowcount}; XML triggers fired: {result.fired_xml_triggers}")


if __name__ == "__main__":
    main()
