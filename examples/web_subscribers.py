"""Web serving end to end: REST DML, WebSocket streams, crash-resume.

Puts the web gateway (:mod:`repro.serving.web`) over a
:class:`~repro.persist.DurableServer` on the paper's product/vendor example
and walks the browser-shaped client story — everything below travels as
HTTP/1.1 requests and RFC 6455 WebSocket frames carrying JSON:

1. start the durable server + :class:`~repro.serving.web.WebGateway`,
   create the price-watch trigger with ``POST /v1/triggers``;
2. open a **named durable WebSocket subscription** and an anonymous
   filtered one (``path=["product"]``), submit updates (single and
   batched) over REST, and watch both streams receive the activations;
3. **crash the consumer** mid-stream — kill its socket with activations
   consumed but not acked — then resubscribe under the same name: the
   durable cursor redelivers exactly the unacked tail, at-least-once,
   per-shard ordered;
4. print the gateway's accounting (``GET /v1/stats``).

Run with:  PYTHONPATH=src python examples/web_subscribers.py
"""

from __future__ import annotations

import asyncio
import shutil
import tempfile
from pathlib import Path

from repro.persist import DurableServer
from repro.relational import Column, DataType, ForeignKey, TableSchema
from repro.relational.dml import InsertStatement, UpdateStatement
from repro.serving.web import WebClient, WebGateway, WsClient
from repro.xqgm.views import catalog_view

PRODUCTS = [
    {"pid": "P1", "pname": "CRT 15", "mfr": "Samsung"},
    {"pid": "P2", "pname": "LCD 19", "mfr": "Samsung"},
]
VENDORS = [
    {"vid": "Amazon", "pid": "P1", "price": 100.0},
    {"vid": "Bestbuy", "pid": "P1", "price": 120.0},
    {"vid": "Buy.com", "pid": "P2", "price": 200.0},
    {"vid": "Bestbuy", "pid": "P2", "price": 180.0},
]


def by_product(table: str, key: tuple | None):
    """Routing key: co-locate each product with its vendors (view-closure)."""
    if table == "vendor" and key is not None:
        return key[1]
    return key[0] if key is not None else table


def open_server(directory: Path) -> DurableServer:
    server = DurableServer(
        directory,
        shard_count=2,
        key_fn=by_product,
        views=[catalog_view()],
        actions={"notify": lambda node: None},
    )
    db = server.sharded
    if "product" not in db.table_names():
        db.create_table(TableSchema(
            "product",
            [Column("pid", DataType.TEXT, nullable=False),
             Column("pname", DataType.TEXT, nullable=False),
             Column("mfr", DataType.TEXT)],
            primary_key=["pid"],
        ))
        db.create_table(TableSchema(
            "vendor",
            [Column("vid", DataType.TEXT, nullable=False),
             Column("pid", DataType.TEXT, nullable=False),
             Column("price", DataType.REAL, nullable=False)],
            primary_key=["vid", "pid"],
            foreign_keys=[ForeignKey(("pid",), "product", ("pid",))],
        ))
        db.load_rows("product", PRODUCTS)
        db.load_rows("vendor", VENDORS)
    server.ensure_view(catalog_view())
    return server


async def run_clients(host: str, port: int) -> None:
    # ---- 1. DDL over REST --------------------------------------------------
    async with await WebClient.connect(host, port) as admin:
        name = await admin.create_trigger("""
            CREATE TRIGGER PriceWatch AFTER UPDATE ON view('catalog')/product
            DO notify(NEW_NODE)
        """)
        bulk = await admin.register_triggers_bulk(["""
            CREATE TRIGGER NewProduct AFTER INSERT ON view('catalog')/product
            DO notify(NEW_NODE)
        """])
        print(f"registered triggers over REST: {name!r} + {bulk}")

        # ---- 2. one durable consumer, one anonymous filtered one ----------
        consumer = await WsClient.connect(host, port)
        inbox = await consumer.subscribe("inbox")
        assert inbox.durable, "expected a durable cursor-backed stream"

        watcher = await WsClient.connect(host, port)
        watching = await watcher.subscribe(view="catalog", path=["product"])

        await admin.submit(UpdateStatement(
            "vendor", {"price": 75.0}, keys=[("Amazon", "P1")]))
        # The batch: a price update plus a brand-new product.  P3 enters the
        # view (and fires NewProduct) only once its *second* vendor lands —
        # the catalog view keeps the paper's HAVING count(vendor) >= 2.
        await admin.submit_batch([
            UpdateStatement("vendor", {"price": 190.0}, keys=[("Buy.com", "P2")]),
            InsertStatement("product",
                            [{"pid": "P3", "pname": "Plasma 42", "mfr": "LG"}]),
            InsertStatement("vendor",
                            [{"vid": "Newegg", "pid": "P3", "price": 520.0},
                             {"vid": "Amazon", "pid": "P3", "price": 499.0}]),
        ])

        # Both subscribers see all three activations (filter matches the
        # view's /product nodes).
        seen = [await watching.get(timeout=10) for _ in range(3)]
        print(f"anonymous subscriber saw {len(seen)} activations through "
              f"its path filter")

        # ---- 3. consume 3, ack 1, crash, resume ---------------------------
        consumed = [await inbox.get(timeout=10) for _ in range(3)]
        await consumer.ack(consumed[0])
        await consumer.ping()  # flush the ack before dying
        print(f"consumer acked [{consumed[0].shard}:{consumed[0].sequence}] "
              f"{consumed[0].trigger}, crashing with 2 unacked")
        consumer._writer.transport.abort()  # the crash: no goodbye, no acks
        await consumer.close()

        revived = await WsClient.connect(host, port)
        resumed = await revived.subscribe("inbox")
        redelivered = []
        while True:
            try:
                activation = await resumed.get(timeout=1.0)
            except asyncio.TimeoutError:
                break
            if activation is None:
                break
            redelivered.append(activation)
            await revived.ack(activation)
        print(f"resubscribed as 'inbox': {len(redelivered)} unacked "
              f"activation(s) redelivered from the durable cursor:")
        for activation in redelivered:
            print(f"  [{activation.shard}:{activation.sequence}] "
                  f"{activation.trigger} key={activation.key}")
        unacked = {(a.shard, a.sequence) for a in consumed[1:]}
        assert unacked <= {(a.shard, a.sequence) for a in redelivered}

        # ---- 4. gateway accounting ----------------------------------------
        stats = await admin.stats()
        web = stats["web"]
        print(f"gateway: {web['connections_opened']} connections, "
              f"{web['requests_received']} HTTP requests, "
              f"{web['ws_upgrades']} upgrades, "
              f"{web['activations_sent']} activations pushed, "
              f"{web['protocol_errors']} protocol errors")
        assert stats["activations_published"] == 3

        await revived.close()
        await watcher.close()


def main() -> None:
    directory = Path(tempfile.mkdtemp(prefix="web-subscribers-"))
    try:
        server = open_server(directory)
        server.start()
        gateway = WebGateway(server).start()
        host, port = gateway.address
        print(f"web gateway listening on http://{host}:{port}")
        try:
            asyncio.run(run_clients(host, port))
        finally:
            gateway.stop()
            server.stop()
            server.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)


if __name__ == "__main__":
    main()
