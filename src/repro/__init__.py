"""Reproduction of "Triggers over XML Views of Relational Data" (ICDE 2005).

Public entry points:

* :class:`repro.relational.Database` — the relational substrate;
* :class:`repro.xqgm.views.ViewDefinition` / :func:`repro.xqgm.views.catalog_view`
  — XML view definitions over relational data;
* :class:`repro.core.service.ActiveViewService` — the active middleware that
  translates XML triggers into SQL triggers;
* :class:`repro.core.baseline.MaterializedBaseline` — the materialized-view
  baseline / oracle;
* :mod:`repro.workloads` — the paper's experimental workloads and harness.
"""

from repro.relational import Column, DataType, Database, TableSchema, TriggerEvent

__version__ = "1.0.0"

__all__ = [
    "ActiveViewService",
    "Column",
    "DataType",
    "Database",
    "ExecutionMode",
    "MaterializedBaseline",
    "TableSchema",
    "TriggerEvent",
    "ViewDefinition",
    "ViewElementSpec",
    "catalog_view",
    "__version__",
]

_LAZY = {
    "ActiveViewService": ("repro.core.service", "ActiveViewService"),
    "ExecutionMode": ("repro.core.service", "ExecutionMode"),
    "MaterializedBaseline": ("repro.core.baseline", "MaterializedBaseline"),
    "ViewDefinition": ("repro.xqgm.views", "ViewDefinition"),
    "ViewElementSpec": ("repro.xqgm.views", "ViewElementSpec"),
    "catalog_view": ("repro.xqgm.views", "catalog_view"),
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module_name, attribute = _LAZY[name]
        return getattr(importlib.import_module(module_name), attribute)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
