"""Execution backends: run the generated trigger SQL on an external engine.

See :mod:`repro.backends.base` for the :class:`Backend` protocol and
:mod:`repro.backends.sqlite` for the SQLite implementation; the full
lowering rules live in ``docs/backends.md``.
"""

from repro.backends.base import Backend, BackendError, BackendLoweringError, create_backend
from repro.backends.sqlite import SqliteBackend, finish_node

__all__ = [
    "Backend",
    "BackendError",
    "BackendLoweringError",
    "create_backend",
    "SqliteBackend",
    "finish_node",
]
