"""The execution-backend abstraction (multi-backend direction of the roadmap).

The paper's system does not interpret XQGM plans itself: it compiles XML
triggers into statement-level SQL triggers executed *inside* a commercial
RDBMS (Figure 16).  This package restores that architecture as a pluggable
layer: a :class:`Backend` mirrors the in-memory
:class:`~repro.relational.database.Database` into an external engine and
executes the generated trigger statements there, while the in-memory
interpreter / compiled engines remain available as the oracle and fallback.

A backend has three responsibilities:

1. **Mirroring** — ``attach(database)`` copies the current catalog and rows
   into the external engine and subscribes to the database's commit
   listeners, replaying every subsequent DDL event, bulk load, and net
   coalesced delta (the same stream the write-ahead log consumes), so the
   mirror is up to date *before* any trigger fires (commit listeners run
   post-apply, pre-trigger).
2. **Lowering** — ``prepare(translation)`` turns one
   :class:`~repro.core.pushdown.CompiledTableTrigger` into a backend
   statement.  A plan the backend dialect cannot express raises
   :class:`BackendLoweringError`; the service then keeps firing that
   translation on the in-memory engines and surfaces the fallback through
   ``evaluation_report()``.
3. **Execution** — ``affected_pairs(plan, context)`` runs a prepared
   statement for one trigger firing (materializing the firing's transition
   tables first) and returns the ``(OLD_NODE, NEW_NODE)`` pairs.

Backends are selected by name through
``ActiveViewService(backend="sqlite")`` or instantiated directly; see
``docs/backends.md`` for the SQLite lowering rules and a guide to adding a
new backend.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.core.sqlgen import SqlLoweringError
from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.pushdown import CompiledTableTrigger
    from repro.relational.database import Database
    from repro.relational.triggers import TriggerContext

__all__ = ["Backend", "BackendError", "BackendLoweringError", "create_backend"]


class BackendError(ReproError):
    """Base class for execution-backend errors."""


class BackendLoweringError(BackendError, SqlLoweringError):
    """A trigger plan could not be lowered to the backend's dialect.

    Also a :class:`~repro.core.sqlgen.SqlLoweringError`, so callers working
    at the SQL-generation level and callers working at the backend level can
    each catch their own layer's type.
    """


@runtime_checkable
class Backend(Protocol):
    """Protocol every execution backend implements."""

    #: Registry / display name ("sqlite", ...).
    name: str

    def attach(self, database: "Database") -> None:
        """Mirror ``database`` and subscribe to its commit stream."""

    def prepare(self, translation: "CompiledTableTrigger") -> object:
        """Lower one translation; returns an opaque prepared plan.

        Raises :class:`BackendLoweringError` when the dialect cannot express
        the plan.
        """

    def affected_pairs(
        self, plan: object, context: "TriggerContext"
    ) -> "list[AffectedPair]":
        """Execute a prepared plan for one firing."""

    def close(self) -> None:
        """Release the backend's resources (idempotent)."""


def create_backend(spec: "str | Backend") -> "Backend":
    """Resolve a backend name (or pass an instance through).

    The registry currently knows ``"sqlite"``; future backends (Postgres,
    DuckDB, ...) register here.
    """
    if isinstance(spec, str):
        if spec == "sqlite":
            from repro.backends.sqlite import SqliteBackend

            return SqliteBackend()
        raise BackendError(f"unknown backend {spec!r} (known: 'sqlite')")
    if isinstance(spec, Backend):
        return spec
    raise BackendError(f"not a backend: {spec!r}")
