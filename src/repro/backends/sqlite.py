"""SQLite execution backend: run the generated trigger SQL inside SQLite.

This is the Figure 16 architecture made real on a second engine: the
in-memory :class:`~repro.relational.database.Database` stays the system of
record (and the in-memory engines stay the oracle), while a SQLite
connection holds a **mirror** of every base table, kept up to date by
replaying the same net coalesced deltas the WAL / commit-listener path
already produces.  Generated trigger plans are lowered once (at trigger
compile time) into executable ``WITH ... SELECT`` statements by
:func:`repro.core.sqlgen.lower_plan_for_sqlite`; per firing, the backend
materializes the net transition tables as temp tables and runs the lowered
statement, then a Python-side **finishing pass** (:func:`finish_node`)
re-assembles the XML fragments from the JSON construction trees SQLite
produced.

SQLite has no ``FOR EACH STATEMENT`` triggers and no SQL/XML functions, so
two deliberate translations are applied (both detailed in
``docs/backends.md``):

* the *driver* role of the RDBMS trigger machinery stays in Python — the
  relational engine's statement triggers still decide *when* to fire, and
  the backend supplies the *body* execution;
* XML construction is expressed with the ``json1`` functions and finished
  in Python, with ``aggXMLFrag`` ordering keys embedded in the JSON so the
  finishing pass can reproduce the deterministic within-group order.

Known representation limits (all surfaced, none silent): ``BOOLEAN``
columns mirror as ``0``/``1`` integers, so a boolean flowing into XML text
content would render ``"1"`` rather than ``"true"``; plans whose constructs
the dialect cannot express raise :class:`BackendLoweringError` at prepare
time and the service falls back to the in-memory engines for just those
translations (visible in ``evaluation_report()``).
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.backends.base import BackendError, BackendLoweringError
from repro.core.affected_nodes import NEW_NODE, OLD_NODE
from repro.core.pushdown import AffectedPair, CompiledTableTrigger
from repro.core.sqlgen import (
    LoweredSqlitePlan,
    SqlLoweringError,
    lower_plan_for_sqlite,
    transition_table_name,
)
from repro.relational.database import Database
from repro.relational.schema import TableSchema
from repro.relational.triggers import TriggerContext
from repro.relational.types import DataType, sort_key
from repro.xmlmodel.node import Element, Fragment, Text, XmlNode
from repro.xqgm.operators import TableVariant

__all__ = ["SqliteBackend", "SqlitePlan", "finish_node"]


_AFFINITY = {
    DataType.INTEGER: "INTEGER",
    DataType.REAL: "REAL",
    DataType.TEXT: "TEXT",
    # SQLite has no boolean storage class; booleans mirror as 0/1.
    DataType.BOOLEAN: "INTEGER",
}


def _to_sqlite(value: Any) -> Any:
    if isinstance(value, bool):
        return int(value)
    return value


def _quoted(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


# ---------------------------------------------------------------------------
# The XML-construction finishing pass
# ---------------------------------------------------------------------------


def _decode(value: Any) -> Any:
    """Decode one JSON tree entry: a node, a scalar, or an ``"r"``-wrapped REAL.

    The lowering embeds runtime-REAL scalars as ``["r", "%.17g text"]``
    because SQLite's JSON rendering is lossy at 15 significant digits;
    converting the 17-digit text back to ``float`` recovers the exact value,
    so the XML text formatting below matches the in-memory engines bit for
    bit.
    """
    if isinstance(value, list):
        if value and value[0] == "r":
            return float(value[1])
        return finish_node(value)
    return value


def finish_node(value: Any) -> XmlNode | None:
    """Assemble an XML node from the JSON construction tree SQLite returned.

    The lowered statements encode nodes as tagged JSON arrays:

    * ``["e", name, {attr: value, ...}, child, ...]`` — an element; ``None``
      children are skipped and scalar children become text nodes, exactly as
      in :class:`~repro.xqgm.expressions.ElementConstructor`;
    * ``["t", value]`` — a text node (``None`` renders as ``""``);
    * ``["f", n, [[k1, ..., kn, item], ...]]`` — an ``aggXMLFrag`` fragment
      whose items carry ``n`` leading order keys; items are sorted by those
      keys with the engine's heterogeneous :func:`~repro.relational.types.sort_key`
      (the ``order_within_group`` semantics of the interpreted GroupBy);
    * ``["r", text]`` — a REAL scalar in lossless 17-digit form (see
      :func:`_decode`).

    Fragments splice and ``None`` items vanish through the
    :class:`~repro.xmlmodel.node.Element` / ``Fragment`` constructors — the
    same code paths the in-memory engines use, which is what keeps the two
    representations convertible without loss.
    """
    if value is None:
        return None
    if not isinstance(value, list) or not value:
        raise BackendError(f"malformed node JSON: {value!r}")
    tag = value[0]
    if tag == "e":
        node = Element(value[1])
        for name, attribute in value[2].items():
            node.set_attribute(name, "" if attribute is None else _decode(attribute))
        for child in value[3:]:
            if child is None:
                continue
            node.append(_decode(child))
        return node
    if tag == "t":
        return Text("" if value[1] is None else _decode(value[1]))
    if tag == "f":
        key_count = value[1]
        ordered = sorted(
            value[2],
            key=lambda item: tuple(sort_key(_decode(k)) for k in item[:key_count]),
        )
        return Fragment([_decode(item[key_count]) for item in ordered])
    raise BackendError(f"unknown node tag {tag!r} in {value!r}")


# ---------------------------------------------------------------------------
# Prepared plans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SqlitePlan:
    """A lowered trigger plan bound to result-column slots."""

    lowered: LoweredSqlitePlan
    key_slots: tuple[int, ...]
    old_slot: int
    new_slot: int
    node_slots: tuple[int, ...]

    @property
    def table(self) -> str:
        """The base table whose statements fire this plan."""
        return self.lowered.table

    @property
    def sql(self) -> str:
        """The executable ``WITH ... SELECT`` statement."""
        return self.lowered.sql


class SqliteBackend:
    """Mirror a :class:`Database` into SQLite and execute trigger SQL there.

    Follows the engine's single-writer model: one thread drives DML (and
    thereby trigger firing) at a time.  The connection is created with
    ``check_same_thread=False`` so a service handed off between worker
    threads (never used concurrently) keeps working.
    """

    name = "sqlite"

    def __init__(self, connection: sqlite3.Connection | None = None) -> None:
        self._conn = connection or sqlite3.connect(":memory:", check_same_thread=False)
        self._database: Database | None = None
        self._listener = None
        self._transition_ready: set[str] = set()
        #: Lowered statements executed (one per backend-served firing).
        self.statements_executed = 0
        #: Rows replayed into the mirror via the commit stream.
        self.rows_mirrored = 0

    # ------------------------------------------------------------------ mirroring

    def attach(self, database: Database) -> None:
        """Mirror ``database``'s catalog and rows, then follow its commits."""
        if self._database is not None:
            raise BackendError("backend is already attached to a database")
        self._database = database
        for name in database.table_names():
            self._create_table(database.schema(name))
            table = database.table(name)
            self._insert_rows(table.schema, table.rows())
        self._listener = self._on_commit
        database.add_commit_listener(self._listener)
        self._conn.commit()

    def close(self) -> None:
        """Detach from the database and close the connection (idempotent)."""
        if self._database is not None and self._listener is not None:
            self._database.remove_commit_listener(self._listener)
        self._database = None
        self._listener = None
        try:
            self._conn.close()
        except sqlite3.Error:  # pragma: no cover - close is best-effort
            pass

    def _on_commit(self, kind: str, payload: Any) -> None:
        if kind == "apply":
            self._apply_deltas(payload)
        elif kind == "load":
            table, rows = payload
            assert self._database is not None
            self._insert_rows(self._database.schema(table), rows)
        elif kind == "create_table":
            self._create_table(payload)
        elif kind == "drop_table":
            self._conn.execute(f"DROP TABLE IF EXISTS {_quoted(payload)}")
            # Drop the transition temp tables too: a same-named table created
            # later may carry a different schema, and CREATE TEMP TABLE IF
            # NOT EXISTS would silently keep the stale column layout.
            for variant in (
                TableVariant.DELTA_INSERTED,
                TableVariant.DELTA_DELETED,
                TableVariant.PRUNED_INSERTED,
                TableVariant.PRUNED_DELETED,
            ):
                self._conn.execute(
                    f"DROP TABLE IF EXISTS temp.{_quoted(transition_table_name(payload, variant))}"
                )
            self._transition_ready.discard(payload)
        elif kind == "create_index":
            table, columns, index_name = payload
            self._create_index(table, columns, index_name)
        # Unknown kinds are future commit events; the mirror ignores them.

    def _create_table(self, schema: TableSchema) -> None:
        columns = [
            f"{_quoted(column.name)} {_AFFINITY[column.dtype]}" for column in schema.columns
        ]
        if schema.primary_key:
            key = ", ".join(_quoted(column) for column in schema.primary_key)
            columns.append(f"PRIMARY KEY ({key})")
        self._conn.execute(
            f"CREATE TABLE {_quoted(schema.name)} ({', '.join(columns)})"
        )
        for fk in schema.foreign_keys:
            # Probe-shaped lookups join through foreign keys; mirror the
            # engine's habit of indexing them.
            self._create_index(schema.name, fk.columns, f"fk_{'_'.join(fk.columns)}")

    def _create_index(self, table: str, columns: Sequence[str], index_name: str) -> None:
        name = _quoted(f"{table}__{index_name}")
        column_list = ", ".join(_quoted(column) for column in columns)
        self._conn.execute(
            f"CREATE INDEX IF NOT EXISTS {name} ON {_quoted(table)} ({column_list})"
        )

    def _insert_rows(self, schema: TableSchema, rows: Iterable[tuple]) -> None:
        rows = [tuple(_to_sqlite(value) for value in row) for row in rows]
        if not rows:
            return
        placeholders = ", ".join("?" for _ in schema.column_names)
        self._conn.executemany(
            f"INSERT INTO {_quoted(schema.name)} VALUES ({placeholders})", rows
        )
        self.rows_mirrored += len(rows)

    def _delete_rows(self, schema: TableSchema, rows: Iterable[tuple]) -> None:
        rows = list(rows)
        if not rows:
            return
        if schema.primary_key:
            condition = " AND ".join(f"{_quoted(c)} = ?" for c in schema.primary_key)
            keys = [tuple(_to_sqlite(v) for v in schema.key_of(row)) for row in rows]
            self._conn.executemany(
                f"DELETE FROM {_quoted(schema.name)} WHERE {condition}", keys
            )
        else:
            # No key: remove one matching occurrence per delta row (bag
            # semantics, like the engine's keyless delete path).
            condition = " AND ".join(f"{_quoted(c)} IS ?" for c in schema.column_names)
            self._conn.executemany(
                f"DELETE FROM {_quoted(schema.name)} WHERE rowid = "
                f"(SELECT rowid FROM {_quoted(schema.name)} WHERE {condition} LIMIT 1)",
                [tuple(_to_sqlite(v) for v in row) for row in rows],
            )

    def _apply_deltas(self, deltas: Sequence[Any]) -> None:
        # All deletions first, then all insertions: a batch's net deltas may
        # split one key-changing UPDATE into a DELETE slice and an INSERT
        # slice, and the old key must be gone before the new row lands.
        for delta in deltas:
            self._delete_rows(delta.deleted.schema, delta.deleted.rows)
        for delta in deltas:
            self._insert_rows(delta.inserted.schema, delta.inserted.rows)

    # ------------------------------------------------------------------ lowering

    def prepare(self, translation: CompiledTableTrigger) -> SqlitePlan:
        """Lower one translation to an executable statement (compile time).

        Raises :class:`BackendLoweringError` when the plan cannot be
        expressed in the dialect; the caller falls back to the in-memory
        engines for this translation.
        """
        if self._database is None:
            raise BackendError("attach() the backend before preparing plans")
        catalog = {
            name: self._database.schema(name) for name in self._database.table_names()
        }
        final_columns = (OLD_NODE, NEW_NODE, *translation.key_columns)
        try:
            lowered = lower_plan_for_sqlite(
                translation.executable_top,
                translation.table,
                catalog,
                final_columns=final_columns,
                order_by=translation.key_columns,
            )
        except SqlLoweringError as error:
            raise BackendLoweringError(str(error)) from error
        self._ensure_transition_tables(translation.table)
        try:
            # Preparing the statement (EXPLAIN compiles without running it)
            # surfaces any SQL-level gap now, at trigger compile time, so a
            # firing can never fail over to the oracle mid-flight.
            self._conn.execute("EXPLAIN " + lowered.sql)
        except sqlite3.Error as error:
            raise BackendLoweringError(
                f"lowered statement does not compile on SQLite: {error}"
            ) from error
        index = {column: i for i, column in enumerate(lowered.final_columns)}
        return SqlitePlan(
            lowered=lowered,
            key_slots=tuple(index[column] for column in translation.key_columns),
            old_slot=index[OLD_NODE],
            new_slot=index[NEW_NODE],
            node_slots=tuple(sorted(index[column] for column in lowered.node_columns)),
        )

    def _ensure_transition_tables(self, table: str) -> None:
        if table in self._transition_ready:
            return
        assert self._database is not None
        schema = self._database.schema(table)
        columns = ", ".join(
            f"{_quoted(column.name)} {_AFFINITY[column.dtype]}" for column in schema.columns
        )
        for variant in (
            TableVariant.DELTA_INSERTED,
            TableVariant.DELTA_DELETED,
            TableVariant.PRUNED_INSERTED,
            TableVariant.PRUNED_DELETED,
        ):
            name = _quoted(transition_table_name(table, variant))
            self._conn.execute(f"CREATE TEMP TABLE IF NOT EXISTS {name} ({columns})")
        self._transition_ready.add(table)

    # ------------------------------------------------------------------ execution

    def affected_pairs(
        self, plan: SqlitePlan, context: TriggerContext
    ) -> list[AffectedPair]:
        """Run a prepared plan for one firing of its table's SQL trigger."""
        if context.table != plan.table:  # pragma: no cover - defensive
            raise BackendError(
                f"plan for {plan.table!r} fired with a {context.table!r} context"
            )
        self._materialize_transitions(plan, context)
        rows = self._conn.execute(plan.sql).fetchall()
        self.statements_executed += 1
        pairs: list[AffectedPair] = []
        node_slots = set(plan.node_slots)
        for row in rows:
            old = row[plan.old_slot]
            new = row[plan.new_slot]
            pairs.append(
                AffectedPair(
                    key=tuple(row[i] for i in plan.key_slots),
                    old_node=(
                        finish_node(json.loads(old))
                        if old is not None and plan.old_slot in node_slots
                        else None
                    ),
                    new_node=(
                        finish_node(json.loads(new))
                        if new is not None and plan.new_slot in node_slots
                        else None
                    ),
                )
            )
        return pairs

    def _materialize_transitions(self, plan: SqlitePlan, context: TriggerContext) -> None:
        if not plan.lowered.required_variants:
            return
        assert self._database is not None
        schema = self._database.schema(plan.table)
        placeholders = ", ".join("?" for _ in schema.column_names)
        for variant in plan.lowered.required_variants:
            if variant is TableVariant.DELTA_INSERTED:
                rows = context.net_inserted.rows
            elif variant is TableVariant.DELTA_DELETED:
                rows = context.net_deleted.rows
            elif variant is TableVariant.PRUNED_INSERTED:
                rows = context.net_pruned_inserted().rows
            else:
                rows = context.net_pruned_deleted().rows
            name = _quoted(transition_table_name(plan.table, variant))
            self._conn.execute(f"DELETE FROM {name}")
            if rows:
                self._conn.executemany(
                    f"INSERT INTO {name} VALUES ({placeholders})",
                    [tuple(_to_sqlite(value) for value in row) for row in rows],
                )

    # ------------------------------------------------------------------ inspection

    def mirror_rows(self, table: str) -> list[tuple]:
        """The mirror's current rows for ``table`` (tests / debugging)."""
        return list(self._conn.execute(f"SELECT * FROM {_quoted(table)}"))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        attached = self._database.name if self._database is not None else None
        return f"SqliteBackend(attached={attached!r}, executed={self.statements_executed})"
