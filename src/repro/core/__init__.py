"""The paper's contribution: translating XML-view triggers into SQL triggers.

"Triggers over XML Views of Relational Data" (Shao, Novak,
Shanmugasundaram — ICDE 2005; full citation in PAPER.md).  Modules in this
package mirror the system architecture of Figure 6:

* :mod:`repro.core.language` — the XML trigger specification language
  (Section 2.2): ``CREATE TRIGGER ... AFTER event ON path WHERE ... DO ...``;
* :mod:`repro.core.semantics` — trigger semantics on views (Definitions 2-4);
* :mod:`repro.core.events` — Event Pushdown (Section 3.3, Appendix C);
* :mod:`repro.core.affected_keys` — CreateAKGraph (Section 4.2.1, Figure 8);
* :mod:`repro.core.affected_nodes` — CreateANGraph (Section 4.2.2, Figure 12);
* :mod:`repro.core.injectivity` — injective-view analysis and the
  CreateANOpt optimization (Appendix F);
* :mod:`repro.core.grouping` — Trigger Grouping with constants tables
  (Section 5.1);
* :mod:`repro.core.pushdown` — Trigger Pushdown: building executable /
  renderable SQL triggers, including the GROUPED-AGG old-aggregate
  optimization (Section 5.2);
* :mod:`repro.core.tagger` — the constant-space tagger (Section 3.2);
* :mod:`repro.core.activation` — Trigger Activation (Section 3.2);
* :mod:`repro.core.service` — the middleware facade tying it all together;
* :mod:`repro.core.baseline` — the MATERIALIZED baseline / oracle.
"""

from repro.core.semantics import NodeChange, check_trigger_specifiable, diff_node_maps

__all__ = [
    "ActionCall",
    "ActiveViewService",
    "ExecutionMode",
    "FiredTrigger",
    "MaterializedBaseline",
    "NodeChange",
    "TriggerSpec",
    "ViewDelta",
    "check_trigger_specifiable",
    "diff_node_maps",
    "parse_trigger",
]

# The service facade, baseline, and trigger language pull in the full
# translation pipeline; expose them lazily so ``import repro.core`` stays
# cheap and the submodules can be developed/tested independently.
_LAZY_EXPORTS = {
    "ActiveViewService": ("repro.core.service", "ActiveViewService"),
    "ExecutionMode": ("repro.core.service", "ExecutionMode"),
    "FiredTrigger": ("repro.core.service", "FiredTrigger"),
    "MaterializedBaseline": ("repro.core.baseline", "MaterializedBaseline"),
    "ViewDelta": ("repro.core.baseline", "ViewDelta"),
    "TriggerSpec": ("repro.core.trigger", "TriggerSpec"),
    "ActionCall": ("repro.core.trigger", "ActionCall"),
    "parse_trigger": ("repro.core.language", "parse_trigger"),
}


def __getattr__(name: str):
    if name in _LAZY_EXPORTS:
        import importlib

        module_name, attribute = _LAZY_EXPORTS[name]
        return getattr(importlib.import_module(module_name), attribute)
    raise AttributeError(f"module 'repro.core' has no attribute {name!r}")
