"""Trigger Activation (Section 3.2 / Figure 6).

The last stage of the runtime pipeline: given the (OLD_NODE, NEW_NODE) pairs
that survived the condition, evaluate each trigger's action parameters and
invoke the registered external action function.

Actions are plain Python callables registered by name with the
:class:`ActionRegistry`; the paper's example ``notifySmith(NEW_NODE)`` becomes
``registry.register("notifySmith", callback)``.  Every invocation is also
recorded as an :class:`~repro.core.trigger.ActionCall` so tests, benchmarks
and the examples can inspect exactly what fired.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.errors import TriggerActivationError
from repro.xmlmodel.node import XmlNode
from repro.xmlmodel.xpath import XPath
from repro.core.trigger import ActionCall, TriggerSpec

__all__ = ["ActionRegistry", "TriggerActivator"]

ActionFunction = Callable[..., Any]


class ActionRegistry:
    """Registry of external action functions, addressed by name."""

    def __init__(self) -> None:
        self._actions: dict[str, ActionFunction] = {}

    def register(self, name: str, function: ActionFunction) -> None:
        """Register (or replace) an action function."""
        if not callable(function):
            raise TriggerActivationError(f"action {name!r} must be callable")
        self._actions[name] = function

    def unregister(self, name: str) -> None:
        """Remove an action function."""
        self._actions.pop(name, None)

    def get(self, name: str) -> ActionFunction | None:
        """Look up an action function (``None`` when not registered)."""
        return self._actions.get(name)

    def names(self) -> list[str]:
        """All registered action names."""
        return sorted(self._actions)


@dataclass
class TriggerActivator:
    """Evaluates action parameters and invokes action functions.

    ``strict`` controls what happens when a trigger's action function is not
    registered: raise (strict) or record the call without invoking anything
    (lenient — useful for benchmarking pure trigger-processing overhead).
    """

    registry: ActionRegistry
    strict: bool = False
    call_log: list[ActionCall] = field(default_factory=list)

    def activate(
        self,
        spec: TriggerSpec,
        old_node: XmlNode | None,
        new_node: XmlNode | None,
        key: tuple = (),
        compiled_args: Sequence[XPath] | None = None,
        parameters: Sequence[Any] = (),
        argument_parameters: Sequence[Sequence[Any]] | None = None,
    ) -> ActionCall:
        """Fire one trigger for one affected node pair.

        ``compiled_args`` may supply pre-compiled (possibly parameterized)
        argument expressions.  ``parameters`` binds grouped constants shared
        by all arguments; ``argument_parameters`` instead binds a separate
        constants sequence per argument (the grouped-trigger case, where each
        action argument had its own literals extracted).
        """
        variables = {"OLD_NODE": old_node, "NEW_NODE": new_node}
        expressions = compiled_args if compiled_args is not None else spec.compiled_args()
        arguments = []
        for index, expression in enumerate(expressions):
            if argument_parameters is not None:
                bound = argument_parameters[index] if index < len(argument_parameters) else ()
            else:
                bound = parameters
            value = expression.evaluate(variables, parameters=bound)
            arguments.append(_simplify(value))
        call = ActionCall(
            trigger_name=spec.name,
            action_name=spec.action_name,
            arguments=tuple(arguments),
            old_node=old_node,
            new_node=new_node,
            key=key,
        )
        function = self.registry.get(spec.action_name)
        if function is None:
            if self.strict:
                raise TriggerActivationError(
                    f"trigger {spec.name!r}: action function {spec.action_name!r} is not registered"
                )
        else:
            try:
                function(*call.arguments)
            except Exception as exc:  # surface action failures with context
                raise TriggerActivationError(
                    f"trigger {spec.name!r}: action {spec.action_name!r} raised {exc!r}"
                ) from exc
        self.call_log.append(call)
        return call

    def reset_log(self) -> None:
        """Clear the recorded action calls."""
        self.call_log.clear()


def _simplify(value: Any) -> Any:
    """Unwrap single-item node lists produced by XPath evaluation."""
    if isinstance(value, list):
        if not value:
            return None
        if len(value) == 1:
            return value[0]
    return value
