"""CreateAKGraph — finding affected keys (Section 4.2.1, Figure 8).

Given the XQGM graph of a monitored path, the updated base table ``T``, and a
transition table ``dT`` (``ΔT`` or ``∇T``), ``CreateAKGraph`` builds a new
XQGM graph which, joined with the original graph on the canonical key,
produces exactly those output tuples affected by the relational update —
*even in the presence of nested predicates* (the case that defeats classic
view-maintenance change propagation, Section 4.1).

The key idea (mirrored here operator by operator):

* ``Table``: the affected keys of the updated table are simply the primary
  keys of the transition table.
* ``GroupBy``: join the operator's *original* input with the affected keys of
  that input, then project the distinct grouping-column values — any group
  containing an affected input tuple is itself affected.
* ``Select`` / ``Project``: pass the affected keys through unchanged, making
  sure the key columns are propagated to the operator's output (Figure 8,
  line 57).
* ``Join``: a union of cross-products — affected keys of one leg paired with
  all rows of the other leg.
* ``Union``: union of the per-input affected keys, mapped to output columns.

Because the affected-key graph re-uses the *original* operators of the view
graph (shared subgraphs), evaluating it sees complete groups rather than just
transition-table tuples, which is what makes nested predicates such as
``count(...) >= 2`` come out right (the ``Δvendor`` example of Section 4.1).

The affected-key columns are renamed with an ``…#ak…`` suffix so they never
collide with the original graph's columns; the returned
:class:`AffectedKeyGraph` records the pairing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import TriggerCompilationError
from repro.relational.database import Database
from repro.relational.schema import TableSchema
from repro.xqgm.expressions import ColumnRef
from repro.xqgm.graph import ensure_columns
from repro.xqgm.rewrite import push_semijoin
from repro.xqgm.operators import (
    ConstantsOp,
    GroupByOp,
    JoinOp,
    Operator,
    ProjectOp,
    SelectOp,
    TableOp,
    TableVariant,
    UnionOp,
    UnnestOp,
)

__all__ = ["AffectedKeyGraph", "create_ak_graph"]


@dataclass
class AffectedKeyGraph:
    """Result of ``CreateAKGraph`` for one operator.

    ``op`` is the top operator of the affected-key graph (``None`` when the
    update cannot affect the subgraph at all).  ``key_pairs`` associates each
    canonical-key column of the original operator with the corresponding
    column of the affected-key graph — joining the two graphs on these pairs
    yields exactly the affected tuples (the algorithm's invariant).
    """

    op: Operator | None
    key_pairs: tuple[tuple[str, str], ...]

    @property
    def is_empty(self) -> bool:
        """True when the relational update cannot affect the monitored graph."""
        return self.op is None

    @property
    def graph_columns(self) -> tuple[str, ...]:
        """The original graph's key columns."""
        return tuple(graph_column for graph_column, _ in self.key_pairs)

    @property
    def key_columns(self) -> tuple[str, ...]:
        """The affected-key graph's key columns."""
        return tuple(key_column for _, key_column in self.key_pairs)


def create_ak_graph(
    op: Operator,
    table: str,
    delta_variant: TableVariant,
    catalog: Database | Mapping[str, TableSchema],
) -> AffectedKeyGraph:
    """``CreateAKGraph(O, T, dT)`` of Figure 8.

    ``delta_variant`` selects which transition table plays the role of ``dT``
    (``DELTA_INSERTED`` / ``DELTA_DELETED``, or their pruned versions for the
    Appendix F optimization).
    """
    if isinstance(catalog, Database):
        catalog = {name: catalog.schema(name) for name in catalog.table_names()}
    return _create(op, table, delta_variant, catalog)


def _ak_suffix(op: Operator) -> str:
    """Per-operator rename suffix keeping affected-key columns collision-free."""
    return f"#ak{op.id}"


def _create(
    op: Operator,
    table: str,
    delta_variant: TableVariant,
    catalog: Mapping[str, TableSchema],
) -> AffectedKeyGraph:
    """Recursive core of CreateAKGraph: one Figure 8 case per operator kind.

    Returns the affected-key graph of ``op``'s output (empty when the updated
    table is unreachable below ``op``).  Join and union cases are split out
    into :func:`_create_for_join` / :func:`_create_for_union`.
    """
    # ---- Table -----------------------------------------------------------------
    if isinstance(op, TableOp):
        if op.table != table:
            return AffectedKeyGraph(None, ())
        schema = catalog.get(op.table)
        if schema is None or not schema.primary_key:
            raise TriggerCompilationError(
                f"table {op.table!r} needs a primary key for affected-key computation"
            )
        delta_alias = f"{op.alias}{_ak_suffix(op)}"
        delta_table = TableOp(
            op.table, delta_alias, schema.column_names, delta_variant,
            label=f"dT[{op.alias}]",
        )
        projections = [
            (delta_table.qualified(column), ColumnRef(delta_table.qualified(column)))
            for column in schema.primary_key
        ]
        projected = ProjectOp(delta_table, projections, label=f"ak-keys[{op.alias}]")
        pairs = tuple(
            (op.qualified(column), delta_table.qualified(column))
            for column in schema.primary_key
        )
        return AffectedKeyGraph(projected, pairs)

    # ---- Constants -------------------------------------------------------------
    if isinstance(op, ConstantsOp):
        return AffectedKeyGraph(None, ())

    # ---- GroupBy ----------------------------------------------------------------
    if isinstance(op, GroupByOp):
        inner = _create(op.input, table, delta_variant, catalog)
        if inner.is_empty:
            return AffectedKeyGraph(None, ())
        # Join the operator's original input with the affected keys of that
        # input (Figure 8, line 15); grouping columns must be available there.
        ensure_columns(op.input, list(inner.graph_columns))
        # Execution detail (Trigger Pushdown / Figure 16 "AffectedKeys" CTE):
        # push the affected keys into the input as a semi-join so the join is
        # driven by the transition tables instead of scanning the input.
        reduced_input = push_semijoin(op.input, list(inner.key_pairs), inner.op)
        joined = JoinOp(
            [reduced_input, inner.op],
            equi_pairs=list(inner.key_pairs),
            label=f"ak-join[group#{op.id}]",
        )
        grouped = GroupByOp(joined, op.grouping, [], label=f"ak-groups[#{op.id}]")
        suffix = _ak_suffix(op)
        projections = [
            (f"{column}{suffix}", ColumnRef(column)) for column in op.grouping
        ]
        projected = ProjectOp(grouped, projections, label=f"ak-group-keys[#{op.id}]")
        pairs = tuple((column, f"{column}{suffix}") for column in op.grouping)
        return AffectedKeyGraph(projected, pairs)

    # ---- Select / Project --------------------------------------------------------
    if isinstance(op, (SelectOp, ProjectOp, UnnestOp)):
        inner = _create(op.inputs[0], table, delta_variant, catalog)
        if inner.is_empty:
            return AffectedKeyGraph(None, ())
        # Ensure the operator propagates the key columns ("Add K to
        # O.outputColumns", line 57).
        ensure_columns(op, list(inner.graph_columns))
        return AffectedKeyGraph(inner.op, inner.key_pairs)

    # ---- Join ----------------------------------------------------------------------
    if isinstance(op, JoinOp):
        return _create_for_join(op, table, delta_variant, catalog)

    # ---- Union ---------------------------------------------------------------------
    if isinstance(op, UnionOp):
        return _create_for_union(op, table, delta_variant, catalog)

    raise TriggerCompilationError(
        f"CreateAKGraph cannot handle operator {op.kind}"
    )  # pragma: no cover


def _create_for_join(
    op: JoinOp,
    table: str,
    delta_variant: TableVariant,
    catalog: Mapping[str, TableSchema],
) -> AffectedKeyGraph:
    """Join case of Figure 8 (lines 36-39): union of per-leg cross-products.

    With one affected leg the restriction passes through unchanged; when the
    updated table reaches the join through several legs, each affected leg is
    crossed with the *original* other legs and the branches are unioned on
    the join's canonical key columns.
    """
    results = [_create(input_op, table, delta_variant, catalog) for input_op in op.inputs]
    affected = [(i, result) for i, result in enumerate(results) if not result.is_empty]
    if not affected:
        return AffectedKeyGraph(None, ())
    if len(affected) == 1:
        index, inner = affected[0]
        ensure_columns(op, list(inner.graph_columns))
        return AffectedKeyGraph(inner.op, inner.key_pairs)

    # More than one leg can be affected (the updated table appears several
    # times in the view): build a union of cross-products (Figure 8, 36-39).
    suffix = _ak_suffix(op)
    combined_pairs: list[tuple[str, str]] = []
    for input_op in op.inputs:
        input_key = getattr(input_op, "canonical_key", None) or ()
        for column in input_key:
            combined_pairs.append((column, f"{column}{suffix}"))
    if not combined_pairs:
        raise TriggerCompilationError(
            "Join inputs have no derived canonical keys; run derive_keys() first"
        )

    branches: list[Operator] = []
    for index, inner in affected:
        legs: list[Operator] = []
        rename: dict[str, str] = {}
        for i, input_op in enumerate(op.inputs):
            if i == index:
                legs.append(inner.op)
                for graph_column, key_column in inner.key_pairs:
                    rename[graph_column] = key_column
            else:
                legs.append(input_op)
        cross = JoinOp(legs, label=f"ak-cross[#{op.id}:{index}]")
        projections = []
        for graph_column, output_column in combined_pairs:
            source = rename.get(graph_column, graph_column)
            projections.append((output_column, ColumnRef(source)))
        branches.append(ProjectOp(cross, projections, label=f"ak-branch[#{op.id}:{index}]"))

    output_columns = [output_column for _, output_column in combined_pairs]
    if len(branches) == 1:
        union: Operator = branches[0]
    else:
        union = UnionOp(branches, columns=output_columns, label=f"ak-union[#{op.id}]")
    ensure_columns(op, [graph_column for graph_column, _ in combined_pairs])
    return AffectedKeyGraph(union, tuple(combined_pairs))


def _create_for_union(
    op: UnionOp,
    table: str,
    delta_variant: TableVariant,
    catalog: Mapping[str, TableSchema],
) -> AffectedKeyGraph:
    """Union case of Figure 8: per-input affected keys mapped to output columns."""
    union_key = getattr(op, "canonical_key", None)
    if not union_key:
        raise TriggerCompilationError(
            "Union operator has no derived canonical key; run derive_keys() first"
        )
    suffix = _ak_suffix(op)
    branches: list[Operator] = []
    for input_op, mapping in zip(op.inputs, op.mappings):
        inner = _create(input_op, table, delta_variant, catalog)
        if inner.is_empty:
            continue
        # Restrict the input to its affected tuples, then project the union's
        # key columns (mapped through this input's column mapping).
        ensure_columns(input_op, list(inner.graph_columns))
        joined = JoinOp(
            [input_op, inner.op], equi_pairs=list(inner.key_pairs), label=f"ak-union-join[#{op.id}]"
        )
        projections = []
        for output_column in union_key:
            input_column = mapping[output_column]
            projections.append((f"{output_column}{suffix}", ColumnRef(input_column)))
        branches.append(ProjectOp(joined, projections, label=f"ak-union-branch[#{op.id}]"))
    if not branches:
        return AffectedKeyGraph(None, ())
    output_columns = [f"{column}{suffix}" for column in union_key]
    if len(branches) == 1:
        union: Operator = branches[0]
    else:
        union = UnionOp(branches, columns=output_columns, label=f"ak-union[#{op.id}]")
    pairs = tuple((column, f"{column}{suffix}") for column in union_key)
    return AffectedKeyGraph(union, pairs)
