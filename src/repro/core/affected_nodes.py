"""CreateANGraph — producing (OLD_NODE, NEW_NODE) pairs (Section 4.2.2, Fig. 12).

Given a monitored path graph ``G``, the updated base table ``B``, and the XML
trigger event, ``CreateANGraph`` assembles the graph ``G_affected`` that
produces an ``(OLD_NODE, NEW_NODE)`` pair for every XML node affected by the
relational statement, *without materializing the view*:

1. build the affected-key graphs for ``ΔB`` (over ``G``) and ``∇B`` (over
   ``G_old``, the graph with ``B`` replaced by its pre-update state);
2. union the two key sets;
3. join the keys back with ``G`` to obtain ``NEW_NODE`` and with ``G_old`` to
   obtain ``OLD_NODE``;
4. combine according to the event: inner join for UPDATE (both nodes exist),
   left anti join for INSERT (no old node), right anti join for DELETE
   (no new node);
5. for UPDATE, optionally verify ``OLD_NODE ≠ NEW_NODE`` — unnecessary for
   injective views evaluated with pruned transition tables (Theorem 3 /
   ``CreateANOpt``).

The returned :class:`AffectedNodeGraph` keeps handles to the intermediate
pieces so the Trigger Pushdown stage (Section 5) can re-derive optimized
variants (semi-join pushdown of the affected keys, GROUPED-AGG compensation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import TriggerCompilationError
from repro.relational.database import Database
from repro.relational.schema import TableSchema
from repro.relational.triggers import TriggerEvent
from repro.xqgm.expressions import ColumnRef, Expression
from repro.xqgm.graph import replace_table_variant
from repro.xqgm.keys import derive_keys
from repro.xqgm.operators import (
    JoinKind,
    JoinOp,
    Operator,
    ProjectOp,
    SelectOp,
    TableVariant,
    UnionOp,
)
from repro.xqgm.views import PathGraph
from repro.core.affected_keys import AffectedKeyGraph, create_ak_graph

__all__ = ["AffectedNodeGraph", "NodesDiffer", "create_an_graph", "OLD_NODE", "NEW_NODE"]

OLD_NODE = "OLD_NODE"
NEW_NODE = "NEW_NODE"


class NodesDiffer(Expression):
    """Predicate ``OLD_NODE ≠ NEW_NODE`` using deep XML value equality.

    The paper implements this as a string comparison of the serialized nodes
    in the tagger (Appendix E.1); deep structural equality of our node model
    is equivalent because serialization is deterministic.
    """

    def __init__(self, left: str = OLD_NODE, right: str = NEW_NODE) -> None:
        self.left = left
        self.right = right

    def evaluate(self, row: Mapping[str, Any], parameters: Mapping[str, Any] | None = None) -> Any:
        left = row.get(self.left)
        right = row.get(self.right)
        return left != right

    def referenced_columns(self) -> set[str]:
        return {self.left, self.right}

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return self

    def uses_parameters(self) -> bool:
        """Precise-classification hook: the difference check never reads
        parameter bindings, so subplans containing it stay cacheable across
        trigger-group firings (see :func:`repro.xqgm.columnar.compile_columnar_plan`).
        """
        return False

    def compile_columns(self, layout: Mapping[str, int]):
        """Vectorized form for the columnar engine: one mask column per batch.

        Mirrors :meth:`evaluate` exactly, including the ``row.get`` semantics
        (a column missing from the layout reads as ``None`` rather than
        raising).
        """
        left_slot = layout.get(self.left)
        right_slot = layout.get(self.right)

        def differ(columns, length, parameters):
            left = columns[left_slot] if left_slot is not None else [None] * length
            right = columns[right_slot] if right_slot is not None else [None] * length
            return [a != b for a, b in zip(left, right)]

        return differ

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.left} <> {self.right})"


@dataclass
class AffectedNodeGraph:
    """``G_affected`` plus the handles the pushdown stage needs."""

    event: TriggerEvent
    table: str
    top: Operator
    key_columns: tuple[str, ...]
    old_key_columns: tuple[str, ...]
    covered_key_columns: tuple[str, ...]
    path_graph: PathGraph
    # Intermediate pieces (Figure 12 variable names):
    ak_inserted: AffectedKeyGraph | None
    ak_deleted: AffectedKeyGraph | None
    union_keys: Operator | None
    union_key_columns: tuple[str, ...]
    new_side: Operator | None
    old_side: Operator | None
    g_old_top: Operator | None
    checks_difference: bool

    @property
    def node_columns(self) -> tuple[str, str]:
        """Names of the (OLD_NODE, NEW_NODE) output columns."""
        return (OLD_NODE, NEW_NODE)


def create_an_graph(
    event: TriggerEvent,
    path_graph: PathGraph,
    table: str,
    catalog: Database | Mapping[str, TableSchema],
    *,
    use_pruned_transitions: bool = True,
    check_difference: bool | None = None,
) -> AffectedNodeGraph:
    """``CreateANGraph(E, G, B)`` of Figure 12.

    ``use_pruned_transitions`` selects the pruned transition tables of
    Definition 8 (drop rows whose values did not change).  ``check_difference``
    forces/suppresses the final ``OLD_NODE ≠ NEW_NODE`` selection for UPDATE
    events; the default (``None``) lets the caller decide later — the service
    enables it unless the view is injective (Theorem 3).
    """
    if isinstance(catalog, Database):
        catalog = {name: catalog.schema(name) for name in catalog.table_names()}

    g_top = path_graph.top
    derive_keys(g_top, catalog)
    node_column = path_graph.node_column
    key_columns = tuple(path_graph.key_columns)

    inserted_variant = (
        TableVariant.PRUNED_INSERTED if use_pruned_transitions else TableVariant.DELTA_INSERTED
    )
    deleted_variant = (
        TableVariant.PRUNED_DELETED if use_pruned_transitions else TableVariant.DELTA_DELETED
    )

    # Step 1-2: affected keys for ΔB over G, and for ∇B over G_old.
    ak_inserted = create_ak_graph(g_top, table, inserted_variant, catalog)
    g_old_top = replace_table_variant(g_top, table, TableVariant.OLD)
    derive_keys(g_old_top, catalog)
    ak_deleted = create_ak_graph(g_old_top, table, deleted_variant, catalog)

    if ak_inserted.is_empty and ak_deleted.is_empty:
        raise TriggerCompilationError(
            f"updates to table {table!r} cannot affect the monitored path "
            f"{'/'.join(path_graph.path)!r}"
        )

    # The affected-key graphs may cover only part of the path's canonical key
    # (e.g. an update on an ancestor table identifies affected *ancestor*
    # keys; every nested node under those ancestors is then a candidate).
    # Joining on the covered prefix is exactly the algorithm's invariant.
    covered_key_columns = tuple(
        column
        for column in key_columns
        if all(
            column in dict(ak.key_pairs)
            for ak in (ak_inserted, ak_deleted)
            if not ak.is_empty
        )
    )
    if not covered_key_columns:
        raise TriggerCompilationError(
            f"affected-key graphs for table {table!r} cover none of the path key "
            f"columns {list(key_columns)!r}"
        )

    # Step 3: union of the affected keys, in canonical column names.
    union_key_columns = tuple(f"{column}#key" for column in covered_key_columns)
    union_keys = _union_affected_keys(
        ak_inserted, ak_deleted, covered_key_columns, union_key_columns
    )

    # Step 4: join the keys back with G (NEW_NODE) and G_old (OLD_NODE).
    new_side = _node_side(
        union_keys, union_key_columns, g_top, node_column, key_columns,
        node_output=NEW_NODE, key_suffix="", label="new-nodes",
        join_columns=covered_key_columns,
    )
    old_key_columns = tuple(f"{column}#old" for column in key_columns)
    old_side = _node_side(
        union_keys, union_key_columns, g_old_top, node_column, key_columns,
        node_output=OLD_NODE, key_suffix="#old", label="old-nodes",
        join_columns=covered_key_columns,
    )

    # Step 5: combine according to the event.
    pairs = [(new, old) for new, old in zip(key_columns, old_key_columns)]
    if check_difference is None:
        # Safe default: verify the node actually changed.  Callers suppress the
        # check for injective views with pruned transition tables (Theorem 3).
        check_difference = True
    if event is TriggerEvent.UPDATE:
        top: Operator = JoinOp([new_side, old_side], equi_pairs=pairs, label="an-update-join")
        checks = bool(check_difference)
        if check_difference:
            top = SelectOp(top, NodesDiffer(), label="old-differs-from-new")
        top = _final_projection(top, key_columns, old_key_columns, has_old=True, has_new=True)
    elif event is TriggerEvent.INSERT:
        anti = JoinOp(
            [new_side, old_side], equi_pairs=pairs, kind=JoinKind.ANTI, label="an-insert-anti"
        )
        top = _final_projection(anti, key_columns, old_key_columns, has_old=False, has_new=True)
        checks = False
    elif event is TriggerEvent.DELETE:
        anti = JoinOp(
            [old_side, new_side],
            equi_pairs=[(old, new) for new, old in pairs],
            kind=JoinKind.ANTI,
            label="an-delete-anti",
        )
        top = _final_projection(anti, key_columns, old_key_columns, has_old=True, has_new=False)
        checks = False
    else:  # pragma: no cover - defensive
        raise TriggerCompilationError(f"unknown trigger event {event!r}")

    return AffectedNodeGraph(
        event=event,
        table=table,
        top=top,
        key_columns=key_columns,
        old_key_columns=old_key_columns,
        covered_key_columns=covered_key_columns,
        path_graph=path_graph,
        ak_inserted=None if ak_inserted.is_empty else ak_inserted,
        ak_deleted=None if ak_deleted.is_empty else ak_deleted,
        union_keys=union_keys,
        union_key_columns=union_key_columns,
        new_side=new_side,
        old_side=old_side,
        g_old_top=g_old_top,
        checks_difference=checks,
    )


def _union_affected_keys(
    ak_inserted: AffectedKeyGraph,
    ak_deleted: AffectedKeyGraph,
    key_columns: tuple[str, ...],
    union_key_columns: tuple[str, ...],
) -> Operator:
    """``O_u ← Union(G_Δkey, G_∇key)`` with canonical output column names."""
    inputs: list[Operator] = []
    mappings: list[dict[str, str]] = []
    for ak in (ak_inserted, ak_deleted):
        if ak.is_empty:
            continue
        rename = dict(ak.key_pairs)  # graph column -> ak column
        mapping: dict[str, str] = {}
        for graph_column, union_column in zip(key_columns, union_key_columns):
            ak_column = rename.get(graph_column)
            if ak_column is None:
                raise TriggerCompilationError(
                    f"affected-key graph does not cover key column {graph_column!r} "
                    f"(covers {list(rename)!r})"
                )
            mapping[union_column] = ak_column
        inputs.append(ak.op)
        mappings.append(mapping)
    if len(inputs) == 1:
        source, mapping = inputs[0], mappings[0]
        projections = [(union_column, ColumnRef(mapping[union_column])) for union_column in union_key_columns]
        return ProjectOp(source, projections, label="affected-keys")
    return UnionOp(inputs, columns=list(union_key_columns), mappings=mappings, label="affected-keys")


def _node_side(
    union_keys: Operator,
    union_key_columns: tuple[str, ...],
    graph_top: Operator,
    node_column: str,
    key_columns: tuple[str, ...],
    *,
    node_output: str,
    key_suffix: str,
    label: str,
    join_columns: tuple[str, ...] | None = None,
) -> Operator:
    """``Join(O_u.key = G.key)(O_u, G)`` then rename node / key columns.

    ``join_columns`` names the graph key columns the affected keys cover
    (defaults to all of them); the join runs on those, while the projection
    always exposes the full key.
    """
    join_columns = tuple(join_columns) if join_columns is not None else tuple(key_columns)
    pairs = [
        (union_column, graph_column)
        for union_column, graph_column in zip(union_key_columns, join_columns)
    ]
    joined = JoinOp([union_keys, graph_top], equi_pairs=pairs, label=f"{label}-join")
    projections: list[tuple[str, Expression]] = [(node_output, ColumnRef(node_column))]
    for column in key_columns:
        projections.append((f"{column}{key_suffix}", ColumnRef(column)))
    return ProjectOp(joined, projections, label=label)


def _final_projection(
    top: Operator,
    key_columns: tuple[str, ...],
    old_key_columns: tuple[str, ...],
    *,
    has_old: bool,
    has_new: bool,
) -> Operator:
    """Standardize the output: OLD_NODE, NEW_NODE, and the canonical key columns."""
    from repro.xqgm.expressions import Constant

    projections: list[tuple[str, Expression]] = []
    projections.append((OLD_NODE, ColumnRef(OLD_NODE) if has_old else Constant(None)))
    projections.append((NEW_NODE, ColumnRef(NEW_NODE) if has_new else Constant(None)))
    if has_new:
        for column in key_columns:
            projections.append((column, ColumnRef(column)))
    else:
        for column, old_column in zip(key_columns, old_key_columns):
            projections.append((column, ColumnRef(old_column)))
    return ProjectOp(top, projections, label="affected-nodes")
