"""The MATERIALIZED baseline (and correctness oracle).

Section 1 of the paper describes the rejected alternative design: materialize
the XML view, keep it incrementally maintained (here: recomputed) on every
relational update, and run XML triggers against the materialized copy.  This
module implements that design — partly as the comparison baseline for the
benchmarks, and mainly as the *oracle* that the property-based tests compare
the translated SQL triggers against: its semantics follow Definitions 2 and 3
directly (materialize the monitored nodes before and after every statement
and diff them by canonical key).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import TriggerError
from repro.relational.database import Database
from repro.relational.dml import Statement, StatementResult
from repro.relational.triggers import TriggerEvent
from repro.xmlmodel.node import XmlNode
from repro.xqgm.evaluate import EvaluationContext, evaluate
from repro.xqgm.views import PathGraph, ViewDefinition
from repro.core.semantics import NodeChange, diff_node_maps
from repro.core.activation import ActionRegistry, TriggerActivator
from repro.core.trigger import ActionCall, TriggerSpec

__all__ = ["ViewDelta", "MaterializedBaseline", "diff_node_maps"]


@dataclass
class ViewDelta:
    """All node changes for one (view, path) caused by one statement."""

    view: str
    path: tuple[str, ...]
    changes: list[NodeChange] = field(default_factory=list)

    def of_kind(self, kind: TriggerEvent | str) -> list[NodeChange]:
        """Changes of one kind (INSERT / UPDATE / DELETE)."""
        kind = kind.value if isinstance(kind, TriggerEvent) else kind
        return [change for change in self.changes if change.kind == kind]


class MaterializedBaseline:
    """Maintain materialized path results and fire triggers from their diffs."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self._views: dict[str, ViewDefinition] = {}
        self._triggers: dict[str, TriggerSpec] = {}
        # (view, path) -> trigger names, so firing walks one monitored
        # path's triggers instead of the whole registry.
        self._by_path: dict[tuple[str, tuple[str, ...]], list[str]] = {}
        self._paths: dict[tuple[str, tuple[str, ...]], PathGraph] = {}
        self._materialized: dict[tuple[str, tuple[str, ...]], dict[tuple, XmlNode]] = {}
        self.registry = ActionRegistry()
        self.activator = TriggerActivator(self.registry)
        self.fired: list[ActionCall] = []

    # -- registration ---------------------------------------------------------------

    def register_view(self, view: ViewDefinition) -> None:
        """Register a view definition by name."""
        self._views[view.name] = view

    def register_action(self, name: str, function) -> None:
        """Register an external action function."""
        self.registry.register(name, function)

    def create_trigger(self, spec: TriggerSpec) -> None:
        """Register an XML trigger (and materialize its monitored path)."""
        if spec.name in self._triggers:
            raise TriggerError(f"trigger {spec.name!r} already exists")
        view = self._views.get(spec.view)
        if view is None:
            raise TriggerError(f"unknown view {spec.view!r}")
        key = (spec.view, spec.path)
        if key not in self._paths:
            self._paths[key] = view.path_graph(spec.path, self.database)
            self._materialized[key] = self._evaluate_path(self._paths[key])
        # Compile (and cache) the condition and action arguments now: firing
        # must never re-parse trigger text per statement.
        spec.compiled_condition()
        spec.compiled_args()
        self._triggers[spec.name] = spec
        self._by_path.setdefault(key, []).append(spec.name)

    def drop_trigger(self, name: str) -> None:
        """Remove an XML trigger."""
        spec = self._triggers.pop(name, None)
        if spec is None:
            return
        bucket = self._by_path.get((spec.view, spec.path))
        if bucket is not None and name in bucket:
            bucket.remove(name)

    @property
    def triggers(self) -> list[TriggerSpec]:
        """All registered trigger specs."""
        return list(self._triggers.values())

    # -- materialization ------------------------------------------------------------

    def _evaluate_path(self, path_graph: PathGraph) -> dict[tuple, XmlNode]:
        rows = evaluate(path_graph.top, EvaluationContext(self.database))
        return {
            tuple(row[column] for column in path_graph.key_columns): row[path_graph.node_column]
            for row in rows
        }

    def refresh(self) -> None:
        """Re-materialize every monitored path (e.g. after bulk loads)."""
        for key, path_graph in self._paths.items():
            self._materialized[key] = self._evaluate_path(path_graph)

    def materialized_nodes(self, view: str, path: Iterable[str] | str) -> dict[tuple, XmlNode]:
        """Current materialized node map for one monitored path."""
        steps = tuple(path.strip("/").split("/")) if isinstance(path, str) else tuple(path)
        return dict(self._materialized[(view, steps)])

    # -- statement execution ----------------------------------------------------------

    def execute(self, statement: Statement) -> tuple[StatementResult, list[ViewDelta], list[ActionCall]]:
        """Apply a statement, diff every monitored path, fire matching triggers.

        Returns the relational result, the per-path deltas, and the action
        calls that fired.  Statement-level SQL triggers registered on the
        database (e.g. by a co-existing translated service) are *not* fired.
        """
        result = self.database.execute(statement, fire_triggers=False)
        deltas: list[ViewDelta] = []
        calls: list[ActionCall] = []
        for key, path_graph in self._paths.items():
            old_nodes = self._materialized[key]
            new_nodes = self._evaluate_path(path_graph)
            changes = diff_node_maps(old_nodes, new_nodes)
            self._materialized[key] = new_nodes
            delta = ViewDelta(view=key[0], path=key[1], changes=changes)
            deltas.append(delta)
            calls.extend(self._fire_for_delta(delta))
        self.fired.extend(calls)
        return result, deltas, calls

    def _fire_for_delta(self, delta: ViewDelta) -> list[ActionCall]:
        calls: list[ActionCall] = []
        for name in self._by_path.get((delta.view, delta.path), ()):
            spec = self._triggers[name]
            # Cached at create_trigger: firing never re-parses trigger text.
            condition = spec.compiled_condition()
            for change in delta.of_kind(spec.event):
                variables = {"OLD_NODE": change.old_node, "NEW_NODE": change.new_node}
                if condition is not None and not condition.as_boolean(variables):
                    continue
                calls.append(
                    self.activator.activate(
                        spec, change.old_node, change.new_node, key=change.key
                    )
                )
        return calls
