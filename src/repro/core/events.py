"""Event Pushdown (Section 3.3, Appendix C of the paper).

Given the XQGM graph of the monitored path and the XML trigger's event
(INSERT, UPDATE, or DELETE on the monitored nodes), determine the *minimal*
set of relational ``(table, event)`` pairs that could cause that XML event —
these are the tables on which SQL triggers must be created.

The implementation follows ``GetSrcEvents`` (Figure 19): starting from the
top operator, the operator-specific rules of Table 4 are applied recursively
until base ``Table`` operators are reached.  UPDATE events carry the set of
columns whose modification is relevant; this lets the analysis conclude, for
example, that an UPDATE of ``product.mfr`` cannot affect the catalog view
(which never reads ``mfr``), so no work is done for such statements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import TriggerCompilationError
from repro.relational.triggers import TriggerEvent
from repro.xqgm.expressions import Expression
from repro.xqgm.operators import (
    ConstantsOp,
    GroupByOp,
    JoinOp,
    Operator,
    ProjectOp,
    SelectOp,
    TableOp,
    UnionOp,
    UnnestOp,
)

__all__ = ["RelationalEvent", "get_source_events", "events_by_table"]

# ``columns`` semantics: None means "any column"; a frozenset restricts the
# UPDATE event to statements that modify at least one of those columns.
Columns = frozenset[str] | None


@dataclass(frozen=True)
class RelationalEvent:
    """A relational event that can cause the monitored XML event."""

    table: str
    event: TriggerEvent
    columns: Columns = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        columns = "*" if self.columns is None else ",".join(sorted(self.columns))
        return f"RelationalEvent({self.event.value} {self.table}[{columns}])"


def _merge_columns(a: Columns, b: Columns) -> Columns:
    if a is None or b is None:
        return None
    return a | b


def _restrict(columns: Columns, available: Iterable[str]) -> Columns:
    if columns is None:
        return None
    return frozenset(columns) & frozenset(available)


def get_source_events(
    top: Operator, event: TriggerEvent, columns: Columns = None
) -> set[RelationalEvent]:
    """``GetSrcEvents``: all base-table events that can cause ``event`` on ``top``."""
    results: dict[tuple[str, TriggerEvent], Columns] = {}
    _visit(top, event, columns, results, depth=0)
    return {
        RelationalEvent(table, table_event, cols)
        for (table, table_event), cols in results.items()
    }


def events_by_table(events: Iterable[RelationalEvent]) -> dict[str, dict[TriggerEvent, Columns]]:
    """Group relational events per table (one SQL trigger per table-event)."""
    grouped: dict[str, dict[TriggerEvent, Columns]] = {}
    for relational_event in events:
        per_table = grouped.setdefault(relational_event.table, {})
        if relational_event.event in per_table:
            per_table[relational_event.event] = _merge_columns(
                per_table[relational_event.event], relational_event.columns
            )
        else:
            per_table[relational_event.event] = relational_event.columns
    return grouped


def _record(
    results: dict[tuple[str, TriggerEvent], Columns],
    table: str,
    event: TriggerEvent,
    columns: Columns,
) -> None:
    key = (table, event)
    if key in results:
        results[key] = _merge_columns(results[key], columns)
    else:
        results[key] = columns


_MAX_DEPTH = 200


def _visit(
    op: Operator,
    event: TriggerEvent,
    columns: Columns,
    results: dict[tuple[str, TriggerEvent], Columns],
    depth: int,
) -> None:
    if depth > _MAX_DEPTH:  # pragma: no cover - defensive
        raise TriggerCompilationError("event pushdown recursion is too deep")

    if isinstance(op, TableOp):
        if event is TriggerEvent.UPDATE and columns is not None:
            prefix = f"{op.alias}."
            base_columns = frozenset(
                column[len(prefix):] for column in columns if column.startswith(prefix)
            )
            if not base_columns:
                # No monitored column maps to this table: updates to it are
                # irrelevant for this event.
                return
            _record(results, op.table, event, base_columns)
        else:
            _record(results, op.table, event, None)
        return

    if isinstance(op, ConstantsOp):
        return  # constants tables never change at run time

    if isinstance(op, SelectOp):
        _visit_select_like(op, op.input, op.predicate, event, columns, results, depth)
        return

    if isinstance(op, ProjectOp):
        if event is TriggerEvent.UPDATE:
            input_columns = _project_input_columns(op, columns)
            _visit(op.input, TriggerEvent.UPDATE, input_columns, results, depth + 1)
        else:
            # A Project neither filters nor multiplies tuples, so inserts and
            # deletes simply propagate from its input.
            _visit(op.input, event, None, results, depth + 1)
        return

    if isinstance(op, JoinOp):
        _visit_join(op, event, columns, results, depth)
        return

    if isinstance(op, GroupByOp):
        _visit_groupby(op, event, columns, results, depth)
        return

    if isinstance(op, UnionOp):
        for input_op, mapping in zip(op.inputs, op.mappings):
            mapped: Columns
            if columns is None:
                mapped = None
            else:
                mapped = frozenset(
                    mapping[column] for column in columns if column in mapping
                )
            if event is TriggerEvent.UPDATE:
                # Per Table 4, updates to any input column can cause inserts,
                # deletes, or updates of the union output (duplicate collapse).
                _visit(input_op, TriggerEvent.UPDATE, mapped or None, results, depth + 1)
            else:
                _visit(input_op, event, None, results, depth + 1)
                _visit(input_op, TriggerEvent.UPDATE, None, results, depth + 1)
        return

    if isinstance(op, UnnestOp):
        # Unnest output mirrors its input plus the unnested items.
        _visit(op.input, event, None, results, depth + 1)
        if event in (TriggerEvent.INSERT, TriggerEvent.DELETE):
            _visit(op.input, TriggerEvent.UPDATE, frozenset({op.source_column}), results, depth + 1)
        return

    raise TriggerCompilationError(f"event pushdown cannot handle operator {op.kind}")


def _visit_select_like(
    op: Operator,
    input_op: Operator,
    predicate: Expression,
    event: TriggerEvent,
    columns: Columns,
    results: dict[tuple[str, TriggerEvent], Columns],
    depth: int,
) -> None:
    condition_columns = frozenset(predicate.referenced_columns())
    if event is TriggerEvent.UPDATE:
        _visit(input_op, TriggerEvent.UPDATE, columns, results, depth + 1)
        return
    # INSERT(O) <- INSERT(I) or UPDATE(I, Cσ); DELETE symmetric (Table 4).
    _visit(input_op, event, None, results, depth + 1)
    if condition_columns:
        _visit(input_op, TriggerEvent.UPDATE, condition_columns, results, depth + 1)


def _project_input_columns(op: ProjectOp, columns: Columns) -> Columns:
    if columns is None:
        referenced: set[str] = set()
        for _, expression in op.projections:
            referenced |= expression.referenced_columns()
        return frozenset(referenced) or None
    referenced = set()
    for name, expression in op.projections:
        if name in columns:
            referenced |= expression.referenced_columns()
    return frozenset(referenced) or frozenset()


def _visit_join(
    op: JoinOp,
    event: TriggerEvent,
    columns: Columns,
    results: dict[tuple[str, TriggerEvent], Columns],
    depth: int,
) -> None:
    join_columns: set[str] = set()
    for a, b in op.equi_pairs:
        join_columns.add(a)
        join_columns.add(b)
    if op.condition is not None:
        join_columns |= op.condition.referenced_columns()

    for input_op in op.inputs:
        available = set(input_op.output_columns)
        if event is TriggerEvent.UPDATE:
            restricted = _restrict(columns, available) if columns is not None else None
            if restricted is None or restricted:
                _visit(input_op, TriggerEvent.UPDATE, restricted, results, depth + 1)
            # Updates to join columns can also move tuples in or out of the
            # join result, which surfaces as inserts/deletes of the output —
            # those are only relevant when the caller asked for INSERT/DELETE,
            # handled below.
        else:
            _visit(input_op, event, None, results, depth + 1)
            relevant_join_columns = frozenset(join_columns & available)
            if relevant_join_columns:
                _visit(input_op, TriggerEvent.UPDATE, relevant_join_columns, results, depth + 1)
            else:
                _visit(input_op, TriggerEvent.UPDATE, None, results, depth + 1)


def _visit_groupby(
    op: GroupByOp,
    event: TriggerEvent,
    columns: Columns,
    results: dict[tuple[str, TriggerEvent], Columns],
    depth: int,
) -> None:
    grouping = frozenset(op.grouping)
    input_op = op.input

    if event in (TriggerEvent.INSERT, TriggerEvent.DELETE):
        # A group appears/disappears when input rows appear/disappear or when
        # a grouping-column update moves rows between groups (Table 4).
        _visit(input_op, event, None, results, depth + 1)
        _visit(input_op, TriggerEvent.UPDATE, grouping or None, results, depth + 1)
        return

    # UPDATE(O, C)
    aggregate_outputs = {aggregate.name for aggregate in op.aggregates}
    monitored = set(op.output_columns) if columns is None else set(columns)
    monitored_aggregates = monitored & aggregate_outputs
    monitored_grouping = monitored & grouping

    input_columns: set[str] = set()
    for aggregate in op.aggregates:
        if aggregate.name in monitored_aggregates:
            input_columns |= aggregate.referenced_columns()
    input_columns |= monitored_grouping  # updates to grouping cols move tuples

    if input_columns:
        _visit(input_op, TriggerEvent.UPDATE, frozenset(input_columns), results, depth + 1)
    elif columns is None:
        _visit(input_op, TriggerEvent.UPDATE, None, results, depth + 1)

    only_grouping_monitored = monitored and monitored <= grouping
    if not only_grouping_monitored:
        # INSERT(I) / DELETE(I) change aggregate values, hence update the
        # group's output — "unless C ⊆ G" (Table 4).
        _visit(input_op, TriggerEvent.INSERT, None, results, depth + 1)
        _visit(input_op, TriggerEvent.DELETE, None, results, depth + 1)
