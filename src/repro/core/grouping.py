"""Trigger Grouping (Section 5.1 of the paper).

Relational databases do not scale to very large numbers of SQL triggers, but
web-service deployments are expected to carry very large numbers of XML
triggers.  The fix (adapted from NiagaraCQ [5] and scalable trigger
processing [14]) is to group *structurally similar* XML triggers — triggers
that differ only in the literal constants of their conditions / action
parameters — and generate **one** SQL trigger per group and table-event,
driven by a *constants table*:

======  ========
TrigIDs Const1
======  ========
1,2     CRT 15
3       LCD 19
======  ========

For simple conditions the constants table can be joined directly against the
selection (Figure 14).  For nested conditions, the paper instead correlates
the grouped graph on the constants table and then decorrelates (Figure 15);
in this implementation the same effect is achieved by evaluating the shared
affected-node graph once and then evaluating each *parameterized* condition
per constants row over the produced (OLD_NODE, NEW_NODE) pairs — the
per-group shared work (the expensive part: affected keys, node computation)
is done exactly once regardless of how many XML triggers are registered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import TriggerCompilationError
from repro.xmlmodel.xpath import XPath
from repro.core.trigger import TriggerSpec

__all__ = ["GroupMember", "ConstantsRow", "TriggerGroup", "group_triggers"]


@dataclass
class GroupMember:
    """One XML trigger inside a group, with its extracted constants."""

    spec: TriggerSpec
    condition_constants: tuple[Any, ...]
    argument_constants: tuple[tuple[Any, ...], ...]

    @property
    def constants_key(self) -> tuple:
        """All constants of this trigger, used to share constants-table rows."""
        return (self.condition_constants, self.argument_constants)


@dataclass
class ConstantsRow:
    """One row of the constants table: the triggers sharing one set of constants."""

    trigger_names: tuple[str, ...]
    condition_constants: tuple[Any, ...]
    argument_constants: tuple[tuple[Any, ...], ...]

    def as_mapping(self) -> dict[str, Any]:
        """Row as a mapping (column names ``TrigIDs``, ``Const1``, ...)."""
        row: dict[str, Any] = {"TrigIDs": ",".join(self.trigger_names)}
        for index, value in enumerate(self.condition_constants, start=1):
            row[f"Const{index}"] = value
        return row


@dataclass
class TriggerGroup:
    """A set of structurally similar triggers sharing one generated SQL trigger."""

    signature: tuple
    members: list[GroupMember] = field(default_factory=list)

    # -- group structure -----------------------------------------------------------

    @property
    def triggers(self) -> list[TriggerSpec]:
        """The member trigger specs."""
        return [member.spec for member in self.members]

    @property
    def representative(self) -> TriggerSpec:
        """A representative member (all members share view/path/event/shape)."""
        return self.members[0].spec

    @property
    def size(self) -> int:
        """Number of XML triggers in the group."""
        return len(self.members)

    def add(self, spec: TriggerSpec) -> GroupMember:
        """Add a trigger to the group (must share the group signature)."""
        if spec.structural_signature() != self.signature:
            raise TriggerCompilationError(
                f"trigger {spec.name!r} does not match the group signature"
            )
        member = GroupMember(
            spec=spec,
            condition_constants=spec.condition_constants(),
            argument_constants=tuple(
                analysis.constants for analysis in spec.argument_analyses()
            ),
        )
        self.members.append(member)
        return member

    def remove(self, name: str) -> bool:
        """Remove a trigger by name; returns whether it was present."""
        before = len(self.members)
        self.members = [m for m in self.members if m.spec.name != name]
        return len(self.members) != before

    # -- constants table (Section 5.1) ----------------------------------------------

    def constants_table(self) -> list[ConstantsRow]:
        """Build the constants table: one row per distinct constant set."""
        rows: dict[tuple, list[GroupMember]] = {}
        order: list[tuple] = []
        for member in self.members:
            key = member.constants_key
            if key not in rows:
                rows[key] = []
                order.append(key)
            rows[key].append(member)
        table: list[ConstantsRow] = []
        for key in order:
            members = rows[key]
            table.append(
                ConstantsRow(
                    trigger_names=tuple(member.spec.name for member in members),
                    condition_constants=members[0].condition_constants,
                    argument_constants=members[0].argument_constants,
                )
            )
        return table

    # -- parameterized condition / arguments ------------------------------------------

    def parameterized_condition(self) -> XPath | None:
        """The group's condition with constants replaced by parameters."""
        analysis = self.representative.condition_analysis()
        return None if analysis is None else analysis.parameterized

    def parameterized_arguments(self) -> tuple[XPath, ...]:
        """The group's action arguments with constants replaced by parameters."""
        return tuple(
            analysis.parameterized for analysis in self.representative.argument_analyses()
        )


def group_triggers(specs: Iterable[TriggerSpec]) -> list[TriggerGroup]:
    """Partition triggers into structural-similarity groups (Section 5.1)."""
    groups: dict[tuple, TriggerGroup] = {}
    order: list[tuple] = []
    for spec in specs:
        signature = spec.structural_signature()
        group = groups.get(signature)
        if group is None:
            group = TriggerGroup(signature)
            groups[signature] = group
            order.append(signature)
        group.add(spec)
    return [groups[signature] for signature in order]
