"""Injective-view analysis (Appendix F of the paper).

A view is *injective* with respect to a base table ``T`` when there is a
one-to-one mapping between each XML node it produces and the set of ``T``
rows used to construct that node.  For such views, evaluated with *pruned*
transition tables (Definition 8), the final ``OLD_NODE ≠ NEW_NODE`` check of
``CreateANGraph`` can be dropped without admitting spurious UPDATE events
(Theorem 3, the ``CreateANOpt`` variant).

The implementation applies the sufficient conditions of Appendix F.2:

* ``Project`` / ``Select`` / ``Join``: an input column is covered if it is
  passed through to the output or feeds an injective function — in this
  system the XML element constructor;
* ``GroupBy``: an input column is covered if it is a grouping column or the
  argument of ``aggXMLFrag``;
* at the bottom, a ``Table(T)`` operator requires *all* of its columns to be
  covered (Definition 11).

Non-injective aggregates (``count``, ``min``, ``max``, ``sum``, ``avg``)
break the chain, exactly as in the modified view of Figure 21.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.xqgm.expressions import ColumnRef, ElementConstructor, Expression, TextConstructor
from repro.xqgm.operators import (
    ConstantsOp,
    GroupByOp,
    JoinOp,
    Operator,
    ProjectOp,
    SelectOp,
    TableOp,
    UnionOp,
    UnnestOp,
)
from repro.xqgm.views import PathGraph

__all__ = ["columns_injective_for_table", "view_is_injective", "path_graph_is_injective"]


def _injectively_determined(expression: Expression) -> set[str] | None:
    """Input columns injectively determined by an output expression.

    Returns ``None`` when the expression is not injective in its inputs
    (e.g. arithmetic, comparisons, constants over multiple columns), and the
    set of input columns it injectively embeds otherwise.
    """
    if isinstance(expression, ColumnRef):
        return {expression.name}
    if isinstance(expression, (ElementConstructor, TextConstructor)):
        # The XML constructor is injective (Appendix F.2): the constructed
        # node embeds every input value verbatim.
        return set(expression.referenced_columns())
    return None


def columns_injective_for_table(op: Operator, columns: Iterable[str], table: str) -> bool:
    """Whether output ``columns`` of ``op`` are transitively injective w.r.t. ``table``."""
    columns = set(columns)

    if isinstance(op, TableOp):
        if op.table != table:
            return True
        return set(op.output_columns) <= columns

    if isinstance(op, ConstantsOp):
        return True

    if isinstance(op, SelectOp):
        return columns_injective_for_table(op.input, columns, table)

    if isinstance(op, ProjectOp):
        determined: set[str] = set()
        for name, expression in op.projections:
            if name not in columns:
                continue
            embedded = _injectively_determined(expression)
            if embedded is not None:
                determined |= embedded
        return columns_injective_for_table(op.input, determined, table)

    if isinstance(op, JoinOp):
        return all(
            columns_injective_for_table(
                input_op, columns & set(input_op.output_columns), table
            )
            for input_op in op.inputs
        )

    if isinstance(op, GroupByOp):
        determined = set()
        for column in op.grouping:
            if column in columns:
                determined.add(column)
        for aggregate in op.aggregates:
            if aggregate.name not in columns:
                continue
            if aggregate.func == "xmlfrag" and aggregate.argument is not None:
                embedded = _injectively_determined(aggregate.argument)
                if embedded is not None:
                    determined |= embedded
            # count/sum/min/max/avg are not injective: they contribute nothing.
        return columns_injective_for_table(op.input, determined, table)

    if isinstance(op, UnionOp):
        for input_op, mapping in zip(op.inputs, op.mappings):
            mapped = {mapping[c] for c in columns if c in mapping}
            if not columns_injective_for_table(input_op, mapped, table):
                return False
        return True

    if isinstance(op, UnnestOp):
        return columns_injective_for_table(op.input, columns, table)

    return False  # pragma: no cover - conservative default


def view_is_injective(top: Operator, table: str, columns: Sequence[str] | None = None) -> bool:
    """Whether the graph's output ``columns`` (default: all) are injective w.r.t. ``table``."""
    columns = list(columns) if columns is not None else list(top.output_columns)
    return columns_injective_for_table(top, columns, table)


def path_graph_is_injective(path_graph: PathGraph, table: str) -> bool:
    """Whether the monitored nodes of a path graph are injective w.r.t. ``table``.

    This is the condition under which CreateANOpt may skip the final
    ``OLD_NODE ≠ NEW_NODE`` check (Theorem 3): the node column plus the key
    columns must embed every contributing row of ``table``.
    """
    needed = [path_graph.node_column, *path_graph.key_columns]
    return view_is_injective(path_graph.top, table, needed)
