"""Parser for the XML trigger specification language (Section 2.2).

Syntax (after Bonifati et al. [2], as restricted by the paper)::

    CREATE TRIGGER Name AFTER Event
    ON view('viewname')/path/steps
    [WHERE Condition]
    DO action(arg1, arg2, ...)

* ``Event`` is ``INSERT``, ``UPDATE``, or ``DELETE``;
* ``Condition`` is a Boolean XPath/XQuery expression over ``OLD_NODE`` and
  ``NEW_NODE``;
* the ``Action`` is a call to an external function registered with the
  service; its parameters are XPath/XQuery expressions over the same
  variables.

Keywords are case-insensitive; string literals may use single or double
quotes.  The parser is deliberately independent of the XPath parser so that a
malformed condition produces an error pointing at the condition, not at the
trigger statement structure.
"""

from __future__ import annotations

import re

from repro.errors import TriggerSyntaxError
from repro.relational.triggers import TriggerEvent
from repro.core.trigger import TriggerSpec

__all__ = ["parse_trigger"]

_CREATE_RE = re.compile(
    r"^\s*CREATE\s+TRIGGER\s+(?P<name>[A-Za-z_][A-Za-z_0-9]*)\s+AFTER\s+(?P<event>[A-Za-z]+)\s+ON\s+",
    re.IGNORECASE | re.DOTALL,
)
_VIEW_RE = re.compile(
    r"^view\s*\(\s*(?P<quote>['\"])(?P<view>[^'\"]+)(?P=quote)\s*\)\s*(?P<path>/[^\s]*)",
    re.IGNORECASE,
)


def _find_keyword(text: str, keyword: str, start: int = 0) -> int:
    """Find a top-level keyword (outside quotes and parentheses), or -1."""
    pattern = re.compile(rf"\b{keyword}\b", re.IGNORECASE)
    depth = 0
    quote: str | None = None
    i = start
    while i < len(text):
        ch = text[i]
        if quote is not None:
            if ch == quote:
                quote = None
            i += 1
            continue
        if ch in "'\"":
            quote = ch
            i += 1
            continue
        if ch == "(":
            depth += 1
            i += 1
            continue
        if ch == ")":
            depth -= 1
            i += 1
            continue
        if depth == 0:
            match = pattern.match(text, i)
            if match:
                return i
        i += 1
    return -1


def _split_arguments(text: str) -> list[str]:
    """Split a comma-separated argument list, respecting quotes and parens."""
    arguments: list[str] = []
    depth = 0
    quote: str | None = None
    current: list[str] = []
    for ch in text:
        if quote is not None:
            current.append(ch)
            if ch == quote:
                quote = None
            continue
        if ch in "'\"":
            quote = ch
            current.append(ch)
            continue
        if ch == "(":
            depth += 1
            current.append(ch)
            continue
        if ch == ")":
            depth -= 1
            current.append(ch)
            continue
        if ch == "," and depth == 0:
            arguments.append("".join(current).strip())
            current = []
            continue
        current.append(ch)
    tail = "".join(current).strip()
    if tail:
        arguments.append(tail)
    return arguments


def parse_trigger(text: str) -> TriggerSpec:
    """Parse a ``CREATE TRIGGER`` statement into a :class:`TriggerSpec`."""
    if not text or not text.strip():
        raise TriggerSyntaxError("empty trigger definition")
    source = text.strip()

    match = _CREATE_RE.match(source)
    if not match:
        raise TriggerSyntaxError(
            "expected 'CREATE TRIGGER <name> AFTER <event> ON ...'"
        )
    name = match.group("name")
    try:
        event = TriggerEvent.parse(match.group("event"))
    except ValueError as exc:
        raise TriggerSyntaxError(str(exc)) from exc

    rest = source[match.end():].strip()
    view_match = _VIEW_RE.match(rest)
    if not view_match:
        raise TriggerSyntaxError(
            f"trigger {name!r}: expected ON view('<name>')/<path>, got {rest[:60]!r}"
        )
    view = view_match.group("view")
    raw_path = view_match.group("path")
    if "//" in raw_path:
        raise TriggerSyntaxError(
            f"trigger {name!r}: descendant steps ('//') are not supported in the "
            "trigger Path (only child element steps)"
        )
    path_steps = tuple(step for step in raw_path.strip("/").split("/") if step)
    if not path_steps:
        raise TriggerSyntaxError(f"trigger {name!r}: the monitored path must name an element")
    for step in path_steps:
        if not re.fullmatch(r"[A-Za-z_][\w\-\.]*", step):
            raise TriggerSyntaxError(
                f"trigger {name!r}: unsupported path step {step!r} "
                "(only child element steps are supported in the trigger Path)"
            )

    rest = rest[view_match.end():]

    where_index = _find_keyword(rest, "WHERE")
    do_index = _find_keyword(rest, "DO")
    if do_index == -1:
        raise TriggerSyntaxError(f"trigger {name!r}: missing DO <action>(...) clause")

    condition: str | None = None
    if where_index != -1 and where_index < do_index:
        condition = rest[where_index + len("WHERE"): do_index].strip()
        if not condition:
            raise TriggerSyntaxError(f"trigger {name!r}: empty WHERE condition")

    action_text = rest[do_index + len("DO"):].strip().rstrip(";").strip()
    action_match = re.match(r"^(?P<fn>[A-Za-z_][\w\.]*)\s*\((?P<args>.*)\)\s*$", action_text, re.DOTALL)
    if not action_match:
        raise TriggerSyntaxError(
            f"trigger {name!r}: the action must be a function call, got {action_text!r}"
        )
    action_name = action_match.group("fn")
    argument_text = action_match.group("args").strip()
    action_args = tuple(_split_arguments(argument_text)) if argument_text else ()

    if event is TriggerEvent.INSERT and _mentions(condition, action_args, "OLD_NODE"):
        raise TriggerSyntaxError(
            f"trigger {name!r}: OLD_NODE may not be referenced by an INSERT trigger"
        )
    if event is TriggerEvent.DELETE and _mentions(condition, action_args, "NEW_NODE"):
        raise TriggerSyntaxError(
            f"trigger {name!r}: NEW_NODE may not be referenced by a DELETE trigger"
        )

    return TriggerSpec(
        name=name,
        event=event,
        view=view,
        path=path_steps,
        condition=condition,
        action_name=action_name,
        action_args=action_args,
        source=source,
    )


def _mentions(condition: str | None, args: tuple[str, ...], variable: str) -> bool:
    texts = [condition or ""] + list(args)
    return any(variable in text for text in texts)
