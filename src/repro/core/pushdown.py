"""Trigger Pushdown (Section 5.2): building the executable SQL triggers.

This stage takes the affected-node machinery of Section 4 and turns it into
the statement-level SQL trigger that actually runs on every relational
update.  Three levers are applied here, matching the paper's GROUPED /
GROUPED-AGG implementations:

* **Affected-key pushdown** — the affected keys (driven by the transition
  tables) are pushed *into* the view graph as semi-joins, so base tables are
  probed through indexes for just the affected keys instead of being scanned
  (Figure 16's ``AffectedKeys`` CTE joined inside ``ProductCount``).

* **Old-aggregate compensation (GROUPED-AGG)** — when the triggers in a group
  never look inside ``OLD_NODE`` (beyond attributes derived from the element
  key), the old side only has to decide *which keys existed and satisfied the
  view predicates before the update*.  Distributive aggregates over the
  pre-update table are then computed from the post-update aggregates plus the
  transition tables (Figure 16's ``deltaCount`` / ``HAVING SUM(...)``),
  so ``B_old`` is never materialized or re-aggregated.

* **Difference-check elision** — for injective views evaluated with pruned
  transition tables, the final ``OLD_NODE ≠ NEW_NODE`` check is dropped
  (Theorem 3).

The result, :class:`CompiledTableTrigger`, carries both the faithful
reference graph and the optimized executable graph, plus a Figure 16-style
SQL rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.errors import TriggerCompilationError
from repro.relational.database import Database
from repro.relational.triggers import TriggerContext, TriggerEvent
from repro.xqgm.expressions import AttributeSpec, ColumnRef, ElementConstructor, Expression
from repro.xqgm.evaluate import EvaluationContext, evaluate
from repro.xqgm.graph import ensure_columns
from repro.xqgm.columnar import ColumnarPlan, compile_columnar_plan
from repro.xqgm.physical import PhysicalPlan, ResultCache, compile_plan
from repro.xqgm.operators import JoinKind, JoinOp, Operator, ProjectOp, SelectOp
from repro.xqgm.rewrite import compensate_old_aggregates, prune_columns, push_semijoin
from repro.xqgm.views import PathGraph, ViewElementSpec
from repro.core.affected_nodes import (
    NEW_NODE,
    OLD_NODE,
    AffectedNodeGraph,
    NodesDiffer,
    create_an_graph,
    _final_projection,
    _node_side,
)
from repro.core.events import events_by_table, get_source_events
from repro.core.injectivity import path_graph_is_injective
from repro.core.sqlgen import render_sql_trigger

__all__ = [
    "OldNodeRequirement",
    "PushdownOptions",
    "CompiledTableTrigger",
    "translate_path",
    "AffectedPair",
]


# What the triggers need to know about the pre-update node.
class OldNodeRequirement:
    """How much of OLD_NODE the triggers of a group actually reference."""

    NONE = "none"  # OLD_NODE never referenced
    SHALLOW = "shallow"  # only OLD_NODE attributes derived from the element key
    FULL = "full"  # OLD_NODE descendants / arbitrary content


@dataclass
class PushdownOptions:
    """Knobs selecting which Section 5 optimizations are applied."""

    push_affected_keys: bool = True
    use_pruned_transitions: bool = True
    compensate_old_aggregates: bool = False
    old_node_requirement: str = OldNodeRequirement.FULL
    check_difference: bool | None = None  # None = skip iff injective (Theorem 3)

    def cache_key(self) -> tuple:
        """Hashable fingerprint: two option sets with equal keys compile to
        interchangeable plans, so the service's plan cache can share the
        translation across trigger groups."""
        return (
            self.push_affected_keys,
            self.use_pruned_transitions,
            self.compensate_old_aggregates,
            self.old_node_requirement,
            self.check_difference,
        )


@dataclass
class AffectedPair:
    """One (OLD_NODE, NEW_NODE) pair produced by an activated SQL trigger."""

    key: tuple
    old_node: Any
    new_node: Any


@dataclass
class CompiledTableTrigger:
    """The translation of one monitored path / XML event for one base table.

    Besides the logical graphs, the translation carries the lowered
    *physical* plan (:mod:`repro.xqgm.physical`): tuple rows with slot
    layouts and pre-compiled expression closures.  The physical plan is
    compiled once at translation time and is immutable, so a translation
    cached in the service :class:`~repro.core.service.PlanCache` shares its
    compiled plan across trigger groups and across the shard services of a
    server.  The interpreted evaluator remains available as the oracle
    (``use_compiled=False``).
    """

    table: str
    xml_event: TriggerEvent
    relational_events: dict[TriggerEvent, frozenset[str] | None]
    path_graph: PathGraph
    reference_graph: AffectedNodeGraph
    executable_top: Operator
    key_columns: tuple[str, ...]
    injective: bool
    checks_difference: bool
    uses_compensation: bool
    options: PushdownOptions
    sql_text: str = ""
    physical_plan: PhysicalPlan | None = None
    #: ``repr`` of the exception if physical lowering failed (interpreter
    #: fallback in effect); surfaced through the service's
    #: ``evaluation_report`` so the fallback can never go unnoticed.
    physical_compile_error: str | None = None
    #: The batch-oriented columnar lowering (:mod:`repro.xqgm.columnar`),
    #: selected per firing with ``use_columnar=True``; shares the plan-cache
    #: entry with the row plans.
    columnar_plan: ColumnarPlan | None = None
    #: ``repr`` of the exception if columnar lowering failed (row engines in
    #: effect); surfaced as ``columnar_plan_errors`` in ``evaluation_report``.
    columnar_compile_error: str | None = None
    #: Single-slot ``(root stamp, pairs)`` memo for the columnar engine.  All
    #: sibling trigger groups fired by one statement evaluate this translation
    #: under the same root stamp (context token + table versions), so the
    #: derived pairs list is shared across them without re-entering the
    #: engine.  Stored as one tuple so concurrent shard threads can never
    #: observe a stamp paired with another firing's pairs; table version
    #: stamps embed per-``Table``-instance uids, so a translation shared
    #: across shard services (each with its own database) never aliases.
    _columnar_pairs_memo: tuple | None = field(default=None, repr=False, compare=False)
    #: Single-slot ``(context token, root stamp)`` memo: the stamp is
    #: reassembled only when a new statement starts firing (same atomic
    #: one-tuple discipline as ``_columnar_pairs_memo``).
    _columnar_stamp_memo: tuple | None = field(default=None, repr=False, compare=False)

    def affected_pairs(
        self,
        database: Database,
        trigger_context: TriggerContext,
        *,
        use_compiled: bool = True,
        use_columnar: bool = False,
        result_cache: ResultCache | None = None,
        cache_context_results: bool = True,
        stats: dict[str, int] | None = None,
        engine_stats: dict[str, int] | None = None,
    ) -> list[AffectedPair]:
        """Evaluate the executable graph for one fired statement.

        ``use_columnar`` prefers the columnar plan, ``use_compiled`` the
        physical row plan (the default); each falls back to the next engine —
        columnar → compiled → interpreter — when no plan could be lowered.
        ``result_cache`` enables version-stamped reuse of stable subplan
        results across firings (``cache_context_results=False`` restricts it
        to cross-statement STABLE reuse); ``stats`` collects evaluation
        counters (``index_probes`` / ``hash_joins`` / ``cache_hits`` / ...).
        ``engine_stats`` (always-on, unlike ``stats``) accumulates the
        columnar firing/batch/fallback counters the service reports.
        """
        def make_context() -> EvaluationContext:
            context = EvaluationContext(database, trigger_context)
            if stats is not None:
                context.collect_stats = True
                context.stats = stats
            return context

        context: EvaluationContext | None = None
        if use_columnar:
            columnar = self.columnar_plan
            if columnar is not None:
                # Table versions cannot move while one statement's triggers
                # fire, so the root stamp is a pure function of the firing's
                # context token — assemble it once per statement instead of
                # once per sibling group.  On the memo-hit fast path sibling
                # firings return before even building an EvaluationContext.
                stamp_memo = self._columnar_stamp_memo
                if stamp_memo is not None and stamp_memo[0] == trigger_context.context_token:
                    stamp = stamp_memo[1]
                else:
                    context = make_context()
                    stamp = columnar.result_stamp(context, cache_context_results)
                    self._columnar_stamp_memo = (trigger_context.context_token, stamp)
                memoized = self._columnar_pairs_memo
                if (
                    stamp is not None
                    and memoized is not None
                    and memoized[0] == stamp
                ):
                    # A sibling group already derived the pairs for this root
                    # stamp; the shared list must be treated as immutable.
                    if engine_stats is not None:
                        engine_stats["columnar_firings"] = (
                            engine_stats.get("columnar_firings", 0) + 1
                        )
                    return memoized[1]
                if context is None:
                    context = make_context()
                context.result_cache = result_cache
                context.cache_context_results = cache_context_results
                batch = columnar.execute(context).materialize()
                if engine_stats is not None:
                    engine_stats["columnar_firings"] = (
                        engine_stats.get("columnar_firings", 0) + 1
                    )
                    engine_stats["columnar_batches"] = (
                        engine_stats.get("columnar_batches", 0) + context.columnar_batches
                    )
                layout = columnar.layout
                columns = batch.columns
                key_columns = [columns[layout.index[c]] for c in self.key_columns]
                old_column = columns[layout.index[OLD_NODE]]
                new_column = columns[layout.index[NEW_NODE]]
                pairs = [
                    AffectedPair(key=key, old_node=old, new_node=new)
                    for key, old, new in zip(zip(*key_columns), old_column, new_column)
                ]
                if stamp is not None:
                    self._columnar_pairs_memo = (stamp, pairs)
                return pairs
            # No columnar lowering for this translation: fall through to the
            # row engines, counted so the degradation is never silent.
            if engine_stats is not None:
                engine_stats["columnar_fallbacks"] = (
                    engine_stats.get("columnar_fallbacks", 0) + 1
                )
        if context is None:
            context = make_context()
        plan = self.physical_plan if use_compiled else None
        if plan is not None:
            context.result_cache = result_cache
            context.cache_context_results = cache_context_results
            layout = plan.layout
            key_slots = [layout.index[column] for column in self.key_columns]
            old_slot = layout.index[OLD_NODE]
            new_slot = layout.index[NEW_NODE]
            return [
                AffectedPair(
                    key=tuple(row[i] for i in key_slots),
                    old_node=row[old_slot],
                    new_node=row[new_slot],
                )
                for row in plan.execute(context)
            ]
        rows = evaluate(self.executable_top, context)
        pairs = []
        for row in rows:
            key = tuple(row[column] for column in self.key_columns)
            pairs.append(AffectedPair(key=key, old_node=row[OLD_NODE], new_node=row[NEW_NODE]))
        return pairs

    @property
    def sql_events(self) -> frozenset[TriggerEvent]:
        """Relational events the generated SQL trigger must subscribe to."""
        return frozenset(self.relational_events)


def translate_path(
    path_graph: PathGraph,
    xml_event: TriggerEvent,
    database: Database,
    options: PushdownOptions | None = None,
    trigger_name: str = "xmlTrigger",
) -> dict[str, CompiledTableTrigger]:
    """Translate one monitored path + XML event into per-table SQL triggers.

    Runs Event Pushdown to find the relevant base tables, then builds the
    affected-node graph and its optimized executable form for each.
    """
    options = options or PushdownOptions()
    columns: frozenset[str] | None = None
    if xml_event is TriggerEvent.UPDATE:
        columns = frozenset({path_graph.node_column})
    events = get_source_events(path_graph.top, xml_event, columns)
    per_table = events_by_table(events)
    if not per_table:
        raise TriggerCompilationError(
            f"no relational events can cause {xml_event.value} on "
            f"{'/'.join(path_graph.path)!r}"
        )

    compiled: dict[str, CompiledTableTrigger] = {}
    for table, relational_events in per_table.items():
        compiled[table] = _translate_for_table(
            path_graph, xml_event, table, relational_events, database, options, trigger_name
        )
    return compiled


def _translate_for_table(
    path_graph: PathGraph,
    xml_event: TriggerEvent,
    table: str,
    relational_events: dict[TriggerEvent, frozenset[str] | None],
    database: Database,
    options: PushdownOptions,
    trigger_name: str,
) -> CompiledTableTrigger:
    injective = path_graph_is_injective(path_graph, table)
    if options.check_difference is not None:
        check_difference = options.check_difference
    else:
        # Theorem 3: injective view + pruned transition tables need no check.
        check_difference = not (injective and options.use_pruned_transitions)

    reference = create_an_graph(
        xml_event,
        path_graph,
        table,
        database,
        use_pruned_transitions=options.use_pruned_transitions,
        check_difference=check_difference,
    )

    executable, uses_compensation = _build_executable(
        reference, path_graph, table, database, options, check_difference
    )

    # Lower the executable graph into the slot-based physical plan once, at
    # translation time (never on the DML hot path).  Compilation captures
    # only schema information, so the plan runs against any database with
    # this catalog.  A graph the lowering cannot handle falls back to the
    # interpreted oracle at evaluation time — correct but slower, so the
    # failure is recorded on the translation and surfaced through
    # ``ActiveViewService.evaluation_report`` rather than swallowed.
    physical_compile_error = None
    try:
        physical_plan = compile_plan(executable, database)
    except Exception as error:
        physical_plan = None
        physical_compile_error = repr(error)

    # The columnar lowering is compiled alongside (same translate-time cost
    # model); failures degrade to the row engines and are reported per firing
    # as ``columnar_fallbacks`` / per translation as ``columnar_plan_errors``.
    columnar_compile_error = None
    try:
        columnar_plan = compile_columnar_plan(executable, database)
    except Exception as error:
        columnar_plan = None
        columnar_compile_error = repr(error)

    sql_text = render_sql_trigger(
        name=f"sql_{trigger_name}_{table}",
        table=table,
        events=relational_events.keys(),
        top=executable,
        final_columns=[OLD_NODE, NEW_NODE, *reference.key_columns],
        order_by=list(reference.key_columns),
        action_comment=(
            f"translated from XML trigger(s) on path "
            f"view('{path_graph.view_name}')/{'/'.join(path_graph.path)}"
        ),
    )

    return CompiledTableTrigger(
        table=table,
        xml_event=xml_event,
        relational_events=dict(relational_events),
        path_graph=path_graph,
        reference_graph=reference,
        executable_top=executable,
        key_columns=reference.key_columns,
        injective=injective,
        checks_difference=check_difference,
        uses_compensation=uses_compensation,
        options=options,
        sql_text=sql_text,
        physical_plan=physical_plan,
        physical_compile_error=physical_compile_error,
        columnar_plan=columnar_plan,
        columnar_compile_error=columnar_compile_error,
    )


def _build_executable(
    reference: AffectedNodeGraph,
    path_graph: PathGraph,
    table: str,
    database: Database,
    options: PushdownOptions,
    check_difference: bool,
) -> tuple[Operator, bool]:
    """Build the optimized graph actually evaluated inside the SQL trigger."""
    # The affected-key semi-join pushdown and the old-aggregate compensation
    # are currently applied when the monitored element is a top-level element
    # of the view (a single-level path).  Triggers on nested paths (whose
    # affected keys span several hierarchy levels) fall back to the faithful
    # CreateANGraph plan, which is always correct.
    single_level = len(path_graph.level_specs) == 1
    options = PushdownOptions(
        push_affected_keys=options.push_affected_keys and single_level,
        use_pruned_transitions=options.use_pruned_transitions,
        compensate_old_aggregates=options.compensate_old_aggregates and single_level,
        old_node_requirement=options.old_node_requirement,
        check_difference=options.check_difference,
    )
    if not options.push_affected_keys and not options.compensate_old_aggregates:
        return reference.top, False

    catalog = {name: database.schema(name) for name in database.table_names()}
    g_top = path_graph.top
    g_old_top = reference.g_old_top
    key_columns = reference.key_columns
    covered = reference.covered_key_columns
    union_keys = reference.union_keys
    union_key_columns = reference.union_key_columns
    node_column = path_graph.node_column
    assert union_keys is not None and g_old_top is not None

    push_pairs = [
        (graph_column, union_column)
        for graph_column, union_column in zip(covered, union_key_columns)
    ]

    # ---- NEW side -------------------------------------------------------------
    new_graph: Operator = g_top
    if options.push_affected_keys:
        new_graph = push_semijoin(g_top, push_pairs, union_keys)
    new_side = _node_side(
        union_keys, union_key_columns, new_graph, node_column, key_columns,
        node_output=NEW_NODE, key_suffix="", label="new-nodes-pushed",
        join_columns=covered,
    )

    # ---- OLD side -------------------------------------------------------------
    uses_compensation = False
    old_key_columns = tuple(f"{column}#old" for column in key_columns)
    old_side: Operator | None = None

    if options.compensate_old_aggregates and options.old_node_requirement != OldNodeRequirement.FULL:
        old_side = _compensated_old_side(
            reference, path_graph, table, catalog, options, key_columns, old_key_columns
        )
        uses_compensation = old_side is not None

    if old_side is None:
        old_graph: Operator = g_old_top
        if options.push_affected_keys:
            old_graph = push_semijoin(g_old_top, push_pairs, union_keys)
        old_side = _node_side(
            union_keys, union_key_columns, old_graph, node_column, key_columns,
            node_output=OLD_NODE, key_suffix="#old", label="old-nodes-pushed",
            join_columns=covered,
        )

    # ---- combine per event -------------------------------------------------------
    pairs = [(new, old) for new, old in zip(key_columns, old_key_columns)]
    event = reference.event
    if event is TriggerEvent.UPDATE:
        top: Operator = JoinOp([new_side, old_side], equi_pairs=pairs, label="an-update-join")
        if check_difference:
            top = SelectOp(top, NodesDiffer(), label="old-differs-from-new")
        top = _final_projection(top, key_columns, old_key_columns, has_old=True, has_new=True)
    elif event is TriggerEvent.INSERT:
        anti = JoinOp(
            [new_side, old_side], equi_pairs=pairs, kind=JoinKind.ANTI, label="an-insert-anti"
        )
        top = _final_projection(anti, key_columns, old_key_columns, has_old=False, has_new=True)
    else:  # DELETE
        anti = JoinOp(
            [old_side, new_side],
            equi_pairs=[(old, new) for new, old in pairs],
            kind=JoinKind.ANTI,
            label="an-delete-anti",
        )
        top = _final_projection(anti, key_columns, old_key_columns, has_old=True, has_new=False)

    return top, uses_compensation


def _compensated_old_side(
    reference: AffectedNodeGraph,
    path_graph: PathGraph,
    table: str,
    catalog: Mapping[str, Any],
    options: PushdownOptions,
    key_columns: tuple[str, ...],
    old_key_columns: tuple[str, ...],
) -> Operator | None:
    """GROUPED-AGG old side: keys of pre-update nodes, without touching B_old.

    Returns ``None`` when the rewrite does not apply (non-distributive
    aggregates feeding the view's predicates, or the compensation being
    structurally impossible), in which case the caller falls back to the
    plain (pushed) ``G_old`` evaluation.
    """
    g_old_top = reference.g_old_top
    union_keys = reference.union_keys
    union_key_columns = reference.union_key_columns
    assert g_old_top is not None and union_keys is not None

    # Only the key columns (plus whatever the view's own predicates reference,
    # which prune_columns keeps automatically) are needed on the old side.
    try:
        pruned = prune_columns(g_old_top, list(key_columns))
    except Exception:
        return None

    # Pull up the columns feeding the monitored element's attributes so a
    # shallow OLD_NODE (attributes only, no children) can still be built —
    # they are grouping columns of the view's GroupBy, so no aggregation over
    # B_old is needed for them.
    spec = path_graph.level_specs[-1]
    attribute_columns: list[str] = []
    for _, source in spec.attributes:
        expression = ColumnRef(source) if isinstance(source, str) else source
        for column in sorted(expression.referenced_columns()):
            if column in attribute_columns:
                continue
            try:
                ensure_columns(pruned, [column])
                attribute_columns.append(column)
            except Exception:
                continue

    compensated = compensate_old_aggregates(pruned, table)
    if compensated is None:
        return None

    covered = reference.covered_key_columns
    old_graph: Operator = compensated
    if options.push_affected_keys:
        pairs = [
            (graph_column, union_column)
            for graph_column, union_column in zip(covered, union_key_columns)
        ]
        try:
            old_graph = push_semijoin(compensated, pairs, union_keys)
        except Exception:
            old_graph = compensated

    joined = JoinOp(
        [union_keys, old_graph],
        equi_pairs=[
            (union_column, graph_column)
            for graph_column, union_column in zip(covered, union_key_columns)
        ],
        label="old-keys-compensated",
    )

    # Shallow OLD_NODE: the monitored element with only those attributes whose
    # source columns survived on the old side (key columns and group-level
    # columns) — sufficient for conditions such as OLD_NODE/@name = '...';
    # no children are reconstructed.
    old_node_expression = _shallow_node_expression(
        spec, list(key_columns) + attribute_columns
    )
    projections: list[tuple[str, Expression]] = [(OLD_NODE, old_node_expression)]
    for column, old_column in zip(key_columns, old_key_columns):
        projections.append((old_column, ColumnRef(column)))
    return ProjectOp(joined, projections, label="old-nodes-compensated")


def _shallow_node_expression(spec: ViewElementSpec, key_columns: Sequence[str]) -> Expression:
    attributes: list[AttributeSpec] = []
    available = set(key_columns)
    for attribute_name, source in spec.attributes:
        expression = ColumnRef(source) if isinstance(source, str) else source
        if expression.referenced_columns() <= available:
            attributes.append(AttributeSpec(attribute_name, expression))
    return ElementConstructor(spec.name, tuple(attributes), ())
