"""Semantics of triggers on XML views (Section 3.1 of the paper).

The definitions here are the *specification* that the translated SQL triggers
must satisfy; the MATERIALIZED baseline and the property-based tests use them
directly as the ground truth:

* Definition 2 (View Trigger Updates): a tuple ``t`` is updated by a
  relational transition iff a tuple with the same canonical key exists in both
  states with different values.
* Definition 3 (Inserts / Deletes): a tuple is inserted (deleted) iff its key
  exists only in the new (old) state.
* Definition 4 / Theorem 1 (Trigger-specifiable views): every operator must
  have a canonical key, which holds whenever all base tables have primary
  keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import TriggerNotSpecifiableError
from repro.relational.database import Database
from repro.xmlmodel.node import XmlNode
from repro.xqgm.graph import walk
from repro.xqgm.keys import derive_keys
from repro.xqgm.operators import Operator, TableOp
from repro.errors import KeyDerivationError

__all__ = [
    "NodeChange",
    "check_trigger_specifiable",
    "diff_node_maps",
]


@dataclass(frozen=True)
class NodeChange:
    """One change to the set of nodes selected by a path, per Definitions 2-3."""

    kind: str  # 'UPDATE' | 'INSERT' | 'DELETE'
    key: tuple
    old_node: XmlNode | None
    new_node: XmlNode | None


def check_trigger_specifiable(top: Operator, database: Database) -> None:
    """Raise unless the view graph is trigger-specifiable (Definition 4).

    Per Theorem 1 it suffices that every base table referenced by the graph
    has a primary key; :func:`repro.xqgm.keys.derive_keys` verifies the full
    condition (a canonical key for every operator).
    """
    for op in walk(top):
        if isinstance(op, TableOp):
            schema = database.schema(op.table)
            if not schema.primary_key:
                raise TriggerNotSpecifiableError(
                    f"base table {op.table!r} has no primary key; the view is not "
                    "trigger-specifiable (Theorem 1)"
                )
    try:
        derive_keys(top, database)
    except KeyDerivationError as exc:
        raise TriggerNotSpecifiableError(str(exc)) from exc


def diff_node_maps(
    old_nodes: Mapping[tuple, XmlNode],
    new_nodes: Mapping[tuple, XmlNode],
) -> list[NodeChange]:
    """Diff two key → node maps according to Definitions 2 and 3.

    ``old_nodes`` / ``new_nodes`` are the nodes selected by the monitored
    path before and after a relational transition, keyed by canonical key.
    """
    changes: list[NodeChange] = []
    for key, old_node in old_nodes.items():
        if key not in new_nodes:
            changes.append(NodeChange("DELETE", key, old_node, None))
    for key, new_node in new_nodes.items():
        old_node = old_nodes.get(key)
        if old_node is None:
            changes.append(NodeChange("INSERT", key, None, new_node))
        elif old_node != new_node:
            changes.append(NodeChange("UPDATE", key, old_node, new_node))
    return changes
