"""The active XML-view middleware (the "Quark + triggers" system of Figure 6).

:class:`ActiveViewService` ties the whole pipeline together:

1. users register :class:`~repro.xqgm.views.ViewDefinition` objects and
   external action functions;
2. ``CREATE TRIGGER`` statements (text or :class:`TriggerSpec`) are parsed,
   composed with their view, pushed through Event Pushdown, translated via
   CreateAKGraph / CreateANGraph, grouped with structurally similar triggers,
   and installed as statement-level SQL triggers on the base tables;
3. ordinary relational DML executed through the service (or directly against
   the :class:`~repro.relational.Database`) fires those SQL triggers, whose
   bodies compute the (OLD_NODE, NEW_NODE) pairs, evaluate each XML trigger's
   condition, and invoke its action;
4. batches of DML submitted via :meth:`ActiveViewService.execute_batch` are
   applied set-at-a-time: the per-statement deltas are coalesced and every
   SQL trigger fires once per (table, event) over the combined transition
   tables, so the whole trigger pipeline runs once per batch slice instead of
   once per statement.

Trigger compilation is memoized in a plan cache keyed by (view, monitored
path, XML event, pushdown options), so structurally identical trigger groups
— most notably the one-group-per-trigger populations of UNGROUPED mode —
share a single pushdown derivation.

Three execution modes reproduce the systems evaluated in Section 6:
``UNGROUPED``, ``GROUPED``, and ``GROUPED_AGG``.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from repro.errors import TriggerError
from repro.relational.database import Database
from repro.relational.dml import Batch, BatchResult, BulkLoad, Statement, StatementResult
from repro.relational.triggers import StatementTrigger, TriggerContext, TriggerEvent
from repro.xmlmodel.node import XmlNode
from repro.xmlmodel.xpath import XPath
from repro.xqgm.physical import ResultCache
from repro.xqgm.views import PathGraph, ViewDefinition
from repro.core.activation import ActionRegistry, TriggerActivator
from repro.core.grouping import ConstantsRow, TriggerGroup
from repro.core.language import parse_trigger
from repro.core.pushdown import (
    CompiledTableTrigger,
    OldNodeRequirement,
    PushdownOptions,
    translate_path,
)
from repro.core.semantics import check_trigger_specifiable
from repro.core.trigger import ActionCall, TriggerSpec
from repro.matching.engine import GroupMatcher, MatchPlanCache, MatchStats
from repro.matching.indexes import PathTrie
from repro.matching.predicates import MatchPlan

__all__ = ["ExecutionMode", "FiredTrigger", "PlanCache", "ActiveViewService"]


class ExecutionMode(enum.Enum):
    """The three systems evaluated in Section 6 of the paper."""

    UNGROUPED = "ungrouped"
    GROUPED = "grouped"
    GROUPED_AGG = "grouped_agg"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class FiredTrigger:
    """Record of one XML trigger firing for one affected node."""

    trigger: str
    view: str
    path: tuple[str, ...]
    event: TriggerEvent
    key: tuple
    old_node: XmlNode | None
    new_node: XmlNode | None
    action_call: ActionCall | None = None


@dataclass
class _CompiledGroup:
    """A trigger group together with its installed SQL triggers."""

    group: TriggerGroup
    translations: dict[str, CompiledTableTrigger] = field(default_factory=dict)
    sql_trigger_names: list[str] = field(default_factory=list)
    condition: XPath | None = None
    arguments: tuple[XPath, ...] = ()
    constants_cache: list[ConstantsRow] | None = None
    compile_seconds: float = 0.0
    #: The condition's indexable structure (None for condition-less groups).
    match_plan: MatchPlan | None = None
    _matcher: GroupMatcher | None = field(default=None, init=False, repr=False)
    _matcher_dirty: bool = field(default=True, init=False, repr=False)

    def constants_rows(self) -> list[ConstantsRow]:
        if self.constants_cache is None:
            self.constants_cache = self.group.constants_table()
        return self.constants_cache

    def invalidate_constants(self) -> None:
        self.constants_cache = None
        self._matcher_dirty = True

    # -- matching indexes (repro.matching) -------------------------------------

    def matcher(self) -> GroupMatcher:
        """The group's :class:`GroupMatcher`, (re)built lazily when dirty."""
        matcher = self._matcher
        if matcher is None or self._matcher_dirty:
            # Build fully, then swap: a concurrent reader observes the old
            # complete matcher or the new complete matcher, never a torn one.
            matcher = GroupMatcher.build(
                self.condition, self.match_plan, self.group.members
            )
            self._matcher = matcher
            self._matcher_dirty = False
        return matcher

    def note_member_added(self, member) -> None:
        """Index one newly added member without rebuilding (when clean)."""
        self.constants_cache = None
        if self._matcher is not None and not self._matcher_dirty:
            self._matcher.add_member(member)

    def note_member_removed(self, name: str, constants_key: tuple) -> None:
        """Unindex one removed member without rebuilding (when clean)."""
        self.constants_cache = None
        if self._matcher is not None and not self._matcher_dirty:
            self._matcher.remove_member(name, constants_key)


class PlanCache:
    """Thread-safe cache of compiled trigger plans, shareable across services.

    The cache maps ``(view, path, XML event, pushdown-option fingerprint)``
    keys to the per-table :class:`CompiledTableTrigger` translations derived
    by Trigger Pushdown.  Compiled plans reference base tables *by name* and
    receive the database at evaluation time, so one cache may be shared by
    several :class:`ActiveViewService` instances — in particular by the
    per-shard services of a :class:`repro.serving.ActiveViewServer`, whose
    shards all expose the same catalog.  Sharing means an N-shard server pays
    the pushdown derivation once per distinct plan, not once per shard.

    Thread safety: :meth:`get_or_compile` holds the cache lock for the whole
    lookup-or-compile, so concurrent callers racing on the same key compile
    exactly once (the others block briefly and then hit).  Compilation runs
    at trigger-creation time, never on the serving hot path, so the coarse
    lock does not affect DML throughput.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._plans: dict[tuple, dict[str, CompiledTableTrigger]] = {}
        self.hits = 0
        self.misses = 0

    def get_or_compile(
        self,
        key: tuple,
        compile_fn: Callable[[], dict[str, CompiledTableTrigger]],
    ) -> tuple[dict[str, CompiledTableTrigger], bool]:
        """Return ``(translations, was_hit)``, compiling at most once per key."""
        with self._lock:
            translations = self._plans.get(key)
            if translations is not None:
                self.hits += 1
                return translations, True
            translations = compile_fn()
            self._plans[key] = translations
            self.misses += 1
            return translations, False

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def invalidate_view(self, view: str) -> int:
        """Drop every cached plan compiled for ``view``; returns the count.

        Plan keys are ``(view, path, event, option fingerprint)`` tuples, so
        a dropped view's plans can be evicted without touching the others.
        On a cache shared across shard services the eviction is global — the
        next ``create_trigger`` for a re-registered view simply recompiles.
        """
        with self._lock:
            doomed = [key for key in self._plans if key[0] == view]
            for key in doomed:
                del self._plans[key]
            return len(doomed)


class ActiveViewService:
    """Middleware exposing active (trigger-enabled) XML views of relational data.

    Thread-safety model: a service instance is *single-writer* — DML
    execution, trigger creation, and the firing log are meant to be driven
    from one thread at a time (the shard-worker model of
    :class:`repro.serving.ActiveViewServer`).  The only pieces designed for
    cross-thread sharing are the :class:`PlanCache` (pass one instance to
    several services) and the registered activation listeners, which are
    invoked on whichever thread executes the DML.
    """

    def __init__(
        self,
        database: Database,
        mode: ExecutionMode = ExecutionMode.GROUPED_AGG,
        *,
        push_affected_keys: bool = True,
        use_pruned_transitions: bool = True,
        create_indexes: bool = True,
        strict_actions: bool = False,
        plan_cache: PlanCache | None = None,
        use_compiled_plans: bool = True,
        use_columnar: bool = False,
        result_cache_size: int = 512,
        collect_eval_stats: bool = False,
        backend: Any = None,
        use_matching_indexes: bool = True,
        match_plan_cache: MatchPlanCache | None = None,
    ) -> None:
        self.database = database
        self.mode = mode
        self.push_affected_keys = push_affected_keys
        self.use_pruned_transitions = use_pruned_transitions
        self.create_indexes = create_indexes
        # Compiled physical plans (repro.xqgm.physical) are the default
        # trigger-firing engine; the interpreted evaluator remains the oracle
        # and the fallback for graphs the lowering cannot handle.  The result
        # cache reuses stable subplan results across firings while the input
        # tables' version counters are unchanged; it observes *this* service's
        # database only, so it is per-service even when the PlanCache (and
        # thereby the compiled plans) is shared across shard services.
        self.use_compiled_plans = use_compiled_plans
        # The batch-oriented columnar engine (repro.xqgm.columnar) is opt-in:
        # it prefers the columnar lowering per firing and degrades to the row
        # engines for translations without one — every such degradation is
        # counted (columnar_fallbacks / columnar_plan_errors in
        # :meth:`evaluation_report`), never silent.  The columnar counters
        # are maintained on the hot path regardless of collect_eval_stats so
        # the zero-silent-fallback guarantee is always observable.
        self.use_columnar = use_columnar
        self.columnar_stats: dict[str, int] = {
            "columnar_firings": 0,
            "columnar_batches": 0,
            "columnar_fallbacks": 0,
        }
        self.result_cache = ResultCache(max_entries=result_cache_size)
        # When enabled, evaluation counters (index_probes / hash_joins /
        # cache_hits / rows_* ...) accumulate here across firings.
        self.collect_eval_stats = collect_eval_stats
        self.eval_stats: dict[str, int] = {}
        self.registry = ActionRegistry()
        self.activator = TriggerActivator(self.registry, strict=strict_actions)
        self._views: dict[str, ViewDefinition] = {}
        self._triggers: dict[str, TriggerSpec] = {}
        self._groups: dict[tuple, _CompiledGroup] = {}
        self._path_graphs: dict[tuple[str, tuple[str, ...]], PathGraph] = {}
        # Compiled-plan cache: (view, path, XML event, pushdown-option
        # fingerprint) -> per-table translations.  Trigger groups with the
        # same monitored path and options compile to identical plans, so
        # UNGROUPED populations (one group per trigger) and re-created
        # triggers skip the whole pushdown derivation after the first time.
        # A shared PlanCache extends the same sharing across services (the
        # per-shard services of an ActiveViewServer pass one cache here).
        # "plan_cache or PlanCache()" would discard an *empty* shared cache
        # (PlanCache defines __len__, so an empty one is falsy).
        self._plan_cache: PlanCache = plan_cache if plan_cache is not None else PlanCache()
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        # Sublinear matching (repro.matching): per-group predicate indexes
        # select candidate constants rows in ~O(matching triggers).  The
        # linear scan stays available as the oracle (set
        # ``use_matching_indexes = False``); selections that cannot use an
        # index are counted in ``match_stats.fallbacks`` and surfaced through
        # :meth:`evaluation_report`.  The MatchPlanCache is shareable across
        # services exactly like the PlanCache ("is not None" for the same
        # empty-cache reason).
        self.use_matching_indexes = use_matching_indexes
        self._match_plan_cache: MatchPlanCache = (
            match_plan_cache if match_plan_cache is not None else MatchPlanCache()
        )
        self.match_stats = MatchStats()
        # Per-view prefix tries over monitored paths: (view, path) -> the
        # group signatures monitoring that path.  ``drop_view`` and the
        # :meth:`monitored_groups` diagnostic walk the trie instead of
        # scanning the registered-trigger population.
        self._monitored: dict[str, PathTrie] = {}
        self._fired: list[FiredTrigger] = []
        self._listeners: list[Callable[[FiredTrigger], None]] = []
        # DDL listeners observe registry changes (view registration, trigger
        # creation/drop) so the persistence layer can log them for registry
        # rehydration after a restart (see repro.persist).
        self._ddl_listeners: list[Callable[[str, Any], None]] = []
        self._sql_trigger_counter = 0
        self.last_compile_seconds = 0.0
        # Optional execution backend (repro.backends): mirrors the database
        # into an external engine (e.g. SQLite) and runs the generated
        # trigger statements there — the paper's Figure 16 architecture,
        # where the RDBMS executes the translated SQL.  Translations the
        # backend's dialect cannot express fall back to the in-memory
        # engines above, per translation; the fallbacks are surfaced through
        # :meth:`evaluation_report` so they can never go unnoticed.
        self.backend = None
        if backend is not None:
            from repro.backends.base import create_backend

            self.backend = create_backend(backend)
            self.backend.attach(database)
        # Backend plans cached by (plan key, table): like the PlanCache,
        # structurally identical trigger groups share one lowered statement.
        self._backend_plans: dict[tuple, Any] = {}
        self._backend_errors: dict[tuple, str] = {}

    # ------------------------------------------------------------------ registration

    def register_view(self, view: ViewDefinition) -> None:
        """Register an XML view definition (must be trigger-specifiable)."""
        if view.name in self._views:
            raise TriggerError(f"view {view.name!r} already registered")
        for table in view.base_tables():
            if not self.database.has_table(table):
                raise TriggerError(
                    f"view {view.name!r} references unknown table {table!r}"
                )
        self._views[view.name] = view
        self._emit_ddl("register_view", view.name)

    def drop_view(self, name: str) -> None:
        """Unregister a view, dropping its triggers and cached plans.

        Mirrors :meth:`~repro.relational.database.Database.drop_table`'s
        cascade: every XML trigger monitoring the view is dropped (their SQL
        triggers uninstall when the groups empty), the composed path graphs
        are forgotten, and the plan cache evicts every plan compiled for the
        view — so re-registering a changed view under the same name can never
        serve stale compiled plans.
        """
        if name not in self._views:
            raise TriggerError(f"unknown view {name!r}")
        # The monitored-path trie knows every group of this view; collecting
        # their members costs O(the view's triggers), not O(all triggers).
        doomed: list[str] = []
        trie = self._monitored.get(name)
        if trie is not None:
            for signature in trie.extensions_of(()):
                compiled = self._groups.get(signature)
                if compiled is not None:
                    doomed.extend(m.spec.name for m in compiled.group.members)
        for trigger_name in doomed:
            self.drop_trigger(trigger_name)
        self._monitored.pop(name, None)
        del self._views[name]
        self._path_graphs = {
            key: graph for key, graph in self._path_graphs.items() if key[0] != name
        }
        self._plan_cache.invalidate_view(name)
        # Cached subplan results of the dropped view's plans would never be
        # looked up again (recompiled plans carry fresh operator ids), but
        # dropping them now returns the memory immediately.  Backend plans
        # are keyed by the same (view, path, event, options) plan keys, so
        # the dropped view's lowered statements (and any recorded lowering
        # failures) are evicted alongside.
        self.result_cache.clear()
        self._backend_plans = {
            key: plan for key, plan in self._backend_plans.items() if key[0][0] != name
        }
        self._backend_errors = {
            key: error for key, error in self._backend_errors.items() if key[0][0] != name
        }
        self._emit_ddl("drop_view", name)

    def register_action(self, name: str, function: Callable[..., Any]) -> None:
        """Register an external action function callable from trigger actions."""
        self.registry.register(name, function)

    def add_activation_listener(self, listener: Callable[[FiredTrigger], None]) -> None:
        """Register a hook invoked with every :class:`FiredTrigger` as it fires.

        Listeners run synchronously on the executing thread, after the
        trigger's action function.  The serving layer uses this to fan
        activations out to subscriber queues; tests use it to observe firings
        without going through ``service.fired``.
        """
        self._listeners.append(listener)

    def remove_activation_listener(self, listener: Callable[[FiredTrigger], None]) -> None:
        """Remove a previously registered activation listener (idempotent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def add_ddl_listener(self, listener: Callable[[str, Any], None]) -> None:
        """Register a hook observing registry DDL, for durability logging.

        The listener is called as ``listener(kind, payload)`` with
        ``("register_view", name)``, ``("drop_view", name)``,
        ``("create_trigger", TriggerSpec)``, and ``("drop_trigger", name)``
        events, in the order they commit.  :class:`repro.persist` appends
        these to a DDL log so the registry can be rehydrated after a restart.
        """
        self._ddl_listeners.append(listener)

    def remove_ddl_listener(self, listener: Callable[[str, Any], None]) -> None:
        """Remove a previously registered DDL listener (idempotent)."""
        try:
            self._ddl_listeners.remove(listener)
        except ValueError:
            pass

    def _emit_ddl(self, kind: str, payload: Any) -> None:
        for listener in self._ddl_listeners:
            listener(kind, payload)

    def view(self, name: str) -> ViewDefinition:
        """Look up a registered view."""
        try:
            return self._views[name]
        except KeyError:
            raise TriggerError(f"unknown view {name!r}") from None

    @property
    def views(self) -> list[str]:
        """Names of registered views."""
        return list(self._views)

    @property
    def triggers(self) -> list[TriggerSpec]:
        """All registered XML trigger specs."""
        return list(self._triggers.values())

    # ------------------------------------------------------------------ triggers

    def create_trigger(self, definition: str | TriggerSpec) -> TriggerSpec:
        """Create an XML trigger from ``CREATE TRIGGER`` text or a spec.

        Parsing, view composition, event pushdown, affected-node graph
        generation, grouping and pushdown all happen here (trigger *compile
        time*); the resulting SQL triggers are registered on the database.
        """
        started = time.perf_counter()
        spec = parse_trigger(definition) if isinstance(definition, str) else definition
        if spec.name in self._triggers:
            raise TriggerError(f"trigger {spec.name!r} already exists")
        self.view(spec.view)  # unknown views fail here, before any compilation

        signature = self._group_signature(spec)
        compiled = self._groups.get(signature)
        if compiled is None:
            group = TriggerGroup(spec.structural_signature())
            group.add(spec)
            compiled = self._compile_group(group, spec)
            self._groups[signature] = compiled
            self._note_group_added(signature, spec)
        else:
            member = compiled.group.add(spec)
            compiled.note_member_added(member)
        self._triggers[spec.name] = spec
        self.last_compile_seconds = time.perf_counter() - started
        compiled.compile_seconds += self.last_compile_seconds
        self._emit_ddl("create_trigger", spec)
        return spec

    def register_triggers_bulk(
        self, definitions: Iterable[str | TriggerSpec]
    ) -> list[TriggerSpec]:
        """Create a batch of XML triggers, building matching indexes once.

        Semantically equivalent to calling :meth:`create_trigger` per
        definition, but the per-group constants tables and matching indexes
        are invalidated once per *touched group* instead of once per trigger,
        so registering N structurally similar triggers costs one index build
        instead of N incremental ones.  The batch is validated up front —
        unknown views, duplicate names (against the registry *and* within the
        batch) and unspecifiable paths all fail before any trigger is
        installed — so a failed bulk registration leaves the service
        unchanged.
        """
        started = time.perf_counter()
        specs: list[TriggerSpec] = []
        batch_names: set[str] = set()
        for definition in definitions:
            spec = parse_trigger(definition) if isinstance(definition, str) else definition
            if spec.name in self._triggers or spec.name in batch_names:
                raise TriggerError(f"trigger {spec.name!r} already exists")
            batch_names.add(spec.name)
            self.view(spec.view)
            specs.append(spec)
        for spec in specs:
            # Dry-run the path-graph derivation (cached per (view, path)):
            # an unspecifiable monitored path aborts the whole batch here,
            # before any registration mutates the service.
            self._path_graph(spec)
        touched: dict[tuple, _CompiledGroup] = {}
        for spec in specs:
            signature = self._group_signature(spec)
            compiled = self._groups.get(signature)
            if compiled is None:
                group = TriggerGroup(spec.structural_signature())
                group.add(spec)
                compiled = self._compile_group(group, spec)
                self._groups[signature] = compiled
                self._note_group_added(signature, spec)
            else:
                compiled.group.add(spec)
                touched[signature] = compiled
            self._triggers[spec.name] = spec
            self._emit_ddl("create_trigger", spec)
        for compiled in touched.values():
            compiled.invalidate_constants()
        self.last_compile_seconds = time.perf_counter() - started
        return specs

    def drop_trigger(self, name: str) -> None:
        """Drop an XML trigger (and its SQL triggers when the group empties)."""
        spec = self._triggers.pop(name, None)
        if spec is None:
            raise TriggerError(f"no such trigger {name!r}")
        signature = self._group_signature(spec)
        compiled = self._groups.get(signature)
        if compiled is None:
            self._emit_ddl("drop_trigger", name)
            return
        constants_key = next(
            (m.constants_key for m in compiled.group.members if m.spec.name == name),
            None,
        )
        compiled.group.remove(name)
        if constants_key is not None:
            compiled.note_member_removed(name, constants_key)
        else:  # pragma: no cover - name absent from its own group
            compiled.invalidate_constants()
        if not compiled.group.members:
            for sql_name in compiled.sql_trigger_names:
                self.database.drop_trigger(sql_name)
            del self._groups[signature]
            self._note_group_removed(signature, spec)
        self._emit_ddl("drop_trigger", name)

    def generated_sql(self, trigger_name: str) -> list[str]:
        """The SQL text of the statement triggers generated for an XML trigger."""
        spec = self._triggers.get(trigger_name)
        if spec is None:
            raise TriggerError(f"no such trigger {trigger_name!r}")
        compiled = self._groups[self._group_signature(spec)]
        return [translation.sql_text for translation in compiled.translations.values()]

    def group_count(self) -> int:
        """Number of trigger groups (== number of generated SQL trigger sets)."""
        return len(self._groups)

    # ------------------------------------------------------------------ execution

    def execute(self, statement: Statement) -> StatementResult:
        """Execute a DML statement; SQL triggers fire and XML triggers activate."""
        mark = len(self._fired)
        result = self.database.execute(statement)
        result.fired_xml_triggers = [fired.trigger for fired in self._fired[mark:]]
        return result

    def execute_batch(
        self, statements: Batch | BulkLoad | Iterable[Statement | BulkLoad]
    ) -> BatchResult:
        """Execute a batch of DML statements set-at-a-time.

        The statements are applied through
        :meth:`~repro.relational.Database.execute_many`, so each generated SQL
        trigger fires once per (table, event) with the batch's *net*
        transition tables, and the (OLD_NODE, NEW_NODE) pairs are computed
        over the whole delta in a single evaluation of the pushed-down plan —
        the paper's set-oriented semantics extended across statements.  XML
        triggers activate at most **once per affected node per batch**
        (slices rediscovering the same net transition are deduplicated):
        OLD_NODE reconstructs the updated table's pre-batch contents (other
        tables are read post-batch, as in any AFTER trigger), NEW_NODE is the
        post-batch state, and intermediate states are never observed.
        """
        mark = len(self._fired)
        result = self.database.execute_many(statements)
        result.fired_xml_triggers = [fired.trigger for fired in self._fired[mark:]]
        return result

    def insert(self, table: str, rows) -> StatementResult:
        """Convenience INSERT through the service."""
        if isinstance(rows, Mapping):
            rows = [rows]
        from repro.relational.dml import InsertStatement

        return self.execute(InsertStatement(table, rows))

    def update(self, table: str, assignments, where=None) -> StatementResult:
        """Convenience UPDATE through the service."""
        from repro.relational.dml import UpdateStatement

        return self.execute(UpdateStatement(table, assignments, where))

    def delete(self, table: str, where=None) -> StatementResult:
        """Convenience DELETE through the service."""
        from repro.relational.dml import DeleteStatement

        return self.execute(DeleteStatement(table, where))

    # ------------------------------------------------------------------ results

    @property
    def fired(self) -> list[FiredTrigger]:
        """Every XML trigger firing observed so far (most recent last)."""
        return self._fired

    @property
    def action_calls(self) -> list[ActionCall]:
        """Every action invocation performed so far."""
        return self.activator.call_log

    def clear_logs(self) -> None:
        """Forget recorded firings and action calls (used between benchmark runs)."""
        self._fired.clear()
        self.activator.reset_log()

    def close(self) -> None:
        """Release the execution backend, if any (idempotent).

        The backend subscribes to the database's commit listeners at
        construction; a service that is being discarded while its database
        lives on must be closed, or the orphaned mirror would keep replaying
        every subsequent commit.  Services without a backend need no
        teardown (``close`` is then a no-op).
        """
        if self.backend is not None:
            self.backend.close()
            self.backend = None
            self._backend_plans.clear()
            self._backend_errors.clear()

    def evaluation_report(self) -> dict[str, int]:
        """Evaluation counters plus result-cache statistics.

        The ``index_probes`` / ``hash_joins`` / ``cache_hits`` / ``rows_*``
        counters accumulate only when the service was created with
        ``collect_eval_stats=True``; the ``result_cache_*`` entries and
        ``compiled_plan_fallbacks`` (translations whose physical lowering
        failed and run on the interpreter — expected to be zero) are always
        maintained, as are the ``matching_*`` counters of the sublinear
        matching engine (``matching_fallbacks`` counts candidate selections
        that had to scan linearly because a condition has no indexable atom
        — the equivalence suites assert it stays zero on indexable
        populations).

        The ``columnar_*`` counters are likewise always maintained:
        ``columnar_firings`` / ``columnar_batches`` count firings served by
        the columnar engine and the column batches they materialized;
        ``columnar_fallbacks`` counts firings that degraded to the row
        engines because a translation has no columnar lowering, and
        ``columnar_plan_errors`` the currently-installed translations in that
        state — both expected to be zero, and asserted zero by the columnar
        equivalence suite so unlowerable operators can never pass silently.
        """
        report = dict(self.eval_stats)
        for key, value in self.result_cache.stats().items():
            report[f"result_cache_{key}"] = value
        for key, value in self.match_stats.as_dict().items():
            report[f"matching_{key}"] = value
        report["compiled_plan_fallbacks"] = sum(
            1
            for compiled in self._groups.values()
            for translation in compiled.translations.values()
            if translation.physical_plan is None
        )
        report.update(self.columnar_stats)
        report["columnar_plan_errors"] = sum(
            1
            for compiled in self._groups.values()
            for translation in compiled.translations.values()
            if translation.columnar_plan is None
        )
        if self.backend is not None:
            report["backend_plans"] = len(self._backend_plans)
            report["backend_lowering_fallbacks"] = len(self._backend_errors)
            report["backend_statements"] = getattr(
                self.backend, "statements_executed", 0
            )
        return report

    def backend_lowering_errors(self) -> dict[tuple, str]:
        """Per-(plan key, table) lowering errors of the execution backend.

        Non-empty means some translations run on the in-memory fallback
        engines instead of the backend; the property suite asserts this is
        empty so backend equivalence can never pass vacuously.
        """
        return dict(self._backend_errors)

    # ------------------------------------------------------------------ internals

    def _group_signature(self, spec: TriggerSpec) -> tuple:
        if self.mode is ExecutionMode.UNGROUPED:
            # No sharing: every trigger is its own group (its own SQL triggers).
            return ("__ungrouped__", spec.name)
        return spec.structural_signature()

    def _note_group_added(self, signature: tuple, spec: TriggerSpec) -> None:
        trie = self._monitored.get(spec.view)
        if trie is None:
            trie = PathTrie()
            self._monitored[spec.view] = trie
        trie.add(spec.path, signature)

    def _note_group_removed(self, signature: tuple, spec: TriggerSpec) -> None:
        trie = self._monitored.get(spec.view)
        if trie is not None:
            trie.discard(spec.path, signature)
            if not len(trie):
                del self._monitored[spec.view]

    def monitored_groups(
        self, view: str, path: tuple[str, ...] = (), *, descendants: bool = True
    ) -> list[tuple]:
        """Group signatures monitoring ``path`` of ``view`` (trie lookup).

        With ``descendants`` (the default) the result covers the whole
        subtree under ``path`` — ``monitored_groups(view)`` lists every group
        of the view; without it, only groups at exactly ``path``.  Cost is
        the path length plus the matches, independent of how many triggers
        are registered.
        """
        trie = self._monitored.get(view)
        if trie is None:
            return []
        return trie.extensions_of(path) if descendants else trie.exact(path)

    def _path_graph(self, spec: TriggerSpec) -> PathGraph:
        key = (spec.view, spec.path)
        graph = self._path_graphs.get(key)
        if graph is None:
            view = self.view(spec.view)
            graph = view.path_graph(spec.path, self.database)
            check_trigger_specifiable(graph.top, self.database)
            self._path_graphs[key] = graph
            if self.create_indexes:
                self._create_join_indexes(view)
        return graph

    def _create_join_indexes(self, view: ViewDefinition) -> None:
        """Build hash indexes on foreign-key join columns (Section 6.1 setup)."""
        for table_name in view.base_tables():
            table = self.database.table(table_name)
            for fk in table.schema.foreign_keys:
                if not table.has_index_on(fk.columns):
                    table.create_index(f"fk_{table_name}_{'_'.join(fk.columns)}", fk.columns)

    def _pushdown_options(self, group: TriggerGroup) -> PushdownOptions:
        requirement = OldNodeRequirement.NONE
        for member in group.members:
            if member.spec.references_old_node_content():
                requirement = OldNodeRequirement.FULL
                break
            if member.spec.references_old_node():
                requirement = OldNodeRequirement.SHALLOW
        return PushdownOptions(
            push_affected_keys=self.push_affected_keys,
            use_pruned_transitions=self.use_pruned_transitions,
            compensate_old_aggregates=(self.mode is ExecutionMode.GROUPED_AGG),
            old_node_requirement=requirement,
        )

    def _compile_group(self, group: TriggerGroup, spec: TriggerSpec) -> _CompiledGroup:
        path_graph = self._path_graph(spec)
        options = self._pushdown_options(group)
        plan_key = (spec.view, spec.path, spec.event, options.cache_key())
        translations, was_hit = self._plan_cache.get_or_compile(
            plan_key,
            lambda: translate_path(
                path_graph, spec.event, self.database, options, trigger_name=spec.name
            ),
        )
        if was_hit:
            # Structurally identical plan already derived (possibly for a
            # different group — e.g. every UNGROUPED trigger of a Figure 17
            # population, or the same trigger compiled on a sibling shard
            # service sharing this cache); the rendered SQL keeps the first
            # trigger's name.
            self.plan_cache_hits += 1
        else:
            self.plan_cache_misses += 1
        condition = group.parameterized_condition()
        compiled = _CompiledGroup(
            group=group,
            translations=translations,
            condition=condition,
            arguments=group.parameterized_arguments(),
            match_plan=(
                None
                if condition is None
                else self._match_plan_cache.get_or_analyze(condition)
            ),
        )
        backend_plans = self._prepare_backend_plans(plan_key, translations)
        for table, translation in translations.items():
            self._sql_trigger_counter += 1
            sql_name = f"sqlTrigger{self._sql_trigger_counter}_{table}"
            trigger = StatementTrigger(
                name=sql_name,
                table=table,
                events=translation.sql_events,
                body=self._make_trigger_body(
                    compiled, translation, backend_plans.get(table)
                ),
                sql_text=translation.sql_text,
                metadata={
                    "xml_trigger_group": group.signature,
                    "mode": self.mode.value,
                    "uses_compensation": translation.uses_compensation,
                },
            )
            self.database.register_trigger(trigger)
            compiled.sql_trigger_names.append(sql_name)
        return compiled

    def _prepare_backend_plans(
        self, plan_key: tuple, translations: dict[str, CompiledTableTrigger]
    ) -> dict[str, Any]:
        """Lower the group's translations on the execution backend, if any.

        Prepared statements are cached by ``(plan key, table)`` — mirroring
        the :class:`PlanCache` sharing — and a translation whose lowering
        fails is recorded once and permanently served by the in-memory
        engines instead (the fallback count is in :meth:`evaluation_report`).
        """
        if self.backend is None:
            return {}
        from repro.backends.base import BackendLoweringError

        plans: dict[str, Any] = {}
        for table, translation in translations.items():
            cache_key = (plan_key, table)
            if cache_key in self._backend_errors:
                continue
            plan = self._backend_plans.get(cache_key)
            if plan is None:
                try:
                    plan = self.backend.prepare(translation)
                except BackendLoweringError as error:
                    self._backend_errors[cache_key] = str(error)
                    continue
                self._backend_plans[cache_key] = plan
            plans[table] = plan
        return plans

    def _make_trigger_body(
        self,
        compiled: _CompiledGroup,
        translation: CompiledTableTrigger,
        backend_plan: Any = None,
    ) -> Callable[[TriggerContext], None]:
        def body(context: TriggerContext) -> None:
            # self.backend is re-read per firing: after close() the in-memory
            # engines take over (the mirror is gone).
            if backend_plan is not None and self.backend is not None:
                # Figure 16 for real: the lowered statement runs inside the
                # backend engine against its mirrored tables (the commit
                # listener updated them before this trigger fired).
                pairs = self.backend.affected_pairs(backend_plan, context)
            else:
                # CONTEXT-level (statement-shared) caching pays off when work
                # can repeat within one firing: several trigger groups
                # evaluating shared subgraphs per statement.  With a single
                # group each plan runs once per firing, so only
                # cross-statement STABLE reuse is worth its bookkeeping —
                # CONTEXT stamping is switched off.
                use_engine_cache = self.use_compiled_plans or self.use_columnar
                pairs = translation.affected_pairs(
                    self.database,
                    context,
                    use_compiled=self.use_compiled_plans,
                    use_columnar=self.use_columnar,
                    result_cache=self.result_cache if use_engine_cache else None,
                    cache_context_results=len(self._groups) > 1,
                    stats=self.eval_stats if self.collect_eval_stats else None,
                    engine_stats=self.columnar_stats if self.use_columnar else None,
                )
            if not pairs:
                return
            self._activate_group(
                compiled,
                translation,
                pairs,
                batch_seen=context.batch_seen,
                probe_cache=context.probe_cache,
            )

        return body

    def _activate_group(
        self,
        compiled: _CompiledGroup,
        translation: CompiledTableTrigger,
        pairs,
        batch_seen: set | None = None,
        probe_cache: dict | None = None,
    ) -> None:
        # The registry itself is the name -> spec index: trigger names are
        # globally unique, and a concurrently dropped trigger is absent from
        # it (the per-activation guard below).  Building a per-group dict
        # here would cost O(group size) per firing.
        spec_by_name = self._triggers
        condition = compiled.condition
        arguments = compiled.arguments
        matcher = compiled.matcher() if self.use_matching_indexes else None
        constants_rows = compiled.constants_rows() if matcher is None else []
        stats = self.match_stats
        for pair in pairs:
            variables = {"OLD_NODE": pair.old_node, "NEW_NODE": pair.new_node}
            if matcher is not None:
                rows, check_condition = matcher.candidates(
                    variables, stats, shared_probe_cache=probe_cache
                )
            else:
                rows, check_condition = constants_rows, condition is not None
            for row in rows:
                if check_condition and condition is not None and not condition.as_boolean(
                    variables, parameters=row.condition_constants
                ):
                    continue
                for trigger_name in row.trigger_names:
                    spec = spec_by_name.get(trigger_name)
                    if spec is None:  # dropped concurrently
                        continue
                    if batch_seen is not None:
                        # A node undergoes at most one net transition per
                        # batch; a second slice rediscovering it is a dup.
                        # The set lives on the batch's TriggerContext, so
                        # direct Database.execute_many calls dedupe too.
                        seen_key = (spec.name, spec.event.value, pair.key)
                        if seen_key in batch_seen:
                            continue
                        batch_seen.add(seen_key)
                    call = self.activator.activate(
                        spec,
                        pair.old_node,
                        pair.new_node,
                        key=pair.key,
                        compiled_args=arguments,
                        argument_parameters=row.argument_constants,
                    )
                    fired = FiredTrigger(
                        trigger=spec.name,
                        view=spec.view,
                        path=spec.path,
                        event=spec.event,
                        key=pair.key,
                        old_node=pair.old_node,
                        new_node=pair.new_node,
                        action_call=call,
                    )
                    self._fired.append(fired)
                    for listener in self._listeners:
                        listener(fired)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ActiveViewService(mode={self.mode.value}, views={len(self._views)}, "
            f"triggers={len(self._triggers)}, groups={len(self._groups)})"
        )
