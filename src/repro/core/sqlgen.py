"""Rendering generated trigger plans as SQL text (Figure 16 of the paper).

The executable form of a translated trigger in this system is an XQGM plan
evaluated by the relational engine.  For inspection, documentation, and the
Figure 16 reproduction, this module renders such a plan as a readable SQL
statement-level trigger: one common-table expression per operator, XML
construction shown with the SQL/XML ``XMLELEMENT`` / ``XMLAGG`` functions
(as DB2 would), transition tables referenced as ``INSERTED`` / ``DELETED``,
and the pre-update table as the ``(B EXCEPT ΔB) UNION ∇B`` derived table.

The rendering is faithful to the plan's structure; it is meant for humans
(and golden-file tests), not for round-tripping through a SQL parser.
"""

from __future__ import annotations

from typing import Iterable

from repro.relational.triggers import TriggerEvent
from repro.xqgm.expressions import (
    AggregateSpec,
    Arithmetic,
    AttributeSpec,
    BooleanExpr,
    ColumnRef,
    Comparison,
    Constant,
    ElementConstructor,
    Expression,
    IsNull,
    Parameter,
    TextConstructor,
)
from repro.xqgm.graph import walk
from repro.xqgm.operators import (
    ConstantsOp,
    GroupByOp,
    JoinKind,
    JoinOp,
    Operator,
    ProjectOp,
    SelectOp,
    TableOp,
    TableVariant,
    UnionOp,
    UnnestOp,
)

__all__ = ["render_sql_trigger", "render_plan_sql", "render_expression"]


def _identifier(name: str) -> str:
    """Render a column name as a SQL identifier (quote qualified names)."""
    if name.replace("_", "").isalnum() and not name[0].isdigit():
        return name
    return '"' + name.replace('"', '""') + '"'


def render_expression(expression: Expression) -> str:
    """Render a tuple-level expression as SQL text."""
    if isinstance(expression, ColumnRef):
        return _identifier(expression.name)
    if isinstance(expression, Constant):
        value = expression.value
        if value is None:
            return "NULL"
        if isinstance(value, bool):
            return "TRUE" if value else "FALSE"
        if isinstance(value, (int, float)):
            return repr(value)
        return "'" + str(value).replace("'", "''") + "'"
    if isinstance(expression, Parameter):
        return f":{expression.name}"
    if isinstance(expression, Comparison):
        return (
            f"({render_expression(expression.left)} {expression.op} "
            f"{render_expression(expression.right)})"
        )
    if isinstance(expression, Arithmetic):
        return (
            f"({render_expression(expression.left)} {expression.op} "
            f"{render_expression(expression.right)})"
        )
    if isinstance(expression, BooleanExpr):
        if expression.op == "not":
            return f"(NOT {render_expression(expression.operands[0])})"
        joiner = f" {expression.op.upper()} "
        return "(" + joiner.join(render_expression(o) for o in expression.operands) + ")"
    if isinstance(expression, IsNull):
        suffix = "IS NOT NULL" if expression.negate else "IS NULL"
        return f"({render_expression(expression.operand)} {suffix})"
    if isinstance(expression, ElementConstructor):
        parts = [f"NAME \"{expression.name}\""]
        if expression.attributes:
            attributes = ", ".join(
                f"{render_expression(a.value)} AS \"{a.name}\"" for a in expression.attributes
            )
            parts.append(f"XMLATTRIBUTES({attributes})")
        labels = expression.child_labels or (None,) * len(expression.children)
        for label, child in zip(labels, expression.children):
            rendered = render_expression(child)
            if label is not None:
                rendered = f"XMLELEMENT(NAME \"{label}\", {rendered})"
            parts.append(rendered)
        return "XMLELEMENT(" + ", ".join(parts) + ")"
    if isinstance(expression, TextConstructor):
        return f"XMLTEXT({render_expression(expression.value)})"
    # Fall back to the expression's own string form (e.g. NodesDiffer).
    return str(expression)


def _render_aggregate(aggregate: AggregateSpec) -> str:
    if aggregate.func == "count":
        argument = "*" if aggregate.argument is None else render_expression(aggregate.argument)
        return f"COUNT({argument}) AS {_identifier(aggregate.name)}"
    if aggregate.func == "xmlfrag":
        return f"XMLAGG({render_expression(aggregate.argument)}) AS {_identifier(aggregate.name)}"
    return f"{aggregate.func.upper()}({render_expression(aggregate.argument)}) AS {_identifier(aggregate.name)}"


_VARIANT_SQL = {
    TableVariant.CURRENT: "{table}",
    TableVariant.OLD: "(SELECT * FROM {table} EXCEPT SELECT * FROM INSERTED UNION SELECT * FROM DELETED)",
    TableVariant.DELTA_INSERTED: "INSERTED",
    TableVariant.DELTA_DELETED: "DELETED",
    TableVariant.PRUNED_INSERTED: "(SELECT * FROM INSERTED EXCEPT ALL SELECT * FROM DELETED)",
    TableVariant.PRUNED_DELETED: "(SELECT * FROM DELETED EXCEPT ALL SELECT * FROM INSERTED)",
}


class _Renderer:
    def __init__(self) -> None:
        self.cte_lines: list[str] = []
        self.names: dict[int, str] = {}
        self.counter = 0

    def name_for(self, op: Operator) -> str:
        if op.id not in self.names:
            self.counter += 1
            label = (op.label or op.kind).replace("[", "_").replace("]", "").replace("-", "_")
            label = "".join(ch if (ch.isalnum() or ch == "_") else "_" for ch in label)
            self.names[op.id] = f"q{self.counter}_{label}"
        return self.names[op.id]

    # -- operator rendering -------------------------------------------------------

    def render(self, op: Operator) -> str:
        """Render the subplan rooted at ``op``; returns its CTE name."""
        if op.id in self.names:
            return self.names[op.id]
        input_names = [self.render(input_op) for input_op in op.inputs]
        name = self.name_for(op)
        body = self._body(op, input_names)
        self.cte_lines.append(f"{name} AS (\n{_indent(body, 2)}\n)")
        return name

    def _body(self, op: Operator, inputs: list[str]) -> str:
        if isinstance(op, TableOp):
            source = _VARIANT_SQL[op.variant].format(table=op.table)
            columns = ", ".join(
                f"{op.alias}.{column} AS {_identifier(op.qualified(column))}" for column in op.columns
            )
            return f"SELECT {columns}\nFROM {source} AS {op.alias}"
        if isinstance(op, ConstantsOp):
            columns = ", ".join(_identifier(column) for column in op.output_columns)
            return f"SELECT {columns}\nFROM {op.name}"
        if isinstance(op, SelectOp):
            return (
                f"SELECT *\nFROM {inputs[0]}\nWHERE {render_expression(op.predicate)}"
            )
        if isinstance(op, ProjectOp):
            columns = ",\n       ".join(
                f"{render_expression(expression)} AS {_identifier(name)}"
                for name, expression in op.projections
            )
            return f"SELECT {columns}\nFROM {inputs[0]}"
        if isinstance(op, JoinOp):
            return self._join_body(op, inputs)
        if isinstance(op, GroupByOp):
            select_items = [f"{_identifier(column)}" for column in op.grouping]
            select_items += [_render_aggregate(aggregate) for aggregate in op.aggregates]
            body = f"SELECT {', '.join(select_items) if select_items else '1'}\nFROM {inputs[0]}"
            if op.grouping:
                body += f"\nGROUP BY {', '.join(_identifier(c) for c in op.grouping)}"
            return body
        if isinstance(op, UnionOp):
            keyword = "UNION ALL" if op.all else "UNION"
            selects = []
            for input_name, mapping in zip(inputs, op.mappings):
                columns = ", ".join(
                    f"{_identifier(mapping[column])} AS {_identifier(column)}"
                    for column in op.output_columns
                )
                selects.append(f"SELECT {columns} FROM {input_name}")
            return f"\n{keyword}\n".join(selects)
        if isinstance(op, UnnestOp):
            return (
                f"SELECT {inputs[0]}.*, item.value AS {_identifier(op.item_column)}\n"
                f"FROM {inputs[0]}, XMLTABLE({_identifier(op.source_column)}) AS item"
            )
        return f"SELECT * FROM {inputs[0] if inputs else 'VALUES(1)'}"  # pragma: no cover

    def _join_body(self, op: JoinOp, inputs: list[str]) -> str:
        conditions = [f"{_identifier(a)} = {_identifier(b)}" for a, b in op.equi_pairs]
        if op.condition is not None:
            conditions.append(render_expression(op.condition))
        condition_text = " AND ".join(conditions) if conditions else "1 = 1"
        if op.join_kind is JoinKind.INNER:
            return f"SELECT *\nFROM {', '.join(inputs)}\nWHERE {condition_text}"
        if op.join_kind is JoinKind.LEFT_OUTER:
            return (
                f"SELECT *\nFROM {inputs[0]} LEFT OUTER JOIN {inputs[1]}\n  ON {condition_text}"
            )
        # Anti join
        return (
            f"SELECT *\nFROM {inputs[0]}\nWHERE NOT EXISTS (SELECT 1 FROM {inputs[1]} "
            f"WHERE {condition_text})"
        )


def _indent(text: str, spaces: int) -> str:
    pad = " " * spaces
    return "\n".join(pad + line for line in text.splitlines())


def render_plan_sql(top: Operator, final_columns: Iterable[str] | None = None) -> str:
    """Render a plan as ``WITH ... SELECT`` text."""
    renderer = _Renderer()
    final_name = renderer.render(top)
    columns = ", ".join(_identifier(c) for c in (final_columns or top.output_columns))
    with_clause = ",\n".join(renderer.cte_lines)
    return f"WITH {with_clause}\nSELECT {columns}\nFROM {final_name}"


def render_sql_trigger(
    name: str,
    table: str,
    events: Iterable[TriggerEvent],
    top: Operator,
    final_columns: Iterable[str] | None = None,
    order_by: Iterable[str] | None = None,
    action_comment: str | None = None,
) -> str:
    """Render a full ``CREATE TRIGGER`` statement in the style of Figure 16."""
    events = list(events)
    event_text = " OR ".join(sorted(event.value for event in events))
    body = render_plan_sql(top, final_columns)
    if order_by:
        body += f"\nORDER BY {', '.join(_identifier(c) for c in order_by)}"
    lines = [
        f"CREATE TRIGGER {name}",
        f"AFTER {event_text} ON {table.upper()}",
        "REFERENCING OLD_TABLE AS DELETED, NEW_TABLE AS INSERTED",
        "FOR EACH STATEMENT",
        "",
    ]
    if action_comment:
        lines.append(f"-- {action_comment}")
    lines.append(body)
    return "\n".join(lines)
