"""Rendering generated trigger plans as SQL (Figure 16 of the paper).

The executable form of a translated trigger in this system is an XQGM plan
evaluated by the relational engine.  This module renders such a plan as SQL
text, in one of two *dialects*:

``readable`` (the default)
    The Figure 16 reproduction: one common-table expression per operator,
    XML construction shown with the SQL/XML ``XMLELEMENT`` / ``XMLAGG``
    functions (as DB2 would), transition tables referenced as ``INSERTED``
    / ``DELETED``, and the pre-update table as the ``(B EXCEPT ΔB) UNION
    ∇B`` derived table.  This rendering is faithful to the plan's structure
    but meant for humans (and golden-file tests), not for execution.

``sqlite`` (via :func:`lower_plan_for_sqlite`)
    An *executable* lowering targeted at SQLite, used by the SQLite
    execution backend (:mod:`repro.backends.sqlite`).  The plan becomes a
    single ``WITH ... SELECT`` statement:

    * transition tables are read from per-firing temp tables (the backend
      materializes the net coalesced deltas under the
      :func:`transition_table_name` names before running the statement);
    * the pre-update table ``B_old`` is reconstructed by primary key,
      ``(B WHERE pk NOT IN ΔB) UNION ALL ∇B`` — exactly the semantics of
      :meth:`repro.relational.triggers.TriggerContext.old_table_rows`;
    * XML construction has no SQL/XML functions in SQLite, so constructed
      nodes travel as **JSON construction trees** built with the ``json1``
      functions (``json_array`` / ``json_object`` / ``json_group_array``);
      a Python-side finishing pass (:func:`repro.backends.sqlite.finish_node`)
      re-assembles real :class:`~repro.xmlmodel.node.Element` /
      :class:`~repro.xmlmodel.node.Fragment` values from the JSON, sorting
      ``aggXMLFrag`` items by their embedded order keys;
    * join equi-pairs use the NULL-safe ``IS`` comparison, matching the
      interpreter's hash joins (where ``NULL`` keys compare equal).

    Constructs the dialect cannot express faithfully (``Unnest``,
    constants-table scans, parameters, ``B_old`` of a keyless table, ...)
    raise :class:`SqlLoweringError`; the caller falls back to the in-memory
    engines, which remain the oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import ReproError
from repro.relational.schema import TableSchema
from repro.relational.triggers import TriggerEvent
from repro.xqgm.expressions import (
    AggregateSpec,
    Arithmetic,
    BooleanExpr,
    ColumnRef,
    Comparison,
    Constant,
    ElementConstructor,
    Expression,
    IsNull,
    Parameter,
    TextConstructor,
)
from repro.xqgm.operators import (
    ConstantsOp,
    GroupByOp,
    JoinKind,
    JoinOp,
    Operator,
    ProjectOp,
    SelectOp,
    TableOp,
    TableVariant,
    UnionOp,
    UnnestOp,
)

__all__ = [
    "render_sql_trigger",
    "render_plan_sql",
    "render_expression",
    "SqlLoweringError",
    "LoweredSqlitePlan",
    "lower_plan_for_sqlite",
    "transition_table_name",
]


class SqlLoweringError(ReproError):
    """The plan uses a construct the target SQL dialect cannot express.

    Raised only by the *executable* lowerings; the readable dialect always
    succeeds.  Callers treat this as "fall back to the in-memory engines".
    """


#: Transition-table variants that are materialized as temp tables.
_TRANSITION_VARIANTS = frozenset(
    {
        TableVariant.DELTA_INSERTED,
        TableVariant.DELTA_DELETED,
        TableVariant.PRUNED_INSERTED,
        TableVariant.PRUNED_DELETED,
    }
)


def transition_table_name(table: str, variant: TableVariant) -> str:
    """Temp-table name under which the execution backend materializes one of
    ``table``'s net transition tables before running a lowered statement.
    Names are per base table so one connection can host every trigger."""
    return f"__trg_{table}_{variant.value}"


def _identifier(name: str) -> str:
    """Render a column name as a SQL identifier (quote qualified names)."""
    if name.replace("_", "").isalnum() and not name[0].isdigit():
        return name
    return '"' + name.replace('"', '""') + '"'


def _quoted(name: str) -> str:
    """Always-quoted identifier (executable dialect: never collides with keywords)."""
    return '"' + name.replace('"', '""') + '"'


def _string_literal(value: str) -> str:
    return "'" + value.replace("'", "''") + "'"


# ---------------------------------------------------------------------------
# Readable (DB2-flavored) expression rendering — the Figure 16 style
# ---------------------------------------------------------------------------


def render_expression(expression: Expression) -> str:
    """Render a tuple-level expression as (readable) SQL text."""
    if isinstance(expression, ColumnRef):
        return _identifier(expression.name)
    if isinstance(expression, Constant):
        value = expression.value
        if value is None:
            return "NULL"
        if isinstance(value, bool):
            return "TRUE" if value else "FALSE"
        if isinstance(value, (int, float)):
            return repr(value)
        return "'" + str(value).replace("'", "''") + "'"
    if isinstance(expression, Parameter):
        return f":{expression.name}"
    if isinstance(expression, Comparison):
        return (
            f"({render_expression(expression.left)} {expression.op} "
            f"{render_expression(expression.right)})"
        )
    if isinstance(expression, Arithmetic):
        return (
            f"({render_expression(expression.left)} {expression.op} "
            f"{render_expression(expression.right)})"
        )
    if isinstance(expression, BooleanExpr):
        if expression.op == "not":
            return f"(NOT {render_expression(expression.operands[0])})"
        joiner = f" {expression.op.upper()} "
        return "(" + joiner.join(render_expression(o) for o in expression.operands) + ")"
    if isinstance(expression, IsNull):
        suffix = "IS NOT NULL" if expression.negate else "IS NULL"
        return f"({render_expression(expression.operand)} {suffix})"
    if isinstance(expression, ElementConstructor):
        parts = [f"NAME \"{expression.name}\""]
        if expression.attributes:
            attributes = ", ".join(
                f"{render_expression(a.value)} AS \"{a.name}\"" for a in expression.attributes
            )
            parts.append(f"XMLATTRIBUTES({attributes})")
        labels = expression.child_labels or (None,) * len(expression.children)
        for label, child in zip(labels, expression.children):
            rendered = render_expression(child)
            if label is not None:
                rendered = f"XMLELEMENT(NAME \"{label}\", {rendered})"
            parts.append(rendered)
        return "XMLELEMENT(" + ", ".join(parts) + ")"
    if isinstance(expression, TextConstructor):
        return f"XMLTEXT({render_expression(expression.value)})"
    # Fall back to the expression's own string form (e.g. NodesDiffer).
    return str(expression)


def _render_aggregate(aggregate: AggregateSpec) -> str:
    if aggregate.func == "count":
        argument = "*" if aggregate.argument is None else render_expression(aggregate.argument)
        return f"COUNT({argument}) AS {_identifier(aggregate.name)}"
    if aggregate.func == "xmlfrag":
        return f"XMLAGG({render_expression(aggregate.argument)}) AS {_identifier(aggregate.name)}"
    return f"{aggregate.func.upper()}({render_expression(aggregate.argument)}) AS {_identifier(aggregate.name)}"


_VARIANT_SQL = {
    TableVariant.CURRENT: "{table}",
    TableVariant.OLD: "(SELECT * FROM {table} EXCEPT SELECT * FROM INSERTED UNION SELECT * FROM DELETED)",
    TableVariant.DELTA_INSERTED: "INSERTED",
    TableVariant.DELTA_DELETED: "DELETED",
    TableVariant.PRUNED_INSERTED: "(SELECT * FROM INSERTED EXCEPT ALL SELECT * FROM DELETED)",
    TableVariant.PRUNED_DELETED: "(SELECT * FROM DELETED EXCEPT ALL SELECT * FROM INSERTED)",
}


class _Renderer:
    """Readable-dialect CTE renderer (one CTE per operator, DB2 flavor)."""

    def __init__(self) -> None:
        self.cte_lines: list[str] = []
        self.names: dict[int, str] = {}
        self.counter = 0

    def name_for(self, op: Operator) -> str:
        if op.id not in self.names:
            self.counter += 1
            label = (op.label or op.kind).replace("[", "_").replace("]", "").replace("-", "_")
            label = "".join(ch if (ch.isalnum() or ch == "_") else "_" for ch in label)
            self.names[op.id] = f"q{self.counter}_{label}"
        return self.names[op.id]

    # -- operator rendering -------------------------------------------------------

    def render(self, op: Operator) -> str:
        """Render the subplan rooted at ``op``; returns its CTE name."""
        if op.id in self.names:
            return self.names[op.id]
        input_names = [self.render(input_op) for input_op in op.inputs]
        name = self.name_for(op)
        body = self._body(op, input_names)
        self.cte_lines.append(f"{name} AS (\n{_indent(body, 2)}\n)")
        return name

    def _body(self, op: Operator, inputs: list[str]) -> str:
        if isinstance(op, TableOp):
            source = _VARIANT_SQL[op.variant].format(table=op.table)
            columns = ", ".join(
                f"{op.alias}.{column} AS {_identifier(op.qualified(column))}" for column in op.columns
            )
            return f"SELECT {columns}\nFROM {source} AS {op.alias}"
        if isinstance(op, ConstantsOp):
            columns = ", ".join(_identifier(column) for column in op.output_columns)
            return f"SELECT {columns}\nFROM {op.name}"
        if isinstance(op, SelectOp):
            return (
                f"SELECT *\nFROM {inputs[0]}\nWHERE {render_expression(op.predicate)}"
            )
        if isinstance(op, ProjectOp):
            columns = ",\n       ".join(
                f"{render_expression(expression)} AS {_identifier(name)}"
                for name, expression in op.projections
            )
            return f"SELECT {columns}\nFROM {inputs[0]}"
        if isinstance(op, JoinOp):
            return self._join_body(op, inputs)
        if isinstance(op, GroupByOp):
            select_items = [f"{_identifier(column)}" for column in op.grouping]
            select_items += [_render_aggregate(aggregate) for aggregate in op.aggregates]
            body = f"SELECT {', '.join(select_items) if select_items else '1'}\nFROM {inputs[0]}"
            if op.grouping:
                body += f"\nGROUP BY {', '.join(_identifier(c) for c in op.grouping)}"
            return body
        if isinstance(op, UnionOp):
            keyword = "UNION ALL" if op.all else "UNION"
            selects = []
            for input_name, mapping in zip(inputs, op.mappings):
                columns = ", ".join(
                    f"{_identifier(mapping[column])} AS {_identifier(column)}"
                    for column in op.output_columns
                )
                selects.append(f"SELECT {columns} FROM {input_name}")
            return f"\n{keyword}\n".join(selects)
        if isinstance(op, UnnestOp):
            return (
                f"SELECT {inputs[0]}.*, item.value AS {_identifier(op.item_column)}\n"
                f"FROM {inputs[0]}, XMLTABLE({_identifier(op.source_column)}) AS item"
            )
        return f"SELECT * FROM {inputs[0] if inputs else 'VALUES(1)'}"  # pragma: no cover

    def _join_body(self, op: JoinOp, inputs: list[str]) -> str:
        conditions = [f"{_identifier(a)} = {_identifier(b)}" for a, b in op.equi_pairs]
        if op.condition is not None:
            conditions.append(render_expression(op.condition))
        condition_text = " AND ".join(conditions) if conditions else "1 = 1"
        if op.join_kind is JoinKind.INNER:
            return f"SELECT *\nFROM {', '.join(inputs)}\nWHERE {condition_text}"
        if op.join_kind is JoinKind.LEFT_OUTER:
            return (
                f"SELECT *\nFROM {inputs[0]} LEFT OUTER JOIN {inputs[1]}\n  ON {condition_text}"
            )
        # Anti join
        return (
            f"SELECT *\nFROM {inputs[0]}\nWHERE NOT EXISTS (SELECT 1 FROM {inputs[1]} "
            f"WHERE {condition_text})"
        )


def _indent(text: str, spaces: int) -> str:
    pad = " " * spaces
    return "\n".join(pad + line for line in text.splitlines())


# ---------------------------------------------------------------------------
# Executable SQLite lowering
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LoweredSqlitePlan:
    """One trigger plan lowered to an executable SQLite statement.

    ``sql`` is a complete ``WITH ... SELECT`` whose result columns are the
    requested final columns in order.  Columns named in ``node_columns``
    carry JSON construction trees (finish with
    :func:`repro.backends.sqlite.finish_node`); every other column is a
    plain scalar.  Before executing, the backend must materialize each
    variant in ``required_variants`` as a temp table named per
    :data:`TRANSITION_TABLE_NAMES`, holding the firing's **net** transition
    rows in the trigger table's column order.
    """

    table: str
    sql: str
    final_columns: tuple[str, ...]
    node_columns: frozenset[str]
    required_variants: frozenset[TableVariant]


class _SqliteExpr:
    """Expression lowering for the SQLite dialect.

    ``node_columns`` is the set of input columns holding JSON construction
    trees; referencing one from a scalar context (arithmetic, comparisons,
    non-``xmlfrag`` aggregates other than ``count``) cannot reproduce the
    interpreter's atomization semantics and raises :class:`SqlLoweringError`.
    """

    def __init__(self, node_columns: frozenset[str]) -> None:
        self.node_columns = node_columns

    # -- scalar / node dispatch -------------------------------------------------

    def value(self, expression: Expression) -> tuple[str, bool]:
        """Lower an expression; returns ``(sql, is_node)``."""
        if self.is_node(expression):
            return self.node(expression), True
        return self.scalar(expression), False

    def is_node(self, expression: Expression) -> bool:
        if isinstance(expression, (ElementConstructor, TextConstructor)):
            return True
        if isinstance(expression, ColumnRef):
            return expression.name in self.node_columns
        return False

    # -- scalars ----------------------------------------------------------------

    def scalar(self, expression: Expression) -> str:
        if isinstance(expression, ColumnRef):
            if expression.name in self.node_columns:
                raise SqlLoweringError(
                    f"column {expression.name!r} holds constructed XML; SQLite "
                    "cannot atomize it inside a scalar expression"
                )
            return _quoted(expression.name)
        if isinstance(expression, Constant):
            value = expression.value
            if value is None:
                return "NULL"
            if isinstance(value, bool):
                return "1" if value else "0"
            if isinstance(value, int):
                return repr(value)
            if isinstance(value, float):
                if value != value or value in (float("inf"), float("-inf")):
                    raise SqlLoweringError(f"non-finite constant {value!r}")
                return repr(value)
            if isinstance(value, str):
                return _string_literal(value)
            raise SqlLoweringError(f"unsupported constant {value!r}")
        if isinstance(expression, Parameter):
            raise SqlLoweringError(
                f"parameter :{expression.name} — generated trigger statements "
                "bind no parameters at firing time"
            )
        if isinstance(expression, Comparison):
            op = "<>" if expression.op == "!=" else expression.op
            return f"({self.scalar(expression.left)} {op} {self.scalar(expression.right)})"
        if isinstance(expression, Arithmetic):
            left = self.scalar(expression.left)
            right = self.scalar(expression.right)
            if expression.op == "/":
                # Python "/" is true division; SQLite "/" truncates on integers.
                # (Division by zero still diverges: the interpreter raises,
                # SQLite yields NULL — documented in docs/backends.md.)
                return f"(CAST({left} AS REAL) / {right})"
            if expression.op == "%":
                # SQLite "%" is a truncated remainder; Python's is floored
                # (-7 % 3 is 2 in Python, -1 in SQLite).  Inexpressible
                # faithfully, so refuse and let the caller fall back.
                raise SqlLoweringError(
                    "'%' has truncated-remainder semantics on SQLite but "
                    "floored semantics in the interpreter"
                )
            if expression.op == "+":
                # Python "+" concatenates two strings; SQLite "+" coerces
                # text to 0.  Mirror the common cases: concatenate when both
                # operands are text at runtime, add numerically otherwise.
                return (
                    f"(CASE WHEN typeof({left}) = 'text' AND typeof({right}) = 'text' "
                    f"THEN {left} || {right} ELSE {left} + {right} END)"
                )
            if expression.op not in ("-", "*"):
                raise SqlLoweringError(f"arithmetic operator {expression.op!r}")
            return f"({left} {expression.op} {right})"
        if isinstance(expression, BooleanExpr):
            if expression.op == "not":
                return f"(NOT {self.scalar(expression.operands[0])})"
            if expression.op not in ("and", "or"):
                raise SqlLoweringError(f"boolean operator {expression.op!r}")
            joiner = f" {expression.op.upper()} "
            return "(" + joiner.join(self.scalar(o) for o in expression.operands) + ")"
        if isinstance(expression, IsNull):
            suffix = "IS NOT NULL" if expression.negate else "IS NULL"
            return f"({self.scalar(expression.operand)} {suffix})"
        # NodesDiffer compares two constructed-node columns for deep
        # inequality.  The JSON construction trees are canonical (the same
        # constructor over equal inputs emits identical text), so NULL-safe
        # text inequality is an exact translation.  Imported lazily: the
        # affected-nodes module is higher in the layering than this one.
        from repro.core.affected_nodes import NodesDiffer

        if isinstance(expression, NodesDiffer):
            return f"({_quoted(expression.left)} IS NOT {_quoted(expression.right)})"
        raise SqlLoweringError(f"unsupported expression {type(expression).__name__}")

    # -- node construction -------------------------------------------------------

    @staticmethod
    def _json_scalar(sql: str) -> str:
        """Wrap a scalar headed into a JSON tree so REALs survive losslessly.

        SQLite's JSON functions render reals at 15 significant digits, which
        is lossy (Python's ``repr`` is shortest-round-trip); a value whose
        runtime type is ``real`` is therefore embedded as
        ``["r", printf('%!.17g', v)]`` — 17 significant digits (the ``!``
        flag keeps them all) round-trip IEEE-754 exactly — and the finishing
        pass converts it back to a float before formatting.  Other types
        embed natively.
        """
        return (
            f"CASE WHEN typeof({sql}) = 'real' "
            f"THEN json_array('r', printf('%!.17g', {sql})) ELSE {sql} END"
        )

    def node(self, expression: Expression) -> str:
        """Lower a node-valued expression to SQL producing a JSON tree."""
        if isinstance(expression, ColumnRef):
            return _quoted(expression.name)
        if isinstance(expression, TextConstructor):
            return f"json_array('t', {self._json_scalar(self.scalar(expression.value))})"
        if isinstance(expression, ElementConstructor):
            return self._element(expression)
        raise SqlLoweringError(f"{type(expression).__name__} is not node-valued")

    def _element(self, expression: ElementConstructor) -> str:
        parts = ["'e'", _string_literal(expression.name), self._attributes(expression)]
        if expression.child_labels and len(expression.child_labels) == len(expression.children):
            labels: Iterable[str | None] = expression.child_labels
        else:
            labels = [None] * len(expression.children)
        for label, child in zip(labels, expression.children):
            child_sql, child_is_node = self.value(child)
            child_json = (
                f"json({child_sql})" if child_is_node else self._json_scalar(child_sql)
            )
            if label is None:
                # NULL children are skipped by the finishing pass, matching
                # the interpreter's constructor.
                parts.append(child_json)
            else:
                empty = f"json_array('e', {_string_literal(label)}, json_object())"
                wrapped = f"json_array('e', {_string_literal(label)}, json_object(), {child_json})"
                parts.append(
                    f"CASE WHEN {child_sql} IS NULL THEN {empty} ELSE {wrapped} END"
                )
        return f"json_array({', '.join(parts)})"

    def _attributes(self, expression: ElementConstructor) -> str:
        if not expression.attributes:
            return "json_object()"
        items: list[str] = []
        for attribute in expression.attributes:
            items.append(_string_literal(attribute.name))
            items.append(self._json_scalar(self.scalar(attribute.value)))
        return f"json_object({', '.join(items)})"

    # -- aggregates ---------------------------------------------------------------

    def aggregate(self, aggregate: AggregateSpec, order_columns: tuple[str, ...]) -> tuple[str, bool]:
        """Lower one GroupBy aggregate; returns ``(sql, is_node)``."""
        if aggregate.func == "count":
            if aggregate.argument is None:
                return "COUNT(*)", False
            if isinstance(aggregate.argument, ColumnRef):
                # COUNT(col) counts non-NULL values — works for node columns
                # too (their JSON text is non-NULL exactly when the node is).
                return f"COUNT({_quoted(aggregate.argument.name)})", False
            return f"COUNT({self.scalar(aggregate.argument)})", False
        if aggregate.func == "xmlfrag":
            if not order_columns:
                raise SqlLoweringError(
                    "aggXMLFrag without order_within_group depends on input "
                    "encounter order, which SQL aggregation cannot reproduce"
                )
            argument_sql, is_node = self.value(aggregate.argument)
            item = f"json({argument_sql})" if is_node else self._json_scalar(argument_sql)
            keys = ", ".join(
                self._json_scalar(_quoted(column)) for column in order_columns
            )
            return (
                f"json_array('f', {len(order_columns)}, "
                f"json_group_array(json_array({keys}, {item})) "
                f"FILTER (WHERE {argument_sql} IS NOT NULL))",
                True,
            )
        if aggregate.func not in ("sum", "min", "max", "avg"):
            raise SqlLoweringError(f"aggregate {aggregate.func!r}")
        return f"{aggregate.func.upper()}({self.scalar(aggregate.argument)})", False


class _SqliteRenderer:
    """Executable-dialect CTE renderer.

    Tracks, per operator, which output columns are node-valued (carry JSON
    construction trees) so expression lowering knows when to embed a column
    with ``json(...)`` versus as a plain scalar, and records which
    transition-table variants the plan reads.
    """

    def __init__(self, table: str, catalog: Mapping[str, TableSchema]) -> None:
        self.table = table
        self.catalog = catalog
        self.cte_lines: list[str] = []
        self.names: dict[int, str] = {}
        self.node_columns: dict[int, frozenset[str]] = {}
        self.required_variants: set[TableVariant] = set()
        self.counter = 0

    def name_for(self, op: Operator) -> str:
        if op.id not in self.names:
            self.counter += 1
            label = (op.label or op.kind).replace("[", "_").replace("]", "").replace("-", "_")
            label = "".join(ch if (ch.isalnum() or ch == "_") else "_" for ch in label)
            self.names[op.id] = f"q{self.counter}_{label}"
        return self.names[op.id]

    def render(self, op: Operator) -> str:
        if op.id in self.names:
            return self.names[op.id]
        input_names = [self.render(input_op) for input_op in op.inputs]
        name = self.name_for(op)
        body, nodes = self._body(op, input_names)
        self.node_columns[op.id] = nodes
        self.cte_lines.append(f"{name} AS (\n{_indent(body, 2)}\n)")
        return name

    def _input_nodes(self, op: Operator) -> frozenset[str]:
        merged: set[str] = set()
        for input_op in op.inputs:
            merged |= self.node_columns[input_op.id]
        return frozenset(merged)

    # -- operators ----------------------------------------------------------------

    def _body(self, op: Operator, inputs: list[str]) -> tuple[str, frozenset[str]]:
        if isinstance(op, TableOp):
            return self._table_body(op)
        if isinstance(op, SelectOp):
            nodes = self.node_columns[op.input.id]
            expr = _SqliteExpr(nodes)
            predicate = expr.scalar(op.predicate)
            return f"SELECT *\nFROM {inputs[0]}\nWHERE {predicate}", nodes
        if isinstance(op, ProjectOp):
            return self._project_body(op, inputs)
        if isinstance(op, JoinOp):
            return self._join_body(op, inputs)
        if isinstance(op, GroupByOp):
            return self._groupby_body(op, inputs)
        if isinstance(op, UnionOp):
            return self._union_body(op, inputs)
        raise SqlLoweringError(f"operator {op.kind} has no SQLite lowering")

    def _table_body(self, op: TableOp) -> tuple[str, frozenset[str]]:
        if op.columns is None:
            schema = self.catalog.get(op.table)
            if schema is None:
                raise SqlLoweringError(f"unknown table {op.table!r}")
            op.bind_schema(schema.column_names)
        columns = ", ".join(
            f"{_quoted(op.alias)}.{_quoted(column)} AS {_quoted(op.qualified(column))}"
            for column in op.columns
        )
        variant = op.variant
        if variant is TableVariant.CURRENT:
            source = _quoted(op.table)
        elif variant in _TRANSITION_VARIANTS:
            if op.table != self.table:
                # A delta scan of a table other than the trigger table is
                # empty by definition; the translation never builds one.
                raise SqlLoweringError(
                    f"delta scan of {op.table!r} inside a trigger on {self.table!r}"
                )
            self.required_variants.add(variant)
            source = _quoted(transition_table_name(op.table, variant))
        elif variant is TableVariant.OLD:
            source = self._old_table_source(op)
        else:  # pragma: no cover - defensive (enum is closed)
            raise SqlLoweringError(f"table variant {variant!r}")
        return f"SELECT {columns}\nFROM {source} AS {_quoted(op.alias)}", frozenset()

    def _old_table_source(self, op: TableOp) -> str:
        if op.table != self.table:
            # An untouched table's pre-statement state equals its current one.
            return _quoted(op.table)
        schema = self.catalog.get(op.table)
        if schema is None or not schema.primary_key:
            raise SqlLoweringError(
                f"B_old of {op.table!r} needs a primary key to undo the delta"
            )
        self.required_variants.add(TableVariant.DELTA_INSERTED)
        self.required_variants.add(TableVariant.DELTA_DELETED)
        key = ", ".join(_quoted(column) for column in schema.primary_key)
        inserted = _quoted(transition_table_name(op.table, TableVariant.DELTA_INSERTED))
        deleted = _quoted(transition_table_name(op.table, TableVariant.DELTA_DELETED))
        return (
            f"(SELECT * FROM {_quoted(op.table)} "
            f"WHERE ({key}) NOT IN (SELECT {key} FROM {inserted})\n"
            f"   UNION ALL SELECT * FROM {deleted})"
        )

    def _project_body(self, op: ProjectOp, inputs: list[str]) -> tuple[str, frozenset[str]]:
        expr = _SqliteExpr(self.node_columns[op.input.id])
        rendered: list[str] = []
        nodes: set[str] = set()
        for name, expression in op.projections:
            sql, is_node = expr.value(expression)
            if is_node:
                nodes.add(name)
            rendered.append(f"{sql} AS {_quoted(name)}")
        columns = ",\n       ".join(rendered)
        return f"SELECT {columns}\nFROM {inputs[0]}", frozenset(nodes)

    def _groupby_body(self, op: GroupByOp, inputs: list[str]) -> tuple[str, frozenset[str]]:
        input_nodes = self.node_columns[op.input.id]
        expr = _SqliteExpr(input_nodes)
        items = [_quoted(column) for column in op.grouping]
        nodes = {column for column in op.grouping if column in input_nodes}
        for aggregate in op.aggregates:
            sql, is_node = expr.aggregate(aggregate, op.order_within_group)
            if is_node:
                nodes.add(aggregate.name)
            items.append(f"{sql} AS {_quoted(aggregate.name)}")
        body = f"SELECT {', '.join(items) if items else '1'}\nFROM {inputs[0]}"
        if op.grouping:
            body += f"\nGROUP BY {', '.join(_quoted(c) for c in op.grouping)}"
        return body, frozenset(nodes)

    def _union_body(self, op: UnionOp, inputs: list[str]) -> tuple[str, frozenset[str]]:
        keyword = "UNION ALL" if op.all else "UNION"
        selects = []
        nodes: set[str] = set()
        for input_op, input_name, mapping in zip(op.inputs, inputs, op.mappings):
            input_nodes = self.node_columns[input_op.id]
            columns = []
            for column in op.output_columns:
                if mapping[column] in input_nodes:
                    nodes.add(column)
                columns.append(f"{_quoted(mapping[column])} AS {_quoted(column)}")
            selects.append(f"SELECT {', '.join(columns)} FROM {input_name}")
        return f"\n{keyword}\n".join(selects), frozenset(nodes)

    def _join_body(self, op: JoinOp, inputs: list[str]) -> tuple[str, frozenset[str]]:
        nodes = self._input_nodes(op)
        columns_by_input = [set(input_op.output_columns) for input_op in op.inputs]

        def oriented_pairs(left: set[str], right: set[str]) -> list[tuple[str, str]]:
            """Equi pairs usable between two column sets, (left, right)-oriented.

            Mirrors the interpreter's ``_pairs_for``: a pair whose columns do
            not land on opposite sides is silently unused.
            """
            usable = []
            for a, b in op.equi_pairs:
                if a in left and b in right:
                    usable.append((a, b))
                elif b in left and a in right:
                    usable.append((b, a))
            return usable

        if op.join_kind is JoinKind.INNER:
            conditions: list[str] = []
            for i in range(len(op.inputs)):
                for j in range(i + 1, len(op.inputs)):
                    for a, b in oriented_pairs(columns_by_input[i], columns_by_input[j]):
                        conditions.append(f"{_quoted(a)} IS {_quoted(b)}")
            if op.condition is not None:
                conditions.append(_SqliteExpr(nodes).scalar(op.condition))
            condition_text = " AND ".join(dict.fromkeys(conditions)) if conditions else "1 = 1"
            return f"SELECT *\nFROM {', '.join(inputs)}\nWHERE {condition_text}", nodes

        left_columns, right_columns = columns_by_input[0], columns_by_input[1]
        pairs = oriented_pairs(left_columns, right_columns)
        if op.condition is not None:
            # The interpreter's extra-condition handling on non-inner joins
            # (filter matches, then re-filter the outer/anti result) has no
            # clean SQL counterpart; no plan builder produces it.
            raise SqlLoweringError(f"{op.join_kind.value} join with extra condition")

        if op.join_kind is JoinKind.LEFT_OUTER:
            on = " AND ".join(
                f"{inputs[0]}.{_quoted(a)} IS {inputs[1]}.{_quoted(b)}" for a, b in pairs
            ) or "1 = 1"
            return (
                f"SELECT *\nFROM {inputs[0]} LEFT JOIN {inputs[1]}\n  ON {on}",
                nodes,
            )

        # Anti join: left rows with no matching right row (NULL-safe keys,
        # like the interpreter's hash lookup).  Only the left columns flow on.
        on = " AND ".join(
            f"{inputs[0]}.{_quoted(a)} IS {inputs[1]}.{_quoted(b)}" for a, b in pairs
        ) or "1 = 1"
        body = (
            f"SELECT *\nFROM {inputs[0]}\n"
            f"WHERE NOT EXISTS (SELECT 1 FROM {inputs[1]} WHERE {on})"
        )
        return body, frozenset(nodes & columns_by_input[0])


def lower_plan_for_sqlite(
    top: Operator,
    table: str,
    catalog: Mapping[str, TableSchema],
    final_columns: Iterable[str] | None = None,
    order_by: Iterable[str] | None = None,
) -> LoweredSqlitePlan:
    """Lower a trigger plan for ``table`` into an executable SQLite statement.

    Raises :class:`SqlLoweringError` when the plan uses a construct the
    dialect cannot express; callers fall back to the in-memory engines.
    """
    renderer = _SqliteRenderer(table, catalog)
    final_name = renderer.render(top)
    columns = tuple(final_columns or top.output_columns)
    top_nodes = renderer.node_columns[top.id]
    select = ", ".join(_quoted(column) for column in columns)
    with_clause = ",\n".join(renderer.cte_lines)
    sql = f"WITH {with_clause}\nSELECT {select}\nFROM {final_name}"
    if order_by:
        sql += f"\nORDER BY {', '.join(_quoted(column) for column in order_by)}"
    return LoweredSqlitePlan(
        table=table,
        sql=sql,
        final_columns=columns,
        node_columns=frozenset(column for column in columns if column in top_nodes),
        required_variants=frozenset(renderer.required_variants),
    )


# ---------------------------------------------------------------------------
# Whole-trigger rendering
# ---------------------------------------------------------------------------


def render_plan_sql(top: Operator, final_columns: Iterable[str] | None = None) -> str:
    """Render a plan as (readable) ``WITH ... SELECT`` text."""
    renderer = _Renderer()
    final_name = renderer.render(top)
    columns = ", ".join(_identifier(c) for c in (final_columns or top.output_columns))
    with_clause = ",\n".join(renderer.cte_lines)
    return f"WITH {with_clause}\nSELECT {columns}\nFROM {final_name}"


def render_sql_trigger(
    name: str,
    table: str,
    events: Iterable[TriggerEvent],
    top: Operator,
    final_columns: Iterable[str] | None = None,
    order_by: Iterable[str] | None = None,
    action_comment: str | None = None,
    dialect: str = "readable",
    catalog: Mapping[str, TableSchema] | None = None,
) -> str:
    """Render a full generated trigger in the style of Figure 16.

    ``dialect="readable"`` (the default) produces the DB2-flavored
    ``CREATE TRIGGER`` document.  ``dialect="sqlite"`` produces the
    *executable* statement the SQLite backend runs per firing (SQLite has no
    statement-level triggers, so the backend drives the statement itself
    after materializing the transition temp tables); ``catalog`` is required
    to resolve primary keys for the ``B_old`` reconstruction.
    """
    events = list(events)
    event_text = " OR ".join(sorted(event.value for event in events))
    if dialect == "sqlite":
        if catalog is None:
            raise SqlLoweringError("the sqlite dialect needs a catalog (primary keys)")
        lowered = lower_plan_for_sqlite(top, table, catalog, final_columns, order_by)
        lines = [
            f"-- trigger {name} (sqlite dialect)",
            f"-- fires AFTER {event_text} ON {table.upper()}; the backend materializes",
            "-- "
            + ", ".join(
                sorted(transition_table_name(table, v) for v in lowered.required_variants)
            )
            + " from the firing's net transition tables, then runs:",
        ]
        if action_comment:
            lines.append(f"-- {action_comment}")
        lines.append(lowered.sql)
        return "\n".join(lines)
    if dialect != "readable":
        raise SqlLoweringError(f"unknown SQL dialect {dialect!r}")
    body = render_plan_sql(top, final_columns)
    if order_by:
        body += f"\nORDER BY {', '.join(_identifier(c) for c in order_by)}"
    lines = [
        f"CREATE TRIGGER {name}",
        f"AFTER {event_text} ON {table.upper()}",
        "REFERENCING OLD_TABLE AS DELETED, NEW_TABLE AS INSERTED",
        "FOR EACH STATEMENT",
        "",
    ]
    if action_comment:
        lines.append(f"-- {action_comment}")
    lines.append(body)
    return "\n".join(lines)
