"""The constant-space tagger (Section 3.2 / XPERANTO [23]).

The generated SQL trigger of Figure 16 produces a *sorted outer union*: one
relational row per XML node, tagged with the node's level in the hierarchy
and ordered so that a parent row immediately precedes its children.  The
tagger converts that row stream into XML using memory proportional to the
view's depth (a stack of open elements), never to the result size — which is
what allows very large results to be tagged without buffering.

The tagger is driven by a :class:`TaggerSchema` describing each level:
element name, key columns (used to detect when a new element starts),
attribute columns, and scalar content columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping

from repro.errors import XmlError
from repro.xmlmodel.node import Element

__all__ = ["TaggerLevel", "TaggerSchema", "Tagger", "tag_rows"]

LEVEL_COLUMN = "__level"


@dataclass
class TaggerLevel:
    """Description of one hierarchy level of the sorted outer union."""

    element_name: str
    key_columns: tuple[str, ...]
    attribute_columns: tuple[tuple[str, str], ...] = ()  # (attribute name, column)
    content_columns: tuple[tuple[str, str], ...] = ()  # (child tag, column)

    def build_element(self, row: Mapping[str, Any]) -> Element:
        """Construct this level's (childless) element from an outer-union row."""
        element = Element(self.element_name)
        for attribute_name, column in self.attribute_columns:
            value = row.get(column)
            element.set_attribute(attribute_name, "" if value is None else value)
        for tag, column in self.content_columns:
            child = Element(tag)
            value = row.get(column)
            if value is not None:
                child.append(value)
            element.append(child)
        return element


@dataclass
class TaggerSchema:
    """An ordered list of levels, outermost first."""

    levels: tuple[TaggerLevel, ...]

    def __post_init__(self) -> None:
        if not self.levels:
            raise XmlError("tagger schema needs at least one level")
        self.levels = tuple(self.levels)

    @property
    def depth(self) -> int:
        """Number of levels."""
        return len(self.levels)


class Tagger:
    """Streaming, constant-space assembly of elements from sorted rows.

    Rows must carry a ``__level`` column (0 = outermost level) and be sorted
    so that each parent row comes immediately before its descendants, and all
    rows of one subtree are contiguous (exactly what the ``ORDER BY`` of the
    generated outer-union query guarantees).  Completed top-level elements
    are emitted as soon as the next top-level row (or end of input) is seen.
    """

    def __init__(self, schema: TaggerSchema) -> None:
        self.schema = schema
        self._stack: list[Element] = []
        self._emitted = 0

    # -- streaming interface ------------------------------------------------------

    def feed(self, row: Mapping[str, Any]) -> Iterator[Element]:
        """Feed one outer-union row; yields any completed top-level elements."""
        level = row.get(LEVEL_COLUMN)
        if level is None:
            raise XmlError(f"outer-union row is missing the {LEVEL_COLUMN!r} column")
        level = int(level)
        if not 0 <= level < self.schema.depth:
            raise XmlError(
                f"outer-union row level {level} out of range 0..{self.schema.depth - 1}"
            )
        if level > len(self._stack):
            raise XmlError(
                f"outer-union rows out of order: level {level} row with only "
                f"{len(self._stack)} open ancestors"
            )

        # Close any levels deeper than or equal to the new row's level.
        completed: Element | None = None
        while len(self._stack) > level:
            closed = self._stack.pop()
            if self._stack:
                self._stack[-1].append(closed)
            else:
                completed = closed
        if completed is not None:
            self._emitted += 1
            yield completed

        element = self.schema.levels[level].build_element(row)
        self._stack.append(element)

    def finish(self) -> Iterator[Element]:
        """Flush the remaining open elements; yields the last top-level element."""
        completed: Element | None = None
        while self._stack:
            closed = self._stack.pop()
            if self._stack:
                self._stack[-1].append(closed)
            else:
                completed = closed
        if completed is not None:
            self._emitted += 1
            yield completed

    # -- convenience ---------------------------------------------------------------

    def tag(self, rows: Iterable[Mapping[str, Any]]) -> list[Element]:
        """Tag an entire row stream and return the top-level elements."""
        output: list[Element] = []
        for row in rows:
            output.extend(self.feed(row))
        output.extend(self.finish())
        return output

    @property
    def open_depth(self) -> int:
        """Number of currently open elements (bounded by the schema depth)."""
        return len(self._stack)

    @property
    def emitted(self) -> int:
        """Number of completed top-level elements emitted so far."""
        return self._emitted


def tag_rows(schema: TaggerSchema, rows: Iterable[Mapping[str, Any]]) -> list[Element]:
    """One-shot helper: tag ``rows`` according to ``schema``."""
    return Tagger(schema).tag(rows)
