"""XML trigger definitions (Section 2.2 of the paper).

A trigger has a name, an event (INSERT / UPDATE / DELETE on view nodes), a
monitored *Path* into a view, an optional Boolean *Condition* over the
``OLD_NODE`` / ``NEW_NODE`` variables, and an *Action*: a call to an external
function whose parameters are XQuery expressions over the same variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import TriggerSyntaxError
from repro.relational.triggers import TriggerEvent
from repro.xmlmodel.node import XmlNode
from repro.xmlmodel.xpath import XPath, analyze_expression

__all__ = ["TriggerSpec", "ExpressionAnalysis", "ActionCall", "XmlTriggerEvent"]

# The XML trigger events are the same three verbs as relational events.
XmlTriggerEvent = TriggerEvent

_UNSET = object()


@dataclass(frozen=True)
class ExpressionAnalysis:
    """Everything trigger registration needs from one expression, one parse.

    Grouping (the shape), the constants table (the constants) and grouped
    evaluation (the parameterized expression) all derive from the same parse;
    computing them together and caching the result on the spec keeps bulk
    registration of very large trigger populations at one parse per
    expression instead of one per consumer.
    """

    parameterized: XPath
    constants: tuple[Any, ...]
    shape: str


@dataclass
class TriggerSpec:
    """A parsed XML trigger definition.

    ``condition`` and each action argument are XPath/XQuery expressions over
    the variables ``OLD_NODE`` and ``NEW_NODE`` (only ``NEW_NODE`` is bound
    for INSERT events and only ``OLD_NODE`` for DELETE events).
    """

    name: str
    event: XmlTriggerEvent
    view: str
    path: tuple[str, ...]
    condition: str | None = None
    action_name: str = "notify"
    action_args: tuple[str, ...] = ()
    source: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise TriggerSyntaxError("trigger name must be non-empty")
        if not self.path:
            raise TriggerSyntaxError(f"trigger {self.name!r}: path must not be empty")
        self.path = tuple(self.path)
        self.action_args = tuple(self.action_args)

    # -- compiled pieces ---------------------------------------------------------

    def compiled_condition(self) -> XPath | None:
        """The condition compiled to an XPath expression (or ``None``)."""
        cached = self.__dict__.get("_compiled_condition", _UNSET)
        if cached is _UNSET:
            if self.condition is None or not self.condition.strip():
                cached = None
            else:
                cached = XPath(self.condition)
            self.__dict__["_compiled_condition"] = cached
        return cached

    def compiled_args(self) -> tuple[XPath, ...]:
        """The action arguments compiled to XPath expressions (cached)."""
        cached = self.__dict__.get("_compiled_args", _UNSET)
        if cached is _UNSET:
            cached = tuple(XPath(arg) for arg in self.action_args)
            self.__dict__["_compiled_args"] = cached
        return cached

    # -- analysis (grouping signature, constants, parameterized forms) -------------

    def condition_analysis(self) -> ExpressionAnalysis | None:
        """The condition's :class:`ExpressionAnalysis` (cached; one parse ever)."""
        cached = self.__dict__.get("_condition_analysis", _UNSET)
        if cached is _UNSET:
            if self.condition is None or not self.condition.strip():
                cached = None
            else:
                parameterized, constants, shape = analyze_expression(self.condition)
                cached = ExpressionAnalysis(XPath(parameterized), tuple(constants), shape)
            self.__dict__["_condition_analysis"] = cached
        return cached

    def argument_analyses(self) -> tuple[ExpressionAnalysis, ...]:
        """Per action argument :class:`ExpressionAnalysis` (cached)."""
        cached = self.__dict__.get("_argument_analyses")
        if cached is None:
            analyses = []
            for argument in self.action_args:
                parameterized, constants, shape = analyze_expression(argument)
                analyses.append(
                    ExpressionAnalysis(XPath(parameterized), tuple(constants), shape)
                )
            cached = tuple(analyses)
            self.__dict__["_argument_analyses"] = cached
        return cached

    def structural_signature(self) -> tuple:
        """Signature under which structurally similar triggers are grouped.

        Two triggers share a group (and hence one generated SQL trigger per
        table-event) iff they monitor the same view path for the same event
        and their conditions / action parameters differ only in literal
        constants.
        """
        cached = self.__dict__.get("_structural_signature")
        if cached is None:
            analysis = self.condition_analysis()
            condition_shape = None if analysis is None else analysis.shape
            argument_shapes = tuple(a.shape for a in self.argument_analyses())
            cached = (self.view, self.path, self.event.value, condition_shape,
                      self.action_name, argument_shapes)
            self.__dict__["_structural_signature"] = cached
        return cached

    def condition_constants(self) -> tuple[Any, ...]:
        """The literal constants of the condition (a row of the constants table)."""
        analysis = self.condition_analysis()
        return () if analysis is None else analysis.constants

    def references_old_node(self) -> bool:
        """Whether the condition or any action argument mentions ``OLD_NODE``."""
        texts = [self.condition or ""] + list(self.action_args)
        return any("OLD_NODE" in text for text in texts)

    def references_old_node_content(self) -> bool:
        """Whether ``OLD_NODE``'s *descendants* are referenced (not just attributes).

        Used by the GROUPED-AGG strategy: if only existence and attributes of
        the old node are needed, the old node's children never have to be
        constructed.
        """
        texts = [self.condition or ""] + list(self.action_args)
        for text in texts:
            index = text.find("OLD_NODE")
            while index != -1:
                rest = text[index + len("OLD_NODE"):]
                stripped = rest.lstrip()
                if stripped.startswith("/") and not stripped.startswith("/@"):
                    return True
                index = text.find("OLD_NODE", index + 1)
        return False

    def path_string(self) -> str:
        """The monitored path as ``view('name')/a/b`` text."""
        return f"view('{self.view}')/" + "/".join(self.path)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = f" WHERE {self.condition}" if self.condition else ""
        args = ", ".join(self.action_args)
        return (
            f"CREATE TRIGGER {self.name} AFTER {self.event.value} ON "
            f"{self.path_string()}{where} DO {self.action_name}({args})"
        )


@dataclass
class ActionCall:
    """One invocation of a trigger's external action function."""

    trigger_name: str
    action_name: str
    arguments: tuple[Any, ...]
    old_node: XmlNode | None
    new_node: XmlNode | None
    key: tuple = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ActionCall({self.trigger_name}: {self.action_name}/{len(self.arguments)} args)"
