"""XML trigger definitions (Section 2.2 of the paper).

A trigger has a name, an event (INSERT / UPDATE / DELETE on view nodes), a
monitored *Path* into a view, an optional Boolean *Condition* over the
``OLD_NODE`` / ``NEW_NODE`` variables, and an *Action*: a call to an external
function whose parameters are XQuery expressions over the same variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import TriggerSyntaxError
from repro.relational.triggers import TriggerEvent
from repro.xmlmodel.node import XmlNode
from repro.xmlmodel.xpath import XPath, expression_shape, split_constants

__all__ = ["TriggerSpec", "ActionCall", "XmlTriggerEvent"]

# The XML trigger events are the same three verbs as relational events.
XmlTriggerEvent = TriggerEvent


@dataclass
class TriggerSpec:
    """A parsed XML trigger definition.

    ``condition`` and each action argument are XPath/XQuery expressions over
    the variables ``OLD_NODE`` and ``NEW_NODE`` (only ``NEW_NODE`` is bound
    for INSERT events and only ``OLD_NODE`` for DELETE events).
    """

    name: str
    event: XmlTriggerEvent
    view: str
    path: tuple[str, ...]
    condition: str | None = None
    action_name: str = "notify"
    action_args: tuple[str, ...] = ()
    source: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise TriggerSyntaxError("trigger name must be non-empty")
        if not self.path:
            raise TriggerSyntaxError(f"trigger {self.name!r}: path must not be empty")
        self.path = tuple(self.path)
        self.action_args = tuple(self.action_args)

    # -- compiled pieces ---------------------------------------------------------

    def compiled_condition(self) -> XPath | None:
        """The condition compiled to an XPath expression (or ``None``)."""
        if self.condition is None or not self.condition.strip():
            return None
        return XPath(self.condition)

    def compiled_args(self) -> tuple[XPath, ...]:
        """The action arguments compiled to XPath expressions."""
        return tuple(XPath(arg) for arg in self.action_args)

    # -- grouping signature (Section 5.1) -----------------------------------------

    def structural_signature(self) -> tuple:
        """Signature under which structurally similar triggers are grouped.

        Two triggers share a group (and hence one generated SQL trigger per
        table-event) iff they monitor the same view path for the same event
        and their conditions / action parameters differ only in literal
        constants.
        """
        condition_shape = (
            expression_shape(self.condition) if self.condition and self.condition.strip() else None
        )
        argument_shapes = tuple(expression_shape(argument) for argument in self.action_args)
        return (self.view, self.path, self.event.value, condition_shape,
                self.action_name, argument_shapes)

    def condition_constants(self) -> tuple[Any, ...]:
        """The literal constants of the condition (a row of the constants table)."""
        if self.condition is None or not self.condition.strip():
            return ()
        _, constants = split_constants(self.condition)
        return tuple(constants)

    def references_old_node(self) -> bool:
        """Whether the condition or any action argument mentions ``OLD_NODE``."""
        texts = [self.condition or ""] + list(self.action_args)
        return any("OLD_NODE" in text for text in texts)

    def references_old_node_content(self) -> bool:
        """Whether ``OLD_NODE``'s *descendants* are referenced (not just attributes).

        Used by the GROUPED-AGG strategy: if only existence and attributes of
        the old node are needed, the old node's children never have to be
        constructed.
        """
        texts = [self.condition or ""] + list(self.action_args)
        for text in texts:
            index = text.find("OLD_NODE")
            while index != -1:
                rest = text[index + len("OLD_NODE"):]
                stripped = rest.lstrip()
                if stripped.startswith("/") and not stripped.startswith("/@"):
                    return True
                index = text.find("OLD_NODE", index + 1)
        return False

    def path_string(self) -> str:
        """The monitored path as ``view('name')/a/b`` text."""
        return f"view('{self.view}')/" + "/".join(self.path)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = f" WHERE {self.condition}" if self.condition else ""
        args = ", ".join(self.action_args)
        return (
            f"CREATE TRIGGER {self.name} AFTER {self.event.value} ON "
            f"{self.path_string()}{where} DO {self.action_name}({args})"
        )


@dataclass
class ActionCall:
    """One invocation of a trigger's external action function."""

    trigger_name: str
    action_name: str
    arguments: tuple[Any, ...]
    old_node: XmlNode | None
    new_node: XmlNode | None
    key: tuple = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ActionCall({self.trigger_name}: {self.action_name}/{len(self.arguments)} args)"
