"""Exception hierarchy for the ``repro`` package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  Sub-hierarchies mirror the package layout:
relational-engine errors, SQL front-end errors, XML / XQuery errors, XQGM
errors, and trigger-translation errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "RelationalError",
    "SchemaError",
    "IntegrityError",
    "UnknownTableError",
    "UnknownColumnError",
    "TypeMismatchError",
    "TransactionError",
    "ShardRoutingError",
    "ServingError",
    "ServerStoppedError",
    "NetworkError",
    "ProtocolError",
    "PersistenceError",
    "RecoveryError",
    "SqlError",
    "SqlSyntaxError",
    "SqlPlanError",
    "SqlExecutionError",
    "XmlError",
    "XmlParseError",
    "XPathError",
    "XQueryError",
    "XQuerySyntaxError",
    "XQueryCompileError",
    "UnsupportedXQueryError",
    "XqgmError",
    "KeyDerivationError",
    "EvaluationError",
    "TriggerError",
    "TriggerSyntaxError",
    "TriggerNotSpecifiableError",
    "TriggerCompilationError",
    "TriggerActivationError",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class for every exception raised by this library."""


# ---------------------------------------------------------------------------
# Relational engine
# ---------------------------------------------------------------------------


class RelationalError(ReproError):
    """Base class for errors raised by the relational engine."""


class SchemaError(RelationalError):
    """A table or column definition is invalid."""


class IntegrityError(RelationalError):
    """A primary-key, uniqueness, or not-null constraint was violated."""


class UnknownTableError(RelationalError):
    """A statement referenced a table that does not exist."""


class UnknownColumnError(RelationalError):
    """A statement referenced a column that does not exist."""


class TypeMismatchError(RelationalError):
    """A value could not be coerced to the declared column type."""


class TransactionError(RelationalError):
    """Invalid use of the statement/transaction API."""


class ShardRoutingError(RelationalError):
    """A statement could not be routed to a single shard (e.g. its keys span
    shards under the configured shard-key policy)."""


# ---------------------------------------------------------------------------
# Serving layer
# ---------------------------------------------------------------------------


class ServingError(ReproError):
    """Base class for errors raised by the concurrent serving layer."""


class ServerStoppedError(ServingError):
    """A statement was submitted to a server that is not running."""


class NetworkError(ServingError):
    """Base class for errors raised by the network front end (``repro.serving.net``)."""


class ProtocolError(NetworkError):
    """A wire frame or message violated the framed protocol.

    Raised by the codec on malformed frames (bad length, CRC mismatch,
    undecodable payload) and by either endpoint on messages that cannot be
    expressed on the wire (e.g. DML with Python callables) or that arrive
    out of protocol (unknown type, missing handshake).  A server never
    crashes on one: the offending connection is answered with an ``error``
    frame where possible and closed.
    """


# ---------------------------------------------------------------------------
# Durability / persistence
# ---------------------------------------------------------------------------


class PersistenceError(ReproError):
    """Base class for errors raised by the durability layer (``repro.persist``)."""


class RecoveryError(PersistenceError):
    """Snapshot + WAL recovery could not rebuild a consistent engine state."""


# ---------------------------------------------------------------------------
# SQL front end
# ---------------------------------------------------------------------------


class SqlError(ReproError):
    """Base class for errors raised by the SQL front end."""


class SqlSyntaxError(SqlError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column}" if column is not None else "") + ")"
        super().__init__(message + location)
        self.line = line
        self.column = column


class SqlPlanError(SqlError):
    """The SQL statement parsed but could not be bound/planned."""


class SqlExecutionError(SqlError):
    """A runtime error occurred while executing a SQL plan."""


# ---------------------------------------------------------------------------
# XML / XPath / XQuery
# ---------------------------------------------------------------------------


class XmlError(ReproError):
    """Base class for XML data-model errors."""


class XmlParseError(XmlError):
    """Malformed XML text."""


class XPathError(XmlError):
    """Invalid or unsupported XPath expression."""


class XQueryError(ReproError):
    """Base class for XQuery front-end errors."""


class XQuerySyntaxError(XQueryError):
    """The XQuery text could not be tokenized or parsed."""


class XQueryCompileError(XQueryError):
    """The XQuery expression parsed but could not be compiled to XQGM."""


class UnsupportedXQueryError(XQueryCompileError):
    """The expression uses a feature outside the supported subset (App. D)."""


# ---------------------------------------------------------------------------
# XQGM
# ---------------------------------------------------------------------------


class XqgmError(ReproError):
    """Base class for XQGM graph errors."""


class KeyDerivationError(XqgmError):
    """A canonical key could not be derived for an operator (Definition 4)."""


class EvaluationError(XqgmError):
    """A runtime error occurred while evaluating an XQGM graph."""


# ---------------------------------------------------------------------------
# XML triggers
# ---------------------------------------------------------------------------


class TriggerError(ReproError):
    """Base class for XML-trigger errors."""


class TriggerSyntaxError(TriggerError):
    """The CREATE TRIGGER statement could not be parsed."""


class TriggerNotSpecifiableError(TriggerError):
    """The view is not trigger-specifiable (Definition 4 / Theorem 1)."""


class TriggerCompilationError(TriggerError):
    """The trigger could not be translated into SQL triggers."""


class TriggerActivationError(TriggerError):
    """An action callback failed or was invoked incorrectly."""


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------


class WorkloadError(ReproError):
    """Invalid experimental workload parameters."""
