"""Sublinear trigger matching (beyond Figure 17).

The paper's grouping (Section 5.1) shares *evaluation*: one generated SQL
trigger serves every structurally similar XML trigger, driven by a constants
table.  But the runtime still probed that constants table linearly — one
parameterized condition evaluation per registered constant set per affected
node — and the relational layer scanned every registered SQL trigger per
statement.  Both costs are linear in the registered population, which caps
the system near the paper's 10^5-trigger measurements.

This package removes both linear scans, the same leap NiagaraCQ-style
grouping and scalable trigger processing (TriggerMan) made for
continuous-query systems:

* :mod:`repro.matching.indexes` — the index structures: a hash index over
  equality constants, an interval tree over range-predicate constants, and
  a path-prefix trie over monitored view paths;
* :mod:`repro.matching.predicates` — compile-time analysis of a group's
  parameterized condition into indexable predicate atoms;
* :mod:`repro.matching.engine` — the per-group :class:`GroupMatcher` that
  turns an affected (OLD_NODE, NEW_NODE) pair into its matching constants
  rows in ~O(matching triggers), with the linear scan retained as the
  oracle/fallback engine (exactly the interpreter-vs-compiled and
  in-memory-vs-sqlite pattern of the earlier engines).

Wiring lives in :class:`repro.core.service.ActiveViewService`
(``use_matching_indexes=True`` by default; per-group indexes maintained on
``create_trigger`` / ``drop_trigger`` / ``drop_view`` and rebuilt after
``invalidate_constants``), and every candidate-selection that cannot use an
index is counted and surfaced through ``evaluation_report()`` — a fallback
can never go unnoticed.
"""

from repro.matching.engine import GroupMatcher, MatchPlanCache, MatchStats
from repro.matching.indexes import EqualityHashIndex, IntervalTree, PathTrie, constant_key
from repro.matching.predicates import MatchPlan, ProbeAtom, analyze_condition

__all__ = [
    "EqualityHashIndex",
    "IntervalTree",
    "PathTrie",
    "constant_key",
    "MatchPlan",
    "ProbeAtom",
    "analyze_condition",
    "GroupMatcher",
    "MatchPlanCache",
    "MatchStats",
]
