"""The per-group matching engine: constants-row selection in ~O(matches).

A :class:`GroupMatcher` owns one trigger group's constants rows (the
Section 5.1 constants table) together with the per-atom indexes derived from
the group's :class:`~repro.matching.predicates.MatchPlan`:

* equality atoms probe an :class:`~repro.matching.indexes.EqualityHashIndex`
  keyed by canonicalized constants;
* range atoms stab an :class:`~repro.matching.indexes.IntervalTree` of the
  per-row accepted value intervals (one-sided constraints are open-ended
  intervals; incremental registrations buffer in a side list and trigger an
  amortized rebuild + atomic swap).

Candidate selection (:meth:`GroupMatcher.candidates`) evaluates each atom's
probe expression once per affected (OLD_NODE, NEW_NODE) pair — existential
node-set semantics: every item of the probe result is looked up and the
per-item row sets union — then intersects across atoms.  If the plan covers
the whole condition and nothing forced a conservative widening, the
candidates *are* the matches and the caller can skip condition evaluation
entirely; otherwise the full parameterized condition re-checks each
candidate, so indexing never changes semantics.  Selections that cannot use
an index at all fall back to the linear scan and are **counted** in
:class:`MatchStats` (surfaced through ``evaluation_report()``).

Row bookkeeping is incremental — ``create_trigger`` adds one row (or extends
an existing row's trigger list), ``drop_trigger`` removes one — and a whole
batch registered through ``register_triggers_bulk`` rebuilds the indexes
once.  Mutations only append to or atomically swap the underlying
structures, so shard-worker readers racing a DDL thread observe either the
old or the new index state, never a torn one.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Iterable

from repro.matching.indexes import EqualityHashIndex, Interval, IntervalTree, constant_key
from repro.matching.predicates import MatchPlan, MatchPlanCache, ProbeAtom
from repro.xmlmodel.xpath import XPath, _as_nodeset, _number_of

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.grouping import ConstantsRow, GroupMember

__all__ = ["MatchStats", "GroupMatcher", "MatchPlanCache"]

#: Incremental range registrations buffered before an index rebuild.
_REBUILD_MIN = 64


class MatchStats:
    """Counters describing how candidate selection behaved.

    ``fallbacks`` counts selections that had to scan linearly because the
    condition had no indexable atom — the number the equivalence suites
    assert to be **zero** on indexable populations, so a silently degraded
    population can never masquerade as an indexed one.
    """

    __slots__ = ("probes", "fallbacks", "wide_probes", "candidate_rows")

    def __init__(self) -> None:
        self.probes = 0          # indexed candidate selections
        self.fallbacks = 0       # linear-scan selections (unindexable condition)
        self.wide_probes = 0     # atoms that could not narrow (non-numeric probe)
        self.candidate_rows = 0  # total candidate rows returned by indexed selections

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class _EqAtomIndex:
    """Runtime state of one equality atom."""

    __slots__ = ("atom", "index", "loose")

    def __init__(self, atom: ProbeAtom) -> None:
        self.atom = atom
        self.index = EqualityHashIndex()
        #: Rows whose constant equality can never certify (NaN); they stay on
        #: the residual-checked path.
        self.loose: list[int] = []

    def add(self, row_id: int, constant: Any) -> None:
        key = constant_key(constant)
        if key is None:
            self.loose.append(row_id)
        else:
            self.index.add(key, row_id)

    def remove(self, row_id: int, constant: Any) -> None:
        key = constant_key(constant)
        if key is None:
            if row_id in self.loose:
                self.loose = [row for row in self.loose if row != row_id]
        else:
            self.index.discard(key, row_id)


class _RangeAtomIndex:
    """Runtime state of one range atom (interval tree + pending buffer)."""

    __slots__ = ("atom", "tree", "items", "pending", "removed", "loose")

    def __init__(self, atom: ProbeAtom) -> None:
        self.atom = atom
        self.tree = IntervalTree()
        self.items: list[tuple[Interval, int]] = []
        self.pending: list[tuple[Interval, int]] = []
        self.removed: set[int] = set()
        #: Rows whose range constant is non-numeric (string-ordered ranges
        #: stay on the residual-checked path).
        self.loose: list[int] = []

    def _interval_for(self, constant: Any) -> Interval | None:
        number = _number_of(constant)
        if number is None or math.isnan(number):
            return None
        op = self.atom.op
        if op == "<":
            return Interval(high=number, high_inclusive=False)
        if op == "<=":
            return Interval(high=number, high_inclusive=True)
        if op == ">":
            return Interval(low=number, low_inclusive=False)
        return Interval(low=number, low_inclusive=True)  # '>='

    def add(self, row_id: int, constant: Any) -> None:
        interval = self._interval_for(constant)
        if interval is None:
            self.loose.append(row_id)
            return
        entry = (interval, row_id)
        self.items.append(entry)
        self.pending.append(entry)
        if len(self.pending) >= max(_REBUILD_MIN, len(self.items) // 8):
            self.rebuild()

    def remove(self, row_id: int, constant: Any) -> None:
        if self._interval_for(constant) is None:
            if row_id in self.loose:
                self.loose = [row for row in self.loose if row != row_id]
            return
        self.removed.add(row_id)
        if len(self.removed) >= max(_REBUILD_MIN, len(self.items) // 4):
            self.rebuild()

    def rebuild(self) -> None:
        """Fold the pending buffer into a fresh tree (atomic swap)."""
        live = [item for item in self.items if item[1] not in self.removed]
        tree = IntervalTree(live)
        self.items = live
        # Swap the tree in *before* clearing the buffer: a concurrent reader
        # may transiently see a row in both (set-union dedupes), never in
        # neither.
        self.tree = tree
        self.pending = []
        self.removed = set()

    def stab(self, value: float) -> set[int]:
        result = self.tree.stab(value)
        removed = self.removed
        if removed:
            result -= removed
        for interval, row_id in self.pending:
            if row_id not in removed and interval.contains(value):
                result.add(row_id)
        return result


class GroupMatcher:
    """Matches affected node pairs to a group's constants rows.

    The matcher *owns* the group's constants-row storage (rows keyed by
    their constants, in first-registration order — identical to
    ``TriggerGroup.constants_table()``), which both engines share: indexed
    selection via :meth:`candidates`, and the linear oracle via
    :meth:`rows`.
    """

    def __init__(self, condition: XPath | None, plan: MatchPlan | None) -> None:
        self.condition = condition
        self.plan = plan if condition is not None else None
        self._rows: list[ConstantsRow | None] = []
        self._by_key: dict[tuple, int] = {}
        self._eq: list[_EqAtomIndex] = []
        self._ranges: list[_RangeAtomIndex] = []
        self._has_loose = False
        if self.plan is not None:
            for atom in self.plan.atoms:
                if atom.is_equality:
                    self._eq.append(_EqAtomIndex(atom))
                else:
                    self._ranges.append(_RangeAtomIndex(atom))

    @classmethod
    def build(
        cls,
        condition: XPath | None,
        plan: MatchPlan | None,
        members: Iterable["GroupMember"],
    ) -> "GroupMatcher":
        """Build a matcher (and its indexes) once for a whole member set."""
        matcher = cls(condition, plan)
        for member in members:
            matcher.add_member(member)
        for range_index in matcher._ranges:
            range_index.rebuild()
        return matcher

    # ------------------------------------------------------------------ maintenance

    @property
    def row_count(self) -> int:
        """Live constants rows (distinct constant sets)."""
        return len(self._by_key)

    def rows(self) -> list["ConstantsRow"]:
        """Every live row in first-registration order (the linear oracle)."""
        return [row for row in self._rows if row is not None and row.trigger_names]

    def add_member(self, member: "GroupMember") -> None:
        """Index one newly registered trigger."""
        from repro.core.grouping import ConstantsRow

        key = member.constants_key
        ordinal = self._by_key.get(key)
        if ordinal is not None:
            row = self._rows[ordinal]
            if row is not None:
                # Tuple swap, not append: racing readers see old or new.
                row.trigger_names = row.trigger_names + (member.spec.name,)
                return
        row = ConstantsRow(
            trigger_names=(member.spec.name,),
            condition_constants=member.condition_constants,
            argument_constants=member.argument_constants,
        )
        ordinal = len(self._rows)
        self._rows.append(row)
        self._by_key[key] = ordinal
        self._index_row(ordinal, row)

    def _index_row(self, ordinal: int, row: "ConstantsRow") -> None:
        for eq in self._eq:
            eq.add(ordinal, self._constant(row, eq.atom))
        for rng in self._ranges:
            rng.add(ordinal, self._constant(row, rng.atom))
        if any(index.loose for index in (*self._eq, *self._ranges)):
            self._has_loose = True

    @staticmethod
    def _constant(row: "ConstantsRow", atom: ProbeAtom) -> Any:
        try:
            return row.condition_constants[atom.param]
        except IndexError:  # pragma: no cover - shapes guarantee arity
            return None

    def remove_member(self, name: str, constants_key: tuple) -> None:
        """Unregister one trigger; drops the row when its last trigger goes."""
        ordinal = self._by_key.get(constants_key)
        if ordinal is None:
            return
        row = self._rows[ordinal]
        if row is None:
            return
        remaining = tuple(n for n in row.trigger_names if n != name)
        row.trigger_names = remaining
        if remaining:
            return
        del self._by_key[constants_key]
        self._rows[ordinal] = None
        for eq in self._eq:
            eq.remove(ordinal, self._constant(row, eq.atom))
        for rng in self._ranges:
            rng.remove(ordinal, self._constant(row, rng.atom))

    # ------------------------------------------------------------------ matching

    def candidates(
        self,
        variables: dict[str, Any],
        stats: MatchStats | None = None,
        *,
        shared_probe_cache: dict | None = None,
    ) -> tuple[list["ConstantsRow"], bool]:
        """Candidate rows for one affected pair, plus whether the full
        condition must still be evaluated per candidate.

        No condition: every row matches trivially (that *is* O(matches)).
        No indexable atom: linear fallback, counted in ``stats.fallbacks``.
        Otherwise: per-atom index lookups, intersected; the residual check
        is skipped only when the plan covers the condition exactly and no
        atom had to widen conservatively.

        ``shared_probe_cache`` (typically ``TriggerContext.probe_cache``)
        shares xpath probe results across the trigger groups fired by one
        statement: a probe shape evaluated against the same pair of nodes
        yields the same node-set, so sibling groups reuse it instead of
        re-walking the XML.  Keyed by node *identity*, which is stable for
        the life of the context that owns the cache.
        """
        plan = self.plan
        if self.condition is None:
            return self.rows(), False
        if plan is None or not plan.indexable:
            if stats is not None:
                stats.fallbacks += 1
            return self.rows(), True

        if stats is not None:
            stats.probes += 1
        probe_values: dict[str, list[Any]]
        if shared_probe_cache is None:
            probe_values = {}
        else:
            pair_token = (id(variables.get("OLD_NODE")), id(variables.get("NEW_NODE")))
            probe_values = shared_probe_cache.setdefault(pair_token, {})
        selected: set[int] | None = None
        widened = False
        for eq in self._eq:
            items = self._probe_items(eq.atom, variables, probe_values)
            ids: set[int] = set()
            for item in items:
                ids.update(eq.index.probe(constant_key(item)))
            ids.update(eq.loose)
            selected = ids if selected is None else (selected & ids)
            if not selected:
                break
        if selected is None or selected:
            for rng in self._ranges:
                items = self._probe_items(rng.atom, variables, probe_values)
                ids = set()
                wide = False
                for item in items:
                    number = _number_of(item)
                    if number is None or math.isnan(number):
                        # String-ordered comparison: the numeric tree cannot
                        # exclude any row for this item; widen conservatively.
                        wide = True
                        break
                    ids |= rng.stab(number)
                if wide:
                    widened = True
                    if stats is not None:
                        stats.wide_probes += 1
                    continue  # the atom contributes no narrowing
                ids.update(rng.loose)
                selected = ids if selected is None else (selected & ids)
                if not selected:
                    break

        if selected is None:
            # Every atom widened: nothing narrowed, check all rows.
            result = self.rows()
            if stats is not None:
                stats.candidate_rows += len(result)
            return result, True
        rows = self._rows
        result = []
        for ordinal in sorted(selected):
            row = rows[ordinal] if ordinal < len(rows) else None
            if row is not None and row.trigger_names:
                result.append(row)
        if stats is not None:
            stats.candidate_rows += len(result)
        needs_residual = (not plan.covered) or widened or self._has_loose
        return result, needs_residual

    @staticmethod
    def _probe_items(
        atom: ProbeAtom, variables: dict[str, Any], cache: dict[str, list[Any]]
    ) -> list[Any]:
        items = cache.get(atom.probe_shape)
        if items is None:
            items = _as_nodeset(atom.probe.evaluate(variables))
            cache[atom.probe_shape] = items
        return items

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        atoms = len(self.plan.atoms) if self.plan is not None else 0
        return f"GroupMatcher(rows={self.row_count}, atoms={atoms})"
