"""Index structures for sublinear trigger matching.

Three structures, one per predicate family:

* :class:`EqualityHashIndex` — equality constants (``probe = constant``).
  Keys are canonicalized with :func:`constant_key` so that the index is a
  *congruence* for the XPath comparison semantics: two values hash to the
  same key **iff** ``_compare_atoms('=', a, b)`` holds (numeric comparison
  when both sides coerce to numbers, string comparison otherwise).
* :class:`IntervalTree` — range constants (``probe < constant`` and
  friends).  Every registered row contributes one (possibly open-ended)
  interval of probe values it accepts; a stabbing query returns the rows
  whose interval contains the probed value.  Handles duplicate intervals,
  inclusive/exclusive endpoints, and one- or two-sided open ends.
* :class:`PathTrie` — monitored view paths.  A prefix trie over the child
  element steps of ``view('v')/a/b`` paths; step validation matches the
  trigger language's (``language.py``), so a path the parser rejects —
  descendant steps (``//``), empty steps, non-name steps — is rejected here
  too, and the trie can never hold an unmatchable entry.

All three support concurrent readers racing a single mutator under CPython
semantics: mutation is append/­discard on dicts and lists plus atomic
attribute swaps, so a reader observes either the old or the new state of
each structure, never a torn one.  (The serving layer's DDL calls run on
client threads while shard workers match — the same documented race window
as trigger registration itself.)
"""

from __future__ import annotations

import math
import re
from typing import Any, Iterable, Iterator, Sequence

from repro.xmlmodel.xpath import _number_of, _string_of  # shared coercion rules

__all__ = ["constant_key", "EqualityHashIndex", "Interval", "IntervalTree", "PathTrie"]


def constant_key(value: Any) -> tuple | None:
    """Canonical hash key for equality matching, or ``None`` if unindexable.

    Mirrors ``_compare_atoms('=')`` exactly: a value that coerces to a
    number compares numerically (so ``15``, ``15.0`` and ``"15"`` are one
    key), anything else compares as a string.  The two families can never
    collide — if two string forms are equal, both coerce (or neither does).
    ``NaN`` is the one value equality can never certify (``NaN != NaN``
    numerically but ``'nan' == 'nan'`` as strings), so it is reported as
    unindexable and the caller must keep such rows on the checked path.
    """
    number = _number_of(value)
    if number is not None:
        if math.isnan(number):
            return None
        return ("n", number)
    return ("s", _string_of(value))


class EqualityHashIndex:
    """Hash index from canonical constant keys to row ordinals."""

    def __init__(self) -> None:
        self._buckets: dict[tuple, list[int]] = {}

    def add(self, key: tuple, row_id: int) -> None:
        """Register ``row_id`` under ``key`` (duplicates collapse)."""
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = [row_id]
        elif row_id not in bucket:
            bucket.append(row_id)

    def discard(self, key: tuple, row_id: int) -> None:
        """Remove ``row_id`` from ``key``'s bucket (idempotent)."""
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        if row_id in bucket:
            # Replace rather than mutate in place: a reader iterating the old
            # list sees a consistent (pre-removal) snapshot.
            remaining = [row for row in bucket if row != row_id]
            if remaining:
                self._buckets[key] = remaining
            else:
                del self._buckets[key]

    def probe(self, key: tuple | None) -> Sequence[int]:
        """Row ordinals registered under ``key`` (empty for ``None`` keys)."""
        if key is None:
            return ()
        return self._buckets.get(key, ())

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    @property
    def bucket_count(self) -> int:
        """Number of distinct keys (for tests and diagnostics)."""
        return len(self._buckets)


class Interval:
    """A numeric interval with optional open ends and per-end inclusivity."""

    __slots__ = ("low", "high", "low_inclusive", "high_inclusive")

    def __init__(
        self,
        low: float | None = None,
        high: float | None = None,
        *,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> None:
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        if self.low is not None:
            if value < self.low or (value == self.low and not self.low_inclusive):
                return False
        if self.high is not None:
            if value > self.high or (value == self.high and not self.high_inclusive):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        left = "[" if self.low_inclusive else "("
        right = "]" if self.high_inclusive else ")"
        return f"{left}{'-inf' if self.low is None else self.low}, " \
               f"{'+inf' if self.high is None else self.high}{right}"


class _TreeNode:
    """One node of the centered interval tree."""

    __slots__ = ("center", "by_low", "by_high", "left", "right")

    def __init__(self, center: float) -> None:
        self.center = center
        #: Intervals overlapping ``center``, ascending by low end (open low first).
        self.by_low: list[tuple[Interval, int]] = []
        #: The same intervals, descending by high end (open high first).
        self.by_high: list[tuple[Interval, int]] = []
        self.left: _TreeNode | None = None
        self.right: _TreeNode | None = None


def _low_key(item: tuple[Interval, int]) -> float:
    low = item[0].low
    return -math.inf if low is None else low


def _high_key(item: tuple[Interval, int]) -> float:
    high = item[0].high
    return math.inf if high is None else high


class IntervalTree:
    """Static centered interval tree answering stabbing queries.

    Built once from ``(interval, row_id)`` pairs; :meth:`stab` returns every
    row whose interval contains the query point in ``O(log n + k)``.  The
    matching engine treats the tree as immutable and absorbs incremental
    registrations in a side buffer, rebuilding (and atomically swapping) the
    tree when the buffer grows past its amortization threshold.
    """

    def __init__(self, items: Iterable[tuple[Interval, int]] = ()) -> None:
        materialized = list(items)
        self._size = len(materialized)
        self._root = self._build(materialized) if materialized else None

    def _build(self, items: list[tuple[Interval, int]]) -> _TreeNode:
        # Center on the median finite endpoint; fully open intervals (no
        # finite endpoint at all) overlap any center and stay at the root.
        endpoints: list[float] = []
        for interval, _ in items:
            if interval.low is not None:
                endpoints.append(interval.low)
            if interval.high is not None:
                endpoints.append(interval.high)
        center = sorted(endpoints)[len(endpoints) // 2] if endpoints else 0.0
        node = _TreeNode(center)
        here: list[tuple[Interval, int]] = []
        left: list[tuple[Interval, int]] = []
        right: list[tuple[Interval, int]] = []
        for item in items:
            interval = item[0]
            if interval.high is not None and interval.high < center:
                left.append(item)
            elif interval.low is not None and interval.low > center:
                right.append(item)
            else:
                here.append(item)
        node.by_low = sorted(here, key=_low_key)
        node.by_high = sorted(here, key=_high_key, reverse=True)
        if left:
            node.left = self._build(left)
        if right:
            node.right = self._build(right)
        return node

    def stab(self, value: float, into: set[int] | None = None) -> set[int]:
        """Row ordinals whose interval contains ``value``."""
        result = into if into is not None else set()
        node = self._root
        while node is not None:
            if value < node.center:
                # Every interval here has high >= center > value, so only the
                # low end can exclude; by_low is ascending, stop at the first
                # low end beyond the query.
                for interval, row_id in node.by_low:
                    if _low_key((interval, row_id)) > value:
                        break
                    if interval.contains(value):
                        result.add(row_id)
                node = node.left
            elif value > node.center:
                for interval, row_id in node.by_high:
                    if _high_key((interval, row_id)) < value:
                        break
                    if interval.contains(value):
                        result.add(row_id)
                node = node.right
            else:
                for interval, row_id in node.by_low:
                    if interval.contains(value):
                        result.add(row_id)
                break
        return result

    def __len__(self) -> int:
        return self._size


#: The trigger language's path-step grammar (``core/language.py``); the trie
#: enforces the identical rule so descendant steps (``//`` produces an empty
#: step) and non-name steps can never be registered.
_STEP_RE = re.compile(r"[A-Za-z_][\w\-\.]*")


class _TrieNode:
    __slots__ = ("children", "values")

    def __init__(self) -> None:
        self.children: dict[str, _TrieNode] = {}
        self.values: dict[Any, None] = {}  # insertion-ordered set


class PathTrie:
    """Prefix trie over monitored-path step tuples.

    Values (group signatures, trigger names, ...) are attached to the node a
    path ends at; lookups walk one node per step, so every query below costs
    the *path length*, never the registered population:

    * :meth:`exact` — values registered at precisely this path;
    * :meth:`prefixes_of` — values on every prefix of a path (triggers
      monitoring an ancestor of an affected node);
    * :meth:`extensions_of` — values in the subtree under a path (triggers
      monitoring the path or any descendant — e.g. every group of one view).
    """

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._size = 0

    @staticmethod
    def validate(path: Sequence[str]) -> tuple[str, ...]:
        """Check a path against the trigger language's step grammar."""
        steps = tuple(path)
        if not steps:
            raise ValueError("path must have at least one step")
        for step in steps:
            if not isinstance(step, str) or not _STEP_RE.fullmatch(step):
                raise ValueError(
                    f"invalid path step {step!r} (descendant steps ('//') and "
                    "non-name steps are not supported in the trigger Path)"
                )
        return steps

    def add(self, path: Sequence[str], value: Any) -> None:
        """Attach ``value`` at ``path`` (duplicates collapse)."""
        node = self._root
        for step in self.validate(path):
            child = node.children.get(step)
            if child is None:
                child = _TrieNode()
                node.children[step] = child
            node = child
        if value not in node.values:
            node.values[value] = None
            self._size += 1

    def discard(self, path: Sequence[str], value: Any) -> None:
        """Remove ``value`` from ``path`` (idempotent; prunes empty branches)."""
        steps = tuple(path)
        chain: list[tuple[_TrieNode, str]] = []
        node = self._root
        for step in steps:
            child = node.children.get(step)
            if child is None:
                return
            chain.append((node, step))
            node = child
        if value in node.values:
            del node.values[value]
            self._size -= 1
        # Prune now-empty leaves so the trie's size tracks the live paths.
        for parent, step in reversed(chain):
            child = parent.children[step]
            if child.values or child.children:
                break
            del parent.children[step]

    def _walk(self, path: Sequence[str]) -> _TrieNode | None:
        node = self._root
        for step in path:
            node = node.children.get(step)  # type: ignore[assignment]
            if node is None:
                return None
        return node

    def exact(self, path: Sequence[str]) -> list[Any]:
        """Values registered at exactly ``path``."""
        node = self._walk(path)
        return list(node.values) if node is not None else []

    def prefixes_of(self, path: Sequence[str]) -> list[Any]:
        """Values on every prefix of ``path``, shallowest first (inclusive)."""
        result: list[Any] = []
        node = self._root
        result.extend(node.values)
        for step in path:
            node = node.children.get(step)  # type: ignore[assignment]
            if node is None:
                break
            result.extend(node.values)
        return result

    def extensions_of(self, path: Sequence[str] = ()) -> list[Any]:
        """Values at ``path`` and every descendant path (pre-order)."""
        start = self._walk(path)
        if start is None:
            return []
        result: list[Any] = []
        stack = [start]
        while stack:
            node = stack.pop()
            result.extend(node.values)
            stack.extend(reversed(list(node.children.values())))
        return result

    def __len__(self) -> int:
        return self._size

    def __contains__(self, path: Sequence[str]) -> bool:
        node = self._walk(tuple(path))
        return node is not None and bool(node.values)

    def __iter__(self) -> Iterator[tuple[tuple[str, ...], Any]]:
        stack: list[tuple[tuple[str, ...], _TrieNode]] = [((), self._root)]
        while stack:
            path, node = stack.pop()
            for value in node.values:
                yield path, value
            for step, child in reversed(list(node.children.items())):
                stack.append((path + (step,), child))
