"""Compile-time analysis of grouped conditions into indexable atoms.

A trigger group's parameterized condition (Section 5.1: every literal
replaced by a :class:`~repro.xmlmodel.xpath.Parameter` slot of the constants
table) is analyzed **once per condition shape** into a :class:`MatchPlan`:
the top-level conjunction is split and each conjunct of the form ::

    <probe expression>  OP  Parameter(i)      (either operand order)

with ``OP`` one of ``=  <  <=  >  >=`` and a parameter-free probe becomes a
:class:`ProbeAtom`.  At runtime the probe expression is evaluated once per
affected (OLD_NODE, NEW_NODE) pair and the atom's per-row constants are
resolved through an index — a hash index for ``=``, an interval tree for the
range operators — so candidate constants rows cost ~O(matches) instead of
one condition evaluation per registered row.

The analysis is *conservative*: conjuncts it cannot index (``!=``,
disjunctions, parameters on both sides, nested-predicate parameters) simply
produce no atom, and ``covered`` records whether the atom set is the whole
condition.  A non-covered plan narrows candidates with its atoms and then
re-checks the full condition per candidate, so indexing can never change
semantics; a plan with **no** atoms at all makes the matcher fall back to
the linear oracle scan, and that fallback is counted (never silent).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.xmlmodel.xpath import Binary, Parameter, XPath, XPathExpr, expression_shape

__all__ = ["ProbeAtom", "MatchPlan", "analyze_condition", "condition_shape"]

#: Comparison operators indexable by the hash index / interval tree.
_EQ_OPS = {"="}
_RANGE_OPS = {"<", "<=", ">", ">="}
#: Operator flips for ``Parameter OP probe`` conjuncts.
_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}


@dataclass(frozen=True)
class ProbeAtom:
    """One indexable conjunct: ``probe OP constants[param]``.

    ``op`` is normalized so the probed *value* is always the left operand
    (``value OP constant``); ``probe_shape`` keys the per-pair probe-value
    cache, so several atoms over one expression evaluate it once.
    """

    op: str
    probe: XPath
    probe_shape: str
    param: int

    @property
    def is_equality(self) -> bool:
        return self.op in _EQ_OPS


@dataclass(frozen=True)
class MatchPlan:
    """The indexable structure of one condition shape."""

    atoms: tuple[ProbeAtom, ...]
    #: Whether the atoms *are* the condition (a pure conjunction of indexed
    #: comparisons).  Covered plans skip the per-candidate residual check.
    covered: bool
    shape: str

    @property
    def indexable(self) -> bool:
        """Whether candidate selection can use an index at all."""
        return bool(self.atoms)


def _has_parameters(expr: XPathExpr) -> bool:
    if isinstance(expr, Parameter):
        return True
    return any(_has_parameters(child) for child in expr.children())


def _conjuncts(expr: XPathExpr) -> list[XPathExpr]:
    if isinstance(expr, Binary) and expr.op == "and":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _atom_of(conjunct: XPathExpr) -> ProbeAtom | None:
    if not isinstance(conjunct, Binary):
        return None
    op = conjunct.op
    if op not in _EQ_OPS and op not in _RANGE_OPS:
        return None
    left, right = conjunct.left, conjunct.right
    if isinstance(right, Parameter) and not _has_parameters(left):
        probe, param = left, right.index
    elif isinstance(left, Parameter) and not _has_parameters(right):
        probe, param, op = right, left.index, _FLIP[op]
    else:
        return None
    return ProbeAtom(
        op=op,
        probe=XPath(probe),
        probe_shape=expression_shape(probe),
        param=param,
    )


def condition_shape(condition: XPath | XPathExpr) -> str:
    """Canonical shape string of a (parameterized) condition — the plan key."""
    ast = condition.ast if isinstance(condition, XPath) else condition
    return expression_shape(ast)


def analyze_condition(condition: XPath | XPathExpr) -> MatchPlan:
    """Analyze a parameterized condition into its :class:`MatchPlan`."""
    ast = condition.ast if isinstance(condition, XPath) else condition
    atoms: list[ProbeAtom] = []
    covered = True
    for conjunct in _conjuncts(ast):
        atom = _atom_of(conjunct)
        if atom is None:
            covered = False
        else:
            atoms.append(atom)
    return MatchPlan(atoms=tuple(atoms), covered=covered and bool(atoms),
                     shape=condition_shape(ast))


class MatchPlanCache:
    """Thread-safe cache of :class:`MatchPlan` analyses, keyed by shape.

    The matching counterpart of :class:`repro.core.service.PlanCache`: one
    instance may be shared by several services (the per-shard services of an
    :class:`~repro.serving.ActiveViewServer` pass one cache here), so an
    N-shard server analyzes each condition shape once, not once per shard.
    Plans are immutable, so sharing needs no further synchronization.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._plans: dict[str, MatchPlan] = {}
        self.hits = 0
        self.misses = 0

    def get_or_analyze(self, condition: XPath) -> MatchPlan:
        """Return the cached plan for ``condition``'s shape, analyzing once."""
        key = condition_shape(condition)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self.hits += 1
                return plan
            plan = analyze_condition(condition)
            self._plans[key] = plan
            self.misses += 1
            return plan

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)
