"""Durability subsystem: write-ahead log, snapshots, crash recovery.

The paper's middleware assumes a durable RDBMS underneath (Section 2.3);
this package supplies the equivalent guarantees for the pure-Python
substrate:

* :class:`WriteAheadLog` (:mod:`repro.persist.wal`) — a binary-safe,
  CRC-framed, append-only log of committed statement/batch *net deltas* and
  catalog DDL, one per :class:`~repro.relational.database.Database` (one per
  shard when sharded);
* :class:`Snapshot` (:mod:`repro.persist.snapshot`) — crash-atomic
  serialization of full engine state that truncates the WAL behind it;
* :func:`recover_database` (:mod:`repro.persist.recovery`) — snapshot + WAL
  replay with trigger firing suppressed;
* :class:`DurableService` / :class:`DurableServer`
  (:mod:`repro.persist.durable`) — the recovered middleware and serving
  stacks, including the durable **activation outbox** that makes
  at-least-once activation delivery hold *across restarts*.

``docs/persistence.md`` documents the record formats and crash-consistency
guarantees; ``docs/operations.md`` is the deployment runbook.
"""

from repro.persist.codec import decode_value, encode_value
from repro.persist.durable import DurableServer, DurableService
from repro.persist.recovery import recover_database
from repro.persist.snapshot import Snapshot
from repro.persist.wal import RecordLog, WriteAheadLog

__all__ = [
    "DurableServer",
    "DurableService",
    "RecordLog",
    "Snapshot",
    "WriteAheadLog",
    "decode_value",
    "encode_value",
    "recover_database",
]
