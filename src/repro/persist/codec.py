"""Binary-safe value codec for WAL records, snapshots, and outbox entries.

Durable files must survive a process restart byte-for-byte, so the codec is
deliberately *not* pickle: decoding never executes code, the format is
self-describing and versioned by construction (one tag byte per value), and
the exact byte layout is documented in ``docs/persistence.md`` so a record
can be inspected with a hex dump.

Supported values are exactly what the engine stores and the log needs:
``None``, ``bool``, ``int`` (arbitrary precision), ``float``, ``str``,
``bytes``, ``tuple``, ``list``, and ``dict`` (any encodable keys).  Rows are
tuples of scalars; records are dicts at the top level.

Layout, one tag byte then the payload:

====  =======  ==================================================
tag   type     payload
====  =======  ==================================================
``N`` None     (empty)
``T`` True     (empty)
``F`` False    (empty)
``i`` int      varint byte length, then ASCII decimal digits
``f`` float    8 bytes, IEEE-754 big-endian (``struct '>d'``)
``s`` str      varint byte length, then UTF-8 bytes
``b`` bytes    varint byte length, then the raw bytes
``t`` tuple    varint item count, then each item
``l`` list     varint item count, then each item
``d`` dict     varint pair count, then key/value alternating
====  =======  ==================================================

``varint`` is unsigned LEB128 (7 bits per byte, high bit = continue).
"""

from __future__ import annotations

import struct
from typing import Any

from repro.errors import PersistenceError

__all__ = ["encode_value", "decode_value"]

_FLOAT = struct.Struct(">d")


def _encode_varint(value: int, out: bytearray) -> None:
    if value < 0:  # pragma: no cover - internal misuse guard
        raise PersistenceError("varint must be non-negative")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _decode_varint(data: bytes, offset: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise PersistenceError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def _encode(value: Any, out: bytearray) -> None:
    if value is None:
        out.append(ord("N"))
    elif value is True:
        out.append(ord("T"))
    elif value is False:
        out.append(ord("F"))
    elif isinstance(value, int):
        digits = str(value).encode("ascii")
        out.append(ord("i"))
        _encode_varint(len(digits), out)
        out.extend(digits)
    elif isinstance(value, float):
        out.append(ord("f"))
        out.extend(_FLOAT.pack(value))
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out.append(ord("s"))
        _encode_varint(len(encoded), out)
        out.extend(encoded)
    elif isinstance(value, bytes):
        out.append(ord("b"))
        _encode_varint(len(value), out)
        out.extend(value)
    elif isinstance(value, tuple):
        out.append(ord("t"))
        _encode_varint(len(value), out)
        for item in value:
            _encode(item, out)
    elif isinstance(value, list):
        out.append(ord("l"))
        _encode_varint(len(value), out)
        for item in value:
            _encode(item, out)
    elif isinstance(value, dict):
        out.append(ord("d"))
        _encode_varint(len(value), out)
        for key, item in value.items():
            _encode(key, out)
            _encode(item, out)
    else:
        raise PersistenceError(
            f"cannot encode value of type {type(value).__name__}: {value!r}"
        )


def encode_value(value: Any) -> bytes:
    """Encode a value to its binary representation."""
    out = bytearray()
    _encode(value, out)
    return bytes(out)


def _decode(data: bytes, offset: int) -> tuple[Any, int]:
    if offset >= len(data):
        raise PersistenceError("truncated value")
    tag = data[offset]
    offset += 1
    if tag == ord("N"):
        return None, offset
    if tag == ord("T"):
        return True, offset
    if tag == ord("F"):
        return False, offset
    if tag == ord("i"):
        length, offset = _decode_varint(data, offset)
        end = offset + length
        if end > len(data):
            raise PersistenceError("truncated int")
        return int(data[offset:end].decode("ascii")), end
    if tag == ord("f"):
        end = offset + 8
        if end > len(data):
            raise PersistenceError("truncated float")
        return _FLOAT.unpack_from(data, offset)[0], end
    if tag == ord("s"):
        length, offset = _decode_varint(data, offset)
        end = offset + length
        if end > len(data):
            raise PersistenceError("truncated str")
        return data[offset:end].decode("utf-8"), end
    if tag == ord("b"):
        length, offset = _decode_varint(data, offset)
        end = offset + length
        if end > len(data):
            raise PersistenceError("truncated bytes")
        return data[offset:end], end
    if tag in (ord("t"), ord("l")):
        count, offset = _decode_varint(data, offset)
        items = []
        for _ in range(count):
            item, offset = _decode(data, offset)
            items.append(item)
        return (tuple(items) if tag == ord("t") else items), offset
    if tag == ord("d"):
        count, offset = _decode_varint(data, offset)
        result = {}
        for _ in range(count):
            key, offset = _decode(data, offset)
            value, offset = _decode(data, offset)
            result[key] = value
        return result, offset
    raise PersistenceError(f"unknown codec tag {tag:#04x} at offset {offset - 1}")


def decode_value(data: bytes) -> Any:
    """Decode a value previously produced by :func:`encode_value`."""
    value, offset = _decode(data, 0)
    if offset != len(data):
        raise PersistenceError(
            f"{len(data) - offset} trailing bytes after decoded value"
        )
    return value
