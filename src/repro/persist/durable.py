"""Durable facades: a single-writer durable service and a durable server.

Two compositions of the persistence primitives:

* :class:`DurableService` — one :class:`~repro.relational.database.Database`
  + :class:`~repro.core.service.ActiveViewService` whose committed changes
  stream into a :class:`~repro.persist.wal.WriteAheadLog` and whose registry
  DDL streams into a DDL log.  Construction *is* recovery: pointed at a
  directory with prior state it rebuilds tables from snapshot + WAL replay
  (triggers suppressed), rehydrates views and XML triggers from the DDL log,
  and only then attaches the logs for new work.
* :class:`DurableServer` — the sharded serving stack
  (:class:`~repro.serving.server.ActiveViewServer`) with one WAL per shard,
  a shared DDL log, and a durable **activation outbox**: every activation is
  appended to the outbox *before* any subscriber sees it, named subscribers
  acknowledge consumption through persisted cursors, and after a restart
  every accepted-but-unacknowledged activation is redelivered in per-shard
  order — the paper's at-least-once activation contract extended across
  process lifetimes.

Views and actions are *code*, so they cannot be pickled out of a log;
recovery re-binds them from the caller-supplied ``views=[...]`` /
``actions={...}`` arguments, while the *registrations* (which views were
registered, which triggers existed, with which conditions) replay from the
DDL log.  ``docs/operations.md`` is the runbook for all of this.
"""

from __future__ import annotations

import os
import pathlib
import threading
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.core.service import ActiveViewService, ExecutionMode
from repro.core.trigger import TriggerSpec
from repro.errors import PersistenceError, RecoveryError
from repro.persist.records import (
    activation_from_record,
    activation_to_record,
    spec_from_record,
    spec_to_record,
)
from repro.persist.recovery import DDL_FILE, SNAPSHOT_FILE, recover_database
from repro.persist.snapshot import Snapshot
from repro.persist.wal import RecordLog, WriteAheadLog
from repro.relational.database import Database
from repro.relational.dml import Statement
from repro.relational.sharded import RoutingKeyFunction, ShardedDatabase
from repro.serving.server import ActiveViewServer
from repro.serving.subscribers import Activation, Subscriber
from repro.xqgm.views import ViewDefinition

__all__ = ["DurableService", "DurableServer", "OUTBOX_FILE", "CURSORS_FILE", "META_FILE"]

OUTBOX_FILE = "outbox.log"
CURSORS_FILE = "cursors.log"
META_FILE = "meta.log"


class _RegistryLog:
    """Shared DDL-log handling: replay, recording, and compaction."""

    def __init__(self, path: pathlib.Path, sync: str) -> None:
        self.log = RecordLog(path, sync=sync)

    def replay_into(
        self,
        register_view: Callable[[ViewDefinition], None],
        create_trigger: Callable[[TriggerSpec], None],
        resolver: Mapping[str, ViewDefinition],
    ) -> None:
        """Rehydrate the *net* registry: only registrations that survived.

        The log is first folded to its net effect (a registration cancelled
        by a later drop is skipped entirely, as are the drop's cascaded
        trigger drops), then the surviving views and triggers are
        re-registered in first-registration order.  Netting matters for more
        than speed: transient registry states may reference tables that were
        dropped later in the history, and re-validating them against the
        *final* (post-WAL-replay) table catalog would fail even though the
        final registry is perfectly consistent.
        """
        records = list(self.log.replay())
        if self.log.torn_tail:
            self.log.trim()
        views: dict[str, None] = {}
        triggers: dict[str, TriggerSpec] = {}
        for record in records:
            kind = record.get("kind")
            if kind == "register_view":
                views.pop(record["view"], None)
                views[record["view"]] = None
            elif kind == "drop_view":
                views.pop(record["view"], None)
            elif kind == "create_trigger":
                spec = spec_from_record(record["spec"])
                triggers.pop(spec.name, None)
                triggers[spec.name] = spec
            elif kind == "drop_trigger":
                triggers.pop(record["name"], None)
            else:
                raise RecoveryError(f"unknown DDL record kind {kind!r}")
        for name in views:
            if name not in resolver:
                raise RecoveryError(
                    f"recovery needs view {name!r}: pass its ViewDefinition "
                    "in views=[...] (views are code and cannot be logged)"
                )
            register_view(resolver[name])
        for spec in triggers.values():
            create_trigger(spec)

    def record(self, kind: str, payload: Any) -> None:
        if kind in ("register_view", "drop_view"):
            self.log.append({"kind": kind, "view": payload})
        elif kind == "create_trigger":
            self.log.append({"kind": kind, "spec": spec_to_record(payload)})
        elif kind == "drop_trigger":
            self.log.append({"kind": kind, "name": payload})
        else:  # pragma: no cover - future DDL kinds must be handled explicitly
            raise PersistenceError(f"unknown DDL event kind {kind!r}")

    def compact(self, views: Iterable[str], triggers: Iterable[TriggerSpec]) -> None:
        """Rewrite the log as the minimal registration sequence for the registry."""
        records = [{"kind": "register_view", "view": name} for name in views]
        records.extend(
            {"kind": "create_trigger", "spec": spec_to_record(spec)} for spec in triggers
        )
        self.log.rewrite(records)


class DurableService:
    """A durable single-writer active-view service rooted in one directory.

    Directory layout: ``snapshot.bin`` (latest snapshot), ``wal.log``
    (records since the snapshot), ``ddl.log`` (registry).  Opening the same
    directory again recovers exactly the pre-crash tables and registry; see
    ``docs/persistence.md`` for the semantics and the property test
    ``tests/property/test_property_recovery.py`` for the pinned contract.

    Parameters mirror :class:`~repro.core.service.ActiveViewService`, plus:

    views:
        Every :class:`ViewDefinition` this directory's registry may
        reference.  Registrations replay from the DDL log; fresh views are
        registered with :meth:`ensure_view`.
    actions:
        ``{name: callable}`` re-bound on every open (actions are code).
    sync:
        WAL/DDL append durability: ``"none"`` | ``"flush"`` | ``"fsync"``.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        views: Sequence[ViewDefinition] = (),
        actions: Mapping[str, Callable[..., Any]] | None = None,
        mode: ExecutionMode = ExecutionMode.GROUPED_AGG,
        sync: str = "flush",
        name: str | None = None,
        service_options: Mapping[str, Any] | None = None,
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.database, self.wal = recover_database(self.directory, name=name, sync=sync)
        self.service = ActiveViewService(
            self.database, mode=mode, **dict(service_options or {})
        )
        self._resolver = {view.name: view for view in views}
        for action_name, function in (actions or {}).items():
            self.service.register_action(action_name, function)
        self._registry = _RegistryLog(self.directory / DDL_FILE, sync)
        self._registry.replay_into(
            self.service.register_view,
            self.service.create_trigger,
            self._resolver,
        )
        # Recovery done — from here on, log everything.
        self.wal.attach(self.database)
        self.service.add_ddl_listener(self._registry.record)

    # ------------------------------------------------------------------ registry

    def ensure_view(self, view: ViewDefinition) -> None:
        """Register a view unless the recovered registry already has it."""
        self._resolver[view.name] = view
        if view.name not in self.service.views:
            self.service.register_view(view)

    def ensure_trigger(self, definition: str | TriggerSpec) -> TriggerSpec:
        """Create a trigger unless the recovered registry already has it."""
        from repro.core.language import parse_trigger

        spec = parse_trigger(definition) if isinstance(definition, str) else definition
        existing = {existing.name: existing for existing in self.service.triggers}
        if spec.name in existing:
            return existing[spec.name]
        return self.service.create_trigger(spec)

    # ------------------------------------------------------------------ lifecycle

    def snapshot(self) -> Snapshot:
        """Write a snapshot, truncate the WAL behind it, compact the DDL log."""
        # The database lock quiesces DML for a consistent capture (the
        # single-writer contract makes this the only writer anyway).
        with self.database._lock:
            snapshot = Snapshot.capture(self.database, wal_lsn=self.wal.last_lsn)
        snapshot.write(self.directory / SNAPSHOT_FILE)
        self.wal.truncate()
        self._registry.compact(
            self.service.views, list(self.service.triggers)
        )
        return snapshot

    def close(self) -> None:
        """Detach the logs and close the files (no implicit snapshot)."""
        self.wal.detach()
        self.service.remove_ddl_listener(self._registry.record)
        self.wal.close()
        self._registry.log.close()

    def __enter__(self) -> "DurableService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ passthrough

    def execute(self, statement: Statement):
        """Execute one statement (logged, triggers fire, actions run)."""
        return self.service.execute(statement)

    def execute_batch(self, statements):
        """Execute a batch set-at-a-time (one WAL record for the whole batch)."""
        return self.service.execute_batch(statements)

    @property
    def fired(self):
        """XML trigger firings observed by the underlying service."""
        return self.service.fired

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DurableService({self.directory}, wal_lsn={self.wal.last_lsn})"


class DurableServer:
    """The sharded serving layer with per-shard WALs and a durable outbox.

    Directory layout::

        dir/
          meta.log        shard count (guards against reopening with a
                          different topology — placement is shard-count
                          dependent)
          ddl.log         registry: view registrations + trigger specs
          shard<i>/       snapshot.bin + wal.log per shard
          outbox.log      accepted activations not yet acked by everyone
          cursors.log     per-subscriber per-shard ack cursors + sequences

    Construction recovers everything: shard databases (snapshot + WAL
    replay, triggers suppressed), the registry (DDL replay through the
    server, so every shard service compiles the same triggers via the shared
    plan cache), per-shard activation sequence counters, and the pending
    outbox.  Call :meth:`start` (or use ``with``) to begin serving, and
    :meth:`subscribe` with a *stable name* to resume a durable subscription —
    everything accepted but not acked before the crash is redelivered first,
    in per-shard order.

    ``key_fn`` / ``policy`` must be the same on every open (routing is code,
    like views); the shard count is checked against ``meta.log``.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        shard_count: int = 1,
        policy: str = "key",
        key_fn: RoutingKeyFunction | None = None,
        views: Sequence[ViewDefinition] = (),
        actions: Mapping[str, Callable[..., Any]] | None = None,
        mode: ExecutionMode = ExecutionMode.GROUPED_AGG,
        max_batch: int = 32,
        queue_capacity: int = 1024,
        sync: str = "flush",
        name: str = "durable",
        service_options: Mapping[str, Any] | None = None,
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._check_meta(shard_count, name)

        self.wals: list[WriteAheadLog] = []
        databases: list[Database] = []
        for index in range(shard_count):
            database, wal = recover_database(
                self.directory / f"shard{index}", name=f"{name}_shard{index}", sync=sync
            )
            databases.append(database)
            self.wals.append(wal)
        self.sharded = ShardedDatabase.from_databases(
            databases, name=name, policy=policy, key_fn=key_fn
        )
        self.server = ActiveViewServer(
            self.sharded,
            mode=mode,
            max_batch=max_batch,
            queue_capacity=queue_capacity,
            service_options=dict(service_options or {}),
        )
        self._resolver = {view.name: view for view in views}
        for action_name, function in (actions or {}).items():
            self.server.register_action(action_name, function)
        self._registry = _RegistryLog(self.directory / DDL_FILE, sync)
        self._registry.replay_into(
            self.server.register_view,
            self.server.create_trigger,
            self._resolver,
        )

        # Outbox + cursors: pending activations and where each named
        # subscriber's consumption stands.  _pending mirrors the outbox file
        # (restored entries + everything accepted since open) and is guarded
        # by _pending_lock because shard workers append concurrently and
        # subscribe() reads it for the redelivery backlog.
        self.outbox = RecordLog(self.directory / OUTBOX_FILE, sync=sync)
        self._pending_lock = threading.Lock()
        self._pending: list[Activation] = [
            activation_from_record(record) for record in self.outbox.replay()
        ]
        if self.outbox.torn_tail:
            self.outbox.trim()
        self.cursors = RecordLog(self.directory / CURSORS_FILE, sync=sync)
        self._cursors: dict[str, dict[int, int]] = {}
        sequences = [0] * shard_count
        for record in self.cursors.replay():
            kind = record.get("kind")
            if kind == "subscribe":
                self._cursors.setdefault(record["sub"], {}).update(
                    {int(shard): seq for shard, seq in record["cursor"].items()}
                )
            elif kind == "ack":
                cursor = self._cursors.setdefault(record["sub"], {})
                shard, seq = record["shard"], record["seq"]
                cursor[shard] = max(cursor.get(shard, 0), seq)
            elif kind == "sequences":
                for shard, seq in record["sequences"].items():
                    sequences[int(shard)] = max(sequences[int(shard)], seq)
            else:
                raise RecoveryError(f"unknown cursor record kind {kind!r}")
        if self.cursors.torn_tail:
            self.cursors.trim()
        for activation in self._pending:
            sequences[activation.shard] = max(
                sequences[activation.shard], activation.sequence
            )
        # Ack cursors are also sequence floors: an acked (shard, seq) must
        # have existed.  This keeps numbering correct even if a crash landed
        # between outbox compaction and the cursor-log rewrite.
        for cursor in self._cursors.values():
            for shard, seq in cursor.items():
                sequences[shard] = max(sequences[shard], seq)
        self.server.seed_sequences(sequences)
        # Per-shard watermark of activations *accepted into the outbox*,
        # maintained under _pending_lock.  It lags the server's sequence
        # counter by exactly the hook-in-flight window, which is what makes
        # it the correct initial cursor for a brand-new subscriber.
        self._accepted: dict[int, int] = {
            shard: seq for shard, seq in enumerate(sequences)
        }
        #: Activations re-enqueued per subscriber name on this open.
        self.redelivered: dict[str, int] = {}

        # Recovery done — attach the durability hooks for new work.
        self._shard_wrappers = self.sharded.add_commit_listener(
            lambda index, kind, payload: self.wals[index].log_event(kind, payload)
        )
        self.server.services[0].add_ddl_listener(self._registry.record)
        self.server.add_activation_hook(self._log_activation)

    # ------------------------------------------------------------------ meta

    def _check_meta(self, shard_count: int, name: str) -> None:
        meta = RecordLog(self.directory / META_FILE, sync="flush")
        records = list(meta.replay())
        if records:
            stored = records[0].get("shard_count")
            if stored != shard_count:
                meta.close()
                raise PersistenceError(
                    f"directory {self.directory} holds a {stored}-shard server; "
                    f"reopen with shard_count={stored} (placement is shard-count "
                    "dependent)"
                )
        else:
            meta.append({"shard_count": shard_count, "name": name})
        meta.close()

    # ------------------------------------------------------------------ durability

    def _log_activation(self, activation: Activation) -> None:
        # Runs on the shard worker thread, before any subscriber delivery:
        # "accepted" means "in the outbox".  The in-memory mirror keeps
        # subscribe()'s backlog computation accurate mid-process.
        with self._pending_lock:
            self.outbox.append(activation_to_record(activation))
            self._pending.append(activation)
            self._accepted[activation.shard] = max(
                self._accepted.get(activation.shard, 0), activation.sequence
            )

    def _on_ack(self, subscriber: str, shard: int, sequence: int) -> None:
        cursor = self._cursors.setdefault(subscriber, {})
        if sequence > cursor.get(shard, 0):
            cursor[shard] = sequence
        self.cursors.append(
            {"kind": "ack", "sub": subscriber, "shard": shard, "seq": sequence}
        )

    def fast_forward(self, name: str, cursor: Mapping[int, int]) -> None:
        """Advance a named subscriber's persisted cursor before resuming.

        Both front ends (TCP and web) let a reconnecting client present the
        per-shard cursor it last acked; replaying it here — *before*
        :meth:`subscribe` computes the backlog — skips redelivery of
        everything at or below those positions.  Positions behind the
        persisted cursor are ignored (cursors only move forward), so a
        stale client cursor can never rewind delivery.
        """
        for shard, sequence in cursor.items():
            self._on_ack(name, int(shard), int(sequence))

    def subscribe(
        self, name: str, capacity: int = 256, *, subscriber: Subscriber | None = None
    ) -> Subscriber:
        """Attach (or resume) a durable named subscription.

        A *known* name (one that subscribed before — in a previous process
        *or* earlier in this one) first receives every accepted activation
        beyond its persisted cursor — the at-least-once redelivery path —
        then new activations as they happen.  The backlog is enqueued
        *before* the subscriber joins live fan-out, so per-shard order holds
        across the hand-off (an activation racing the hand-off may arrive
        twice, which at-least-once permits).  A *new* name starts at the
        current stream position; its subscription (with the current
        sequences as the initial cursor) is recorded so a later recovery
        knows what it has and has not seen.  Acking
        (:meth:`~repro.serving.subscribers.Subscriber.ack`) persists the
        cursor.

        ``subscriber`` optionally injects a pre-built subscriber (the
        network front end passes one whose delivery hands off to its event
        loop).  An injected subscriber's ``_offer`` must be non-blocking;
        in exchange it owns its own overflow policy, so the backlog-fits-
        capacity check is skipped — a refused backlog entry stays unacked
        in the outbox and is simply redelivered on the next resume, which
        is exactly how the net layer pages a large backlog through a
        bounded send buffer across reconnects.
        """
        injected = subscriber is not None
        if subscriber is None:
            subscriber = Subscriber(name, capacity)
        elif subscriber.name != name:
            raise PersistenceError(
                f"injected subscriber is named {subscriber.name!r}, not {name!r}"
            )
        subscriber.on_ack = self._on_ack
        # Holding _pending_lock across cursor/backlog computation + attach
        # closes the gap where a concurrent activation could miss every
        # path: a producer is either before its hook (blocked on this lock —
        # the activation is beyond the cursor we record and will fan out to
        # us live after attach) or past it (already in _pending/_accepted,
        # so covered by the backlog or excluded by an accurate cursor).  An
        # activation whose hook ran but whose fan-out is still in flight can
        # arrive twice — at-least-once permits that.  Lock order (pending ->
        # subscribers) matches the producer path, and the capacity check
        # keeps the _offer loop non-blocking, so no deadlock.
        with self._pending_lock:
            known = name in self._cursors
            if known:
                cursor = self._cursors[name]
                backlog = [
                    activation
                    for activation in self._pending
                    if activation.sequence > cursor.get(activation.shard, 0)
                ]
                if not injected and len(backlog) > capacity:
                    raise PersistenceError(
                        f"subscriber {name!r} has {len(backlog)} activations to "
                        f"redeliver but capacity {capacity}; subscribe with a "
                        "larger capacity"
                    )
                for activation in backlog:
                    subscriber._offer(activation, give_up=lambda: False)
                self.redelivered[name] = len(backlog)
            else:
                # The accepted watermark — not the server's sequence counter,
                # which may already count an activation whose outbox append
                # is still in flight on another thread.
                initial = dict(self._accepted)
                self._cursors[name] = dict(initial)
                self.cursors.append(
                    {"kind": "subscribe", "sub": name, "cursor": initial}
                )
            self.server.attach_subscriber(subscriber)
        return subscriber

    # ------------------------------------------------------------------ registry

    def ensure_view(self, view: ViewDefinition) -> None:
        """Register a view on every shard unless the registry already has it."""
        self._resolver[view.name] = view
        if view.name not in self.server.services[0].views:
            self.server.register_view(view)

    def ensure_trigger(self, definition: str | TriggerSpec) -> TriggerSpec:
        """Create a trigger unless the recovered registry already has it."""
        from repro.core.language import parse_trigger

        spec = parse_trigger(definition) if isinstance(definition, str) else definition
        existing = {existing.name: existing for existing in self.server.triggers}
        if spec.name in existing:
            return existing[spec.name]
        return self.server.create_trigger(spec)

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> "DurableServer":
        """Start the shard workers; returns ``self`` for chaining."""
        self.server.start()
        return self

    def stop(self, *, drain: bool = True) -> None:
        """Stop the shard workers (see :meth:`ActiveViewServer.stop`)."""
        self.server.stop(drain=drain)

    def __enter__(self) -> "DurableServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    def snapshot(self) -> None:
        """Checkpoint everything: per-shard snapshots + log compaction.

        Drains the queues first (quiesce), snapshots each shard and truncates
        its WAL, compacts the DDL log to the current registry, drops outbox
        entries every known subscriber has acked, and rewrites the cursor log
        to its compact form (current cursors + sequence floor).  Safe to call
        while the server is running as long as no client is submitting
        concurrently (the operational contract — see docs/operations.md).
        """
        if self.server._running:
            self.server.drain()
        for index, wal in enumerate(self.wals):
            database = self.sharded.shards[index]
            with database._lock:
                snapshot = Snapshot.capture(database, wal_lsn=wal.last_lsn)
            snapshot.write(self.directory / f"shard{index}" / SNAPSHOT_FILE)
            wal.truncate()
        service = self.server.services[0]
        self._registry.compact(service.views, list(service.triggers))
        # Keep only activations some known subscriber still has not acked.
        # With no subscribers at all, nothing retained is ever consumable
        # (a future new name starts at the accepted watermark), so the floor
        # is the watermark itself — otherwise the outbox would grow forever.
        floor: dict[int, int] = {}
        for shard in range(self.sharded.shard_count):
            acked = [cursor.get(shard, 0) for cursor in self._cursors.values()]
            floor[shard] = min(acked) if acked else self._accepted.get(shard, 0)
        # Cursor/sequence state is rewritten BEFORE the outbox is compacted:
        # a crash between the two leaves acked entries in the outbox (cursors
        # filter them out on redelivery — harmless), whereas the opposite
        # order could lose the sequence floor and renumber future
        # activations into already-acked territory.
        cursor_records: list[dict] = [
            {
                "kind": "sequences",
                "sequences": {shard: seq for shard, seq in enumerate(self.server.sequences)},
            }
        ]
        cursor_records.extend(
            {"kind": "subscribe", "sub": sub, "cursor": dict(cursor)}
            for sub, cursor in self._cursors.items()
        )
        self.cursors.rewrite(cursor_records)
        with self._pending_lock:
            retained = [
                activation
                for activation in _dedupe_activations(self._pending)
                if activation.sequence > floor.get(activation.shard, 0)
            ]
            self.outbox.rewrite(activation_to_record(a) for a in retained)
            self._pending = retained

    def durability_report(self) -> dict:
        """Wire-encodable snapshot of the outbox and cursor state.

        Surfaced by the network front end's ``stats`` frame so an operator
        can see, per durable subscriber, how far its cursor lags the
        accepted watermark (the redelivery debt a crash would incur).
        """
        with self._pending_lock:
            pending = len(self._pending)
            accepted = dict(self._accepted)
            cursors = {
                name: dict(cursor) for name, cursor in list(self._cursors.items())
            }
        return {
            "outbox_pending": pending,
            "accepted": accepted,
            "cursors": cursors,
            "redelivered": dict(self.redelivered),
        }

    def close(self) -> None:
        """Stop (draining) and close every durable file."""
        self.stop(drain=True)
        self.sharded.remove_commit_listeners(self._shard_wrappers)
        self.server.services[0].remove_ddl_listener(self._registry.record)
        self.server.remove_activation_hook(self._log_activation)
        for wal in self.wals:
            wal.close()
        self._registry.log.close()
        self.outbox.close()
        self.cursors.close()

    # ------------------------------------------------------------------ passthrough

    def submit(self, statement: Statement):
        """Enqueue a statement on its owning shard (see ``ActiveViewServer.submit``)."""
        return self.server.submit(statement)

    def execute(self, statement: Statement, timeout: float | None = 30.0):
        """Submit and wait (closed-loop client call)."""
        return self.server.execute(statement, timeout)

    def drain(self) -> None:
        """Block until every queued statement has executed."""
        self.server.drain()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DurableServer({self.directory}, shards={self.sharded.shard_count}, "
            f"pending={len(self._pending)})"
        )


def _dedupe_activations(activations: Iterable[Activation]) -> list[Activation]:
    """Drop duplicate (shard, sequence) entries, keeping first occurrence."""
    seen: set[tuple[int, int]] = set()
    result: list[Activation] = []
    for activation in activations:
        key = (activation.shard, activation.sequence)
        if key in seen:
            continue
        seen.add(key)
        result.append(activation)
    return result
