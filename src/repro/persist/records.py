"""Conversions between engine objects and codec-encodable log records.

Everything the durability layer writes is a plain dict of scalars, lists and
dicts (see :mod:`repro.persist.codec`); this module is the single place that
knows how engine objects map onto those records, so the WAL, the snapshot,
and the outbox all share one vocabulary:

* table schemas ↔ ``{"name", "columns", "primary_key", "foreign_keys",
  "unique"}``;
* net coalesced deltas ↔ ``{"table", "event", "inserted", "deleted"}`` with
  rows as value lists in schema column order;
* XML trigger specs ↔ their declarative fields (name, event, view, path,
  condition text, action call) — the whole translation pipeline re-derives
  SQL triggers, groups, and constants tables from these at recovery;
* activations ↔ scalars plus the OLD/NEW nodes serialized as XML text
  (re-parsed on redelivery).
"""

from __future__ import annotations

from typing import Any, Iterable, MutableMapping, Sequence

from repro.core.trigger import TriggerSpec
from repro.relational.dml import CoalescedDelta
from repro.relational.schema import Column, ForeignKey, TableSchema, UniqueConstraint
from repro.relational.types import DataType
from repro.relational.triggers import TriggerEvent
from repro.serving.subscribers import Activation
from repro.xmlmodel.parse import parse_xml
from repro.xmlmodel.serialize import serialize

__all__ = [
    "schema_to_record",
    "schema_from_record",
    "rows_to_lists",
    "delta_to_record",
    "spec_to_record",
    "spec_from_record",
    "activation_to_record",
    "activation_from_record",
]


# ------------------------------------------------------------------ schemas


def schema_to_record(schema: TableSchema) -> dict:
    """Serialize a table schema (columns, keys, constraints)."""
    return {
        "name": schema.name,
        "columns": [
            [column.name, column.dtype.value, column.nullable]
            for column in schema.columns
        ],
        "primary_key": list(schema.primary_key),
        "foreign_keys": [
            [list(fk.columns), fk.parent_table, list(fk.parent_columns)]
            for fk in schema.foreign_keys
        ],
        "unique": [list(constraint.columns) for constraint in schema.unique_constraints],
    }


def schema_from_record(record: dict) -> TableSchema:
    """Rebuild a table schema from its record."""
    return TableSchema(
        record["name"],
        [
            Column(name, DataType(dtype), nullable)
            for name, dtype, nullable in record["columns"]
        ],
        primary_key=record["primary_key"] or None,
        foreign_keys=[
            ForeignKey(tuple(columns), parent, tuple(parent_columns))
            for columns, parent, parent_columns in record["foreign_keys"]
        ],
        unique=[UniqueConstraint(tuple(columns)) for columns in record["unique"]],
    )


# ------------------------------------------------------------------ deltas


def rows_to_lists(rows: Iterable[Sequence[Any]]) -> list[list[Any]]:
    """Rows as plain value lists (schema column order)."""
    return [list(row) for row in rows]


def delta_to_record(delta: CoalescedDelta) -> dict:
    """Serialize one net (table, event) delta slice."""
    return {
        "table": delta.table,
        "event": delta.event,
        "inserted": rows_to_lists(delta.inserted.rows),
        "deleted": rows_to_lists(delta.deleted.rows),
    }


# ------------------------------------------------------------------ trigger specs


def spec_to_record(spec: TriggerSpec) -> dict:
    """Serialize an XML trigger spec's declarative fields."""
    return {
        "name": spec.name,
        "event": spec.event.value,
        "view": spec.view,
        "path": list(spec.path),
        "condition": spec.condition,
        "action_name": spec.action_name,
        "action_args": list(spec.action_args),
        "source": spec.source,
    }


def spec_from_record(record: dict) -> TriggerSpec:
    """Rebuild a trigger spec; ``create_trigger`` re-derives everything else."""
    return TriggerSpec(
        name=record["name"],
        event=TriggerEvent(record["event"]),
        view=record["view"],
        path=tuple(record["path"]),
        condition=record["condition"],
        action_name=record["action_name"],
        action_args=tuple(record["action_args"]),
        source=record["source"],
    )


# ------------------------------------------------------------------ activations


def activation_to_record(activation: Activation) -> dict:
    """Serialize an activation; OLD/NEW nodes become XML text."""
    return {
        "shard": activation.shard,
        "sequence": activation.sequence,
        "trigger": activation.trigger,
        "view": activation.view,
        "path": list(activation.path),
        "event": activation.event.value,
        "key": list(activation.key),
        "old": serialize(activation.old_node) if activation.old_node is not None else None,
        "new": serialize(activation.new_node) if activation.new_node is not None else None,
    }


#: Bound on a caller-supplied node cache (see ``activation_from_record``).
NODE_CACHE_LIMIT = 1024


def _parse_node(source: str, cache: MutableMapping[str, Any] | None):
    """Parse a serialized node, memoized in ``cache`` when one is given.

    A fan-out consumer decodes the *same* serialized node once per
    redelivery (and a many-client process once per client); parsing
    dominates activation decode by orders of magnitude, so sharing the
    parsed node is the decode-side mirror of the server's shared encode
    cache.  Sharing is safe for the same reason in-process subscribers
    share one :class:`Activation`: delivered nodes are read-only snapshots.
    """
    if cache is None:
        return parse_xml(source)
    node = cache.get(source)
    if node is None:
        node = parse_xml(source)
        if len(cache) >= NODE_CACHE_LIMIT:
            cache.pop(next(iter(cache)))
        cache[source] = node
    return node


def activation_from_record(
    record: dict, *, node_cache: MutableMapping[str, Any] | None = None
) -> Activation:
    """Rebuild an activation, re-parsing (or cache-sharing) the nodes."""
    return Activation(
        shard=record["shard"],
        sequence=record["sequence"],
        trigger=record["trigger"],
        view=record["view"],
        path=tuple(record["path"]),
        event=TriggerEvent(record["event"]),
        key=tuple(record["key"]),
        old_node=(
            _parse_node(record["old"], node_cache)
            if record["old"] is not None else None
        ),
        new_node=(
            _parse_node(record["new"], node_cache)
            if record["new"] is not None else None
        ),
    )
