"""Crash recovery: rebuild a database from snapshot + WAL replay.

Recovery is a pure fold over the durable files of one database directory::

    state  =  snapshot (if any)  ⊕  WAL records with lsn > snapshot.wal_lsn

Replay applies each record *directly to table storage* — logged ``apply``
records carry net row deltas, not statement text, so there are no predicates
to re-evaluate and **no trigger ever fires during replay** (the paper's
trigger pipeline reacts to new work; recovery is the reconstruction of old,
already-reacted-to work).  Re-firing is the job of the durable activation
outbox (:mod:`repro.persist.outbox`), which redelivers
accepted-but-unacknowledged activations to subscribers after restart.

The registry (views / XML triggers) is rehydrated separately from the DDL
log by :class:`repro.persist.DurableService` /
:class:`repro.persist.DurableServer`; this module only rebuilds relational
state.
"""

from __future__ import annotations

import os
import pathlib

from repro.errors import RecoveryError
from repro.persist.records import schema_from_record
from repro.persist.snapshot import Snapshot
from repro.persist.wal import WriteAheadLog
from repro.relational.database import Database
from repro.relational.table import Table

__all__ = ["recover_database", "WAL_FILE", "SNAPSHOT_FILE", "DDL_FILE"]

#: File names inside a durable database directory.
WAL_FILE = "wal.log"
SNAPSHOT_FILE = "snapshot.bin"
DDL_FILE = "ddl.log"


def recover_database(
    directory: str | os.PathLike,
    *,
    name: str | None = None,
    sync: str = "flush",
) -> tuple[Database, WriteAheadLog]:
    """Rebuild a database from ``directory``; returns ``(database, wal)``.

    * With neither snapshot nor WAL present the directory is initialized
      empty (first boot).
    * A torn WAL tail (crash mid-append) is detected, reported via
      ``wal.torn_tail`` during replay, and trimmed so future appends extend
      the intact prefix.
    * The returned WAL is **not** yet attached to the database — callers that
      want continued logging call ``wal.attach(database)`` once their own
      recovery steps (registry rehydration) are done.  The WAL's
      :attr:`~repro.persist.wal.WriteAheadLog.last_lsn` continues from the
      recovered history.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    snapshot_path = directory / SNAPSHOT_FILE
    if snapshot_path.exists():
        snapshot = Snapshot.load(snapshot_path)
        database = snapshot.restore(name)
        floor = snapshot.wal_lsn
    else:
        database = Database(name=name or directory.name)
        floor = 0

    wal = WriteAheadLog(directory / WAL_FILE, sync=sync)
    last_lsn = floor
    enforce = database.enforce_foreign_keys
    database.enforce_foreign_keys = False  # replayed rows were already validated
    try:
        for record in wal.replay():
            lsn = record.get("lsn", 0)
            if lsn <= floor:
                # Crash between snapshot write and WAL truncation: the log
                # still holds records the snapshot already includes.
                continue
            replay_record(database, record)
            last_lsn = max(last_lsn, lsn)
    finally:
        database.enforce_foreign_keys = enforce
    if wal.torn_tail:
        wal.trim()
    wal.last_lsn = last_lsn
    return database, wal


def replay_record(database: Database, record: dict) -> None:
    """Apply one WAL record to a database (triggers never fire)."""
    kind = record.get("kind")
    if kind == "create_table":
        database.create_table(schema_from_record(record["schema"]))
    elif kind == "drop_table":
        database.drop_table(record["table"])
    elif kind == "create_index":
        database.create_index(record["table"], record["columns"], record["name"])
    elif kind == "load":
        table = database.table(record["table"])
        for row in record["rows"]:
            table.insert_row(tuple(row))
    elif kind == "apply":
        for delta in record["deltas"]:
            _replay_delta(database, delta)
    else:
        raise RecoveryError(f"unknown WAL record kind {kind!r}")


def _replay_delta(database: Database, delta: dict) -> None:
    """Apply one net (table, event) slice: remove old versions, add new ones."""
    table = database.table(delta["table"])
    schema = table.schema
    if schema.primary_key:
        # Net slices are key-disjoint: deleting the old versions first makes
        # UPDATE (same key) and DELETE+INSERT (key change) both land right.
        for row in delta["deleted"]:
            if table.delete_key(schema.key_of(tuple(row))) is None:
                raise RecoveryError(
                    f"replay: {delta['table']} row {tuple(row)!r} to delete not found"
                )
        for row in delta["inserted"]:
            table.insert_row(tuple(row))
    else:
        # Keyless tables have bag semantics; their logged slices are the raw
        # transition rows, so remove exactly one instance per deleted row.
        for row in delta["deleted"]:
            _delete_one_instance(table, tuple(row))
        for row in delta["inserted"]:
            table.insert_row(tuple(row))


def _delete_one_instance(table: Table, target: tuple) -> None:
    columns = table.schema.column_names
    matched: list[bool] = []

    def first_match(mapping: dict) -> bool:
        if matched:
            return False
        if tuple(mapping[column] for column in columns) == target:
            matched.append(True)
            return True
        return False

    if not table.delete_where(first_match):
        raise RecoveryError(
            f"replay: {table.name} row {target!r} to delete not found"
        )
