"""Point-in-time snapshots of one database's full engine state.

A :class:`Snapshot` captures everything a
:class:`~repro.relational.database.Database` holds — every table's schema,
secondary index definitions, and rows, plus the foreign-key enforcement flag
— together with the WAL position (``wal_lsn``) the capture is consistent
with.  Snapshots bound recovery time: replay only has to process WAL records
*beyond* the snapshot's LSN, and :meth:`repro.persist.DurableService.snapshot`
truncates the log once the snapshot is safely on disk.

Writes are crash-atomic: the file is written to a temporary sibling, flushed
and fsynced, then :func:`os.replace`\\ d over the target — a crash mid-write
leaves the previous snapshot intact, and the LSN bookkeeping makes the
overlapping WAL suffix harmless to replay (idempotence by skipping
``lsn <= snapshot.wal_lsn``).

The registry (views, XML triggers) deliberately lives in the DDL log rather
than here: views and actions are *code*, so recovery re-registers them from
caller-supplied definitions and replays ``create_trigger`` records — which
re-derives SQL triggers, groups, and grouping constants tables bit-for-bit
(they are pure functions of the specs).  See ``docs/persistence.md``.
"""

from __future__ import annotations

import os
import pathlib
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any

from repro.errors import PersistenceError, RecoveryError
from repro.persist.codec import decode_value, encode_value
from repro.persist.records import rows_to_lists, schema_from_record, schema_to_record
from repro.relational.database import Database

__all__ = ["Snapshot"]

_MAGIC = b"RPSN"
_VERSION = 1
_HEADER = struct.Struct(">4sII")  # magic, version, crc32 of the payload


@dataclass
class Snapshot:
    """Serialized engine state: tables, indexes, rows, and the WAL position."""

    database_name: str
    tables: list[dict] = field(default_factory=list)
    enforce_foreign_keys: bool = True
    #: Highest WAL LSN whose effects this snapshot includes.
    wal_lsn: int = 0
    #: Extra state stored by higher layers (e.g. per-shard sequences).
    extra: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ capture

    @classmethod
    def capture(cls, database: Database, *, wal_lsn: int = 0, extra: dict | None = None) -> "Snapshot":
        """Capture a database's full state.

        The caller must quiesce the database (hold its single-writer role)
        for the duration — :meth:`repro.persist.DurableService.snapshot` does
        this by capturing under the database lock.
        """
        tables = []
        for name in database.table_names():
            table = database.table(name)
            tables.append(
                {
                    "schema": schema_to_record(table.schema),
                    "indexes": [
                        [index_name, list(columns)]
                        for index_name, columns in table.index_definitions()
                        if not index_name.startswith("__unique_")
                    ],
                    "rows": rows_to_lists(table.rows()),
                }
            )
        return cls(
            database_name=database.name,
            tables=tables,
            enforce_foreign_keys=database.enforce_foreign_keys,
            wal_lsn=wal_lsn,
            extra=dict(extra or {}),
        )

    # ------------------------------------------------------------------ restore

    def restore(self, name: str | None = None) -> Database:
        """Rebuild a fresh database holding exactly the captured state."""
        database = Database(name=name or self.database_name)
        database.enforce_foreign_keys = False  # rows were already validated
        for entry in self.tables:
            schema = schema_from_record(entry["schema"])
            table = database.create_table(schema)
            for index_name, columns in entry["indexes"]:
                table.create_index(index_name, columns)
            for row in entry["rows"]:
                table.insert_row(tuple(row))
        database.enforce_foreign_keys = self.enforce_foreign_keys
        return database

    # ------------------------------------------------------------------ files

    def write(self, path: str | os.PathLike) -> None:
        """Write the snapshot crash-atomically (tmp + fsync + rename)."""
        path = pathlib.Path(path)
        payload = encode_value(
            {
                "database_name": self.database_name,
                "tables": self.tables,
                "enforce_foreign_keys": self.enforce_foreign_keys,
                "wal_lsn": self.wal_lsn,
                "extra": self.extra,
            }
        )
        header = _HEADER.pack(_MAGIC, _VERSION, zlib.crc32(payload))
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(header + payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "Snapshot":
        """Load a snapshot, verifying magic, version, and checksum."""
        data = pathlib.Path(path).read_bytes()
        if len(data) < _HEADER.size:
            raise RecoveryError(f"snapshot {path} is truncated")
        magic, version, crc = _HEADER.unpack_from(data, 0)
        if magic != _MAGIC:
            raise RecoveryError(f"snapshot {path} has bad magic {magic!r}")
        if version != _VERSION:
            raise RecoveryError(f"snapshot {path} has unsupported version {version}")
        payload = data[_HEADER.size:]
        if zlib.crc32(payload) != crc:
            raise RecoveryError(f"snapshot {path} failed its checksum")
        try:
            record: Any = decode_value(payload)
        except PersistenceError as error:
            raise RecoveryError(f"snapshot {path} is undecodable: {error}") from error
        return cls(
            database_name=record["database_name"],
            tables=record["tables"],
            enforce_foreign_keys=record["enforce_foreign_keys"],
            wal_lsn=record["wal_lsn"],
            extra=record["extra"],
        )

    @property
    def row_count(self) -> int:
        """Total rows captured across tables."""
        return sum(len(entry["rows"]) for entry in self.tables)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Snapshot({self.database_name!r}, tables={len(self.tables)}, "
            f"rows={self.row_count}, wal_lsn={self.wal_lsn})"
        )
