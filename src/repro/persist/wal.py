"""Framed append-only record logs and the per-database write-ahead log.

:class:`RecordLog` is the shared storage primitive: an append-only file of
length- and CRC-framed records (format below), with a configurable sync
policy and torn-tail detection on replay.  :class:`WriteAheadLog` specializes
it for one :class:`~repro.relational.database.Database`: a commit listener
converts every committed change (catalog DDL, bulk loads, net statement/batch
deltas) into a record and appends it — *after* the change is applied in
memory and *before* any trigger fires, so the log is always a prefix-accurate
history of acknowledged work.

Frame format (everything after the header is the
:mod:`repro.persist.codec`-encoded record)::

    ┌────────────┬────────────┬─────────────────────────┐
    │ length: u32│ crc32: u32 │ payload (length bytes)  │
    │ big-endian │ of payload │ codec-encoded dict      │
    └────────────┴────────────┴─────────────────────────┘

A crash can tear at most the *last* frame (appends are sequential), so
replay stops at the first incomplete or CRC-failing frame and reports it via
:attr:`RecordLog.torn_tail` — a torn record corresponds to work that was
never acknowledged, which is exactly the crash-consistency contract
``docs/persistence.md`` spells out.

Every record carries an ``lsn`` (log sequence number).  Snapshots remember
the highest LSN they include, and replay skips records at or below it, so a
crash *between* writing a snapshot and truncating the log never double
applies (see :meth:`WriteAheadLog.truncate`).
"""

from __future__ import annotations

import os
import pathlib
import struct
import threading
import zlib
from typing import Any, Callable, Iterator

from repro.errors import PersistenceError
from repro.persist.codec import decode_value, encode_value
from repro.persist.records import (
    delta_to_record,
    rows_to_lists,
    schema_to_record,
)
from repro.relational.database import Database

__all__ = ["RecordLog", "WriteAheadLog", "SYNC_POLICIES"]

_HEADER = struct.Struct(">II")

#: Durability/latency trade-off for appends (see docs/operations.md):
#: ``"none"`` buffers in the process, ``"flush"`` pushes every record to the
#: OS page cache (survives a process crash — the default), ``"fsync"`` forces
#: the record to stable storage (survives power loss) before returning.
SYNC_POLICIES = ("none", "flush", "fsync")


class RecordLog:
    """An append-only file of framed, CRC-checked, codec-encoded records."""

    def __init__(self, path: str | os.PathLike, *, sync: str = "flush") -> None:
        if sync not in SYNC_POLICIES:
            raise PersistenceError(f"unknown sync policy {sync!r} (use {SYNC_POLICIES})")
        self.path = pathlib.Path(path)
        self.sync = sync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._file = open(self.path, "ab")
        #: True when the last replay hit an incomplete/corrupt tail frame.
        self.torn_tail = False
        #: Records appended through this handle (not counting replayed ones).
        self.appended = 0
        #: Byte length of the intact frame prefix found by the last replay.
        self._valid_bytes = 0

    # ------------------------------------------------------------------ writing

    def append(self, record: dict) -> None:
        """Append one record (a dict of codec-encodable values)."""
        payload = encode_value(record)
        frame = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        with self._lock:
            self._file.write(frame)
            if self.sync != "none":
                self._file.flush()
                if self.sync == "fsync":
                    os.fsync(self._file.fileno())
            self.appended += 1

    def truncate(self) -> None:
        """Discard every record (the file becomes empty)."""
        with self._lock:
            self._file.close()
            self._file = open(self.path, "wb")
            self._file.close()
            self._file = open(self.path, "ab")

    def trim(self) -> None:
        """Cut a torn tail back to the last intact frame boundary.

        Call after a :meth:`replay` that reported :attr:`torn_tail`;
        otherwise future appends would land *behind* the garbage and be
        unreachable to every future replay.
        """
        with self._lock:
            self._file.close()
            os.truncate(self.path, self._valid_bytes)
            self._file = open(self.path, "ab")
            self.torn_tail = False

    def rewrite(self, records) -> None:
        """Atomically replace the log's contents with ``records`` (compaction)."""
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "wb") as handle:
            for record in records:
                payload = encode_value(record)
                handle.write(_HEADER.pack(len(payload), zlib.crc32(payload)) + payload)
            handle.flush()
            os.fsync(handle.fileno())
        with self._lock:
            self._file.close()
            os.replace(tmp, self.path)
            self._file = open(self.path, "ab")

    def close(self) -> None:
        """Flush and close the underlying file."""
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                self._file.close()

    # ------------------------------------------------------------------ reading

    def replay(self) -> Iterator[dict]:
        """Yield every intact record in append order.

        Stops (without raising) at the first torn frame — an incomplete
        header, a payload shorter than its declared length, or a CRC
        mismatch — and sets :attr:`torn_tail`.  Appends are sequential, so a
        torn frame can only be the tail left by a crash mid-append; the
        records before it are exactly the acknowledged history.
        """
        self.torn_tail = False
        with self._lock:
            self._file.flush()
        data = self.path.read_bytes()
        offset = 0
        self._valid_bytes = 0
        while offset < len(data):
            if offset + _HEADER.size > len(data):
                self.torn_tail = True
                return
            length, crc = _HEADER.unpack_from(data, offset)
            start = offset + _HEADER.size
            end = start + length
            if end > len(data) or zlib.crc32(data[start:end]) != crc:
                self.torn_tail = True
                return
            yield decode_value(data[start:end])
            offset = end
            self._valid_bytes = offset

    @property
    def byte_size(self) -> int:
        """Current size of the log file in bytes."""
        with self._lock:
            self._file.flush()
        return self.path.stat().st_size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.path}, sync={self.sync})"


class WriteAheadLog(RecordLog):
    """The write-ahead log of one database (one per shard when sharded).

    Attach with :meth:`attach`; every committed change then appends one
    record:

    * ``{"kind": "create_table", "schema": {...}}`` — catalog DDL, with the
      full schema (columns, primary key, foreign keys, unique constraints);
    * ``{"kind": "drop_table", "table": name}``;
    * ``{"kind": "create_index", "table": t, "columns": [...], "name": n}``;
    * ``{"kind": "load", "table": t, "rows": [...]}`` — a trigger-bypassing
      bulk load;
    * ``{"kind": "apply", "deltas": [...]}`` — the **net coalesced deltas**
      of one committed statement or batch (the same
      :class:`~repro.relational.dml.CoalescedDelta` slices the triggers fire
      on), recorded as per-(table, event) inserted/deleted row lists.

    Logging net deltas rather than statement text makes replay deterministic
    (no predicates to re-evaluate) and makes one WAL record per *batch*, so
    the batch engine's amortization extends to durability.

    Every record carries an ``lsn``; :attr:`last_lsn` survives truncation so
    snapshot bookkeeping can skip already-included records on replay.
    """

    def __init__(self, path: str | os.PathLike, *, sync: str = "flush") -> None:
        super().__init__(path, sync=sync)
        self._bound: list[tuple[Database, Callable[[str, Any], None]]] = []
        #: LSN of the most recently appended record (0 = none yet).  Set from
        #: the replayed history by :func:`repro.persist.recovery.recover_database`.
        self.last_lsn = 0

    def append(self, record: dict) -> None:
        """Append one record, stamping the next LSN."""
        with self._lock:
            self.last_lsn += 1
            record = dict(record)
            record["lsn"] = self.last_lsn
        super().append(record)

    def truncate(self) -> None:
        """Drop all records but keep numbering (LSNs never restart)."""
        super().truncate()

    # ------------------------------------------------------------------ binding

    def attach(self, database: Database) -> None:
        """Start logging every committed change of ``database``."""

        def listener(kind: str, payload: Any) -> None:
            self.log_event(kind, payload)

        database.add_commit_listener(listener)
        self._bound.append((database, listener))

    def detach(self) -> None:
        """Stop logging (idempotent)."""
        for database, listener in self._bound:
            database.remove_commit_listener(listener)
        self._bound = []

    def log_event(self, kind: str, payload: Any) -> None:
        """Convert one commit-listener event into a record and append it."""
        if kind == "create_table":
            self.append({"kind": kind, "schema": schema_to_record(payload)})
        elif kind == "drop_table":
            self.append({"kind": kind, "table": payload})
        elif kind == "create_index":
            table, columns, name = payload
            self.append(
                {"kind": kind, "table": table, "columns": list(columns), "name": name}
            )
        elif kind == "load":
            table, rows = payload
            self.append({"kind": kind, "table": table, "rows": rows_to_lists(rows)})
        elif kind == "apply":
            self.append(
                {"kind": kind, "deltas": [delta_to_record(delta) for delta in payload]}
            )
        else:  # pragma: no cover - future event kinds must be handled explicitly
            raise PersistenceError(f"unknown commit event kind {kind!r}")
