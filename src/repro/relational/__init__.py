"""In-memory relational engine substrate.

This package implements the relational database features that the paper
("Triggers over XML Views of Relational Data", ICDE 2005) relies on for its
translation scheme (Section 2.3):

* typed tables with primary keys, unique constraints, and foreign keys;
* hash indexes on key and join columns (Section 6.1: "built appropriate
  indices on the key columns and other join columns");
* ``INSERT`` / ``UPDATE`` / ``DELETE`` statements executed at *statement*
  granularity;
* statement-level ``AFTER`` triggers with access to the before-update and
  after-update transition tables (the paper's ``∇table`` / ``Δtable``,
  i.e. ``OLD_TABLE`` / ``NEW_TABLE`` in SQL:1999 / DB2 syntax).

The engine is deliberately self-contained: the paper evaluates on IBM DB2,
which is unavailable here, and SQLite only offers row-level triggers without
transition tables.  Building the substrate from scratch lets the generated
SQL triggers run exactly as the paper describes.
"""

from repro.relational.types import DataType, coerce_value, type_of_value
from repro.relational.schema import Column, ForeignKey, TableSchema, UniqueConstraint
from repro.relational.table import Table, TransitionTable
from repro.relational.dml import (
    Batch,
    BatchResult,
    BulkLoad,
    CoalescedDelta,
    DeleteStatement,
    DeltaCoalescer,
    InsertStatement,
    Statement,
    StatementResult,
    UpdateStatement,
)
from repro.relational.triggers import StatementTrigger, TriggerContext, TriggerEvent
from repro.relational.database import Database
from repro.relational.sharded import ShardRouter, ShardedDatabase, stable_hash

__all__ = [
    "Batch",
    "BatchResult",
    "BulkLoad",
    "CoalescedDelta",
    "Column",
    "DataType",
    "Database",
    "DeleteStatement",
    "DeltaCoalescer",
    "ForeignKey",
    "InsertStatement",
    "ShardRouter",
    "ShardedDatabase",
    "Statement",
    "StatementResult",
    "StatementTrigger",
    "Table",
    "TableSchema",
    "TransitionTable",
    "TriggerContext",
    "TriggerEvent",
    "UniqueConstraint",
    "UpdateStatement",
    "coerce_value",
    "stable_hash",
    "type_of_value",
]
