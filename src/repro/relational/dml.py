"""Data-manipulation statements executed at statement granularity.

The paper's translated triggers are SQL *statement-level* triggers: one
firing per INSERT / UPDATE / DELETE statement, with transition tables holding
every row the statement touched (Section 2.3, Section 3.2).  These statement
objects are therefore the unit of execution for :class:`repro.relational.Database`.

Predicates and assignments are expressed as Python callables over row
dictionaries; the SQL front end (``repro.sql``) compiles SQL text down to
these same statement objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.relational.table import TransitionTable

__all__ = [
    "Statement",
    "InsertStatement",
    "UpdateStatement",
    "DeleteStatement",
    "StatementResult",
]

RowPredicate = Callable[[dict[str, Any]], bool]
RowAssignment = Callable[[dict[str, Any]], Mapping[str, Any]]


class Statement:
    """Base class for DML statements."""

    table: str


@dataclass
class InsertStatement(Statement):
    """``INSERT INTO table VALUES ...`` — one or more rows in a single statement."""

    table: str
    rows: Sequence[Mapping[str, Any] | Sequence[Any]]

    def __post_init__(self) -> None:
        self.rows = list(self.rows)


@dataclass
class UpdateStatement(Statement):
    """``UPDATE table SET ... WHERE ...``.

    ``assignments`` may be either a plain mapping of column name to constant
    value, or a callable computing the new values from the current row dict
    (which allows expressions such as ``price = price * 0.9``).
    ``where`` is a predicate over row dicts; ``None`` means all rows.
    ``keys`` optionally restricts the statement to rows with the given
    primary-key values — the engine then locates them through the primary-key
    map instead of scanning (the fast path a SQL ``WHERE pk = ?`` would take).
    """

    table: str
    assignments: Mapping[str, Any] | RowAssignment
    where: RowPredicate | None = None
    keys: Sequence[tuple] | None = None

    def assignment_fn(self) -> RowAssignment:
        """Normalize ``assignments`` into a callable."""
        if callable(self.assignments):
            return self.assignments
        constant = dict(self.assignments)
        return lambda _row: constant

    def predicate_fn(self) -> RowPredicate:
        """Normalize ``where`` into a callable (defaults to all rows)."""
        if self.where is None:
            return lambda _row: True
        return self.where

    def key_set(self) -> set[tuple] | None:
        """The primary-key fast-path targets, normalized to tuples."""
        if self.keys is None:
            return None
        return {tuple(key) if isinstance(key, (tuple, list)) else (key,) for key in self.keys}


@dataclass
class DeleteStatement(Statement):
    """``DELETE FROM table WHERE ...`` (``where=None`` deletes every row).

    ``keys`` optionally restricts the statement to rows with the given
    primary-key values (see :class:`UpdateStatement`).
    """

    table: str
    where: RowPredicate | None = None
    keys: Sequence[tuple] | None = None

    def predicate_fn(self) -> RowPredicate:
        """Normalize ``where`` into a callable (defaults to all rows)."""
        if self.where is None:
            return lambda _row: True
        return self.where

    def key_set(self) -> set[tuple] | None:
        """The primary-key fast-path targets, normalized to tuples."""
        if self.keys is None:
            return None
        return {tuple(key) if isinstance(key, (tuple, list)) else (key,) for key in self.keys}


@dataclass
class StatementResult:
    """Outcome of executing a single DML statement.

    ``inserted`` is the paper's ``Δtable`` (``NEW_TABLE``), ``deleted`` is
    ``∇table`` (``OLD_TABLE``).  For an INSERT statement ``deleted`` is empty;
    for a DELETE, ``inserted`` is empty; for an UPDATE, both hold the
    before/after versions of every matched row (even rows whose values did
    not change — see Definition 5 and Appendix F.1).
    """

    table: str
    event: "str"
    inserted: TransitionTable
    deleted: TransitionTable
    rowcount: int = 0
    fired_sql_triggers: list[str] = field(default_factory=list)
    fired_xml_triggers: list[Any] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.rowcount:
            self.rowcount = max(len(self.inserted), len(self.deleted))
