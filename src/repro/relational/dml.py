"""Data-manipulation statements executed at statement (or batch) granularity.

The translated triggers of "Triggers over XML Views of Relational Data"
(ICDE 2005) are SQL *statement-level* triggers: one firing per INSERT /
UPDATE / DELETE statement, with transition tables holding every row the
statement touched (Section 2.3, Section 3.2).  These statement objects are
therefore the unit of execution for :class:`repro.relational.Database`.

Because the trigger bodies are fully set-oriented (they only ever see the
transition tables, never individual rows), a *sequence* of statements can be
executed as one set-at-a-time unit: :class:`Batch` groups statements,
:class:`DeltaCoalescer` folds their per-statement transition tables into one
net ``Δtable`` / ``∇table`` pair per (table, event), and
:meth:`repro.relational.Database.execute_many` fires each statement trigger
once per (table, event) with the combined delta tables instead of once per
statement.

Predicates and assignments are expressed as Python callables over row
dictionaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.relational.table import TransitionTable

__all__ = [
    "Statement",
    "InsertStatement",
    "UpdateStatement",
    "DeleteStatement",
    "StatementResult",
    "Batch",
    "BulkLoad",
    "CoalescedDelta",
    "DeltaCoalescer",
    "BatchResult",
]

RowPredicate = Callable[[dict[str, Any]], bool]
RowAssignment = Callable[[dict[str, Any]], Mapping[str, Any]]


class Statement:
    """Base class for DML statements."""

    table: str


@dataclass
class InsertStatement(Statement):
    """``INSERT INTO table VALUES ...`` — one or more rows in a single statement."""

    table: str
    rows: Sequence[Mapping[str, Any] | Sequence[Any]]

    def __post_init__(self) -> None:
        self.rows = list(self.rows)


@dataclass
class UpdateStatement(Statement):
    """``UPDATE table SET ... WHERE ...``.

    ``assignments`` may be either a plain mapping of column name to constant
    value, or a callable computing the new values from the current row dict
    (which allows expressions such as ``price = price * 0.9``).
    ``where`` is a predicate over row dicts; ``None`` means all rows.
    ``keys`` optionally restricts the statement to rows with the given
    primary-key values — the engine then locates them through the primary-key
    map instead of scanning (the fast path a SQL ``WHERE pk = ?`` would take).
    """

    table: str
    assignments: Mapping[str, Any] | RowAssignment
    where: RowPredicate | None = None
    keys: Sequence[tuple] | None = None

    def assignment_fn(self) -> RowAssignment:
        """Normalize ``assignments`` into a callable."""
        if callable(self.assignments):
            return self.assignments
        constant = dict(self.assignments)
        return lambda _row: constant

    def predicate_fn(self) -> RowPredicate:
        """Normalize ``where`` into a callable (defaults to all rows)."""
        if self.where is None:
            return lambda _row: True
        return self.where

    def key_set(self) -> set[tuple] | None:
        """The primary-key fast-path targets, normalized to tuples."""
        if self.keys is None:
            return None
        return {tuple(key) if isinstance(key, (tuple, list)) else (key,) for key in self.keys}


@dataclass
class DeleteStatement(Statement):
    """``DELETE FROM table WHERE ...`` (``where=None`` deletes every row).

    ``keys`` optionally restricts the statement to rows with the given
    primary-key values (see :class:`UpdateStatement`).
    """

    table: str
    where: RowPredicate | None = None
    keys: Sequence[tuple] | None = None

    def predicate_fn(self) -> RowPredicate:
        """Normalize ``where`` into a callable (defaults to all rows)."""
        if self.where is None:
            return lambda _row: True
        return self.where

    def key_set(self) -> set[tuple] | None:
        """The primary-key fast-path targets, normalized to tuples."""
        if self.keys is None:
            return None
        return {tuple(key) if isinstance(key, (tuple, list)) else (key,) for key in self.keys}


@dataclass
class StatementResult:
    """Outcome of executing a single DML statement.

    ``inserted`` is the paper's ``Δtable`` (``NEW_TABLE``), ``deleted`` is
    ``∇table`` (``OLD_TABLE``).  For an INSERT statement ``deleted`` is empty;
    for a DELETE, ``inserted`` is empty; for an UPDATE, both hold the
    before/after versions of every matched row (even rows whose values did
    not change — see Definition 5 and Appendix F.1).
    """

    table: str
    event: "str"
    inserted: TransitionTable
    deleted: TransitionTable
    rowcount: int = 0
    fired_sql_triggers: list[str] = field(default_factory=list)
    fired_xml_triggers: list[Any] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.rowcount:
            self.rowcount = max(len(self.inserted), len(self.deleted))


# --------------------------------------------------------------------------- batches


@dataclass
class Batch:
    """An ordered sequence of DML statements executed as one set-oriented unit.

    Statements are applied in order, but the generated statement triggers fire
    once per (table, event) over the *net* transition tables of the whole
    batch (see :class:`DeltaCoalescer`) rather than once per statement.  Use
    :meth:`repro.relational.Database.execute_many` to run one.
    """

    statements: Sequence["Statement"] = field(default_factory=list)
    label: str | None = None

    def __post_init__(self) -> None:
        self.statements = list(self.statements)

    def add(self, statement: "Statement") -> "Batch":
        """Append a statement; returns ``self`` for chaining."""
        self.statements.append(statement)
        return self

    def __iter__(self) -> Iterator["Statement"]:
        return iter(self.statements)

    def __len__(self) -> int:
        return len(self.statements)


@dataclass
class BulkLoad:
    """A trigger-visible bulk INSERT of many rows into one table.

    Unlike :meth:`repro.relational.Database.load_rows` (which bypasses
    triggers entirely), a BulkLoad compiles to ordinary INSERT statements —
    one per ``chunk_size`` rows, or a single statement when ``chunk_size`` is
    ``None`` — so active views observe the loaded data.  Executed through
    ``execute_many`` the whole load still fires each trigger only once.
    """

    table: str
    rows: Sequence[Mapping[str, Any] | Sequence[Any]]
    chunk_size: int | None = None

    def __post_init__(self) -> None:
        self.rows = list(self.rows)
        if self.chunk_size is not None and self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive")

    def statements(self) -> list[InsertStatement]:
        """Compile the load into one INSERT statement per chunk."""
        if not self.rows:
            return []
        size = self.chunk_size or len(self.rows)
        return [
            InsertStatement(self.table, self.rows[start:start + size])
            for start in range(0, len(self.rows), size)
        ]


@dataclass
class CoalescedDelta:
    """Net transition tables for one (table, event) slice of a batch.

    ``inserted`` / ``deleted`` play exactly the roles of ``Δtable`` /
    ``∇table`` in a single-statement firing, except that they describe the
    combined effect of every statement in the batch on this table.
    """

    table: str
    event: str
    inserted: TransitionTable
    deleted: TransitionTable
    statements: int = 1

    @property
    def rowcount(self) -> int:
        """Number of affected rows in this slice."""
        return max(len(self.inserted), len(self.deleted))


#: Classification order of coalesced deltas (per table) when firing triggers.
_EVENT_ORDER = ("INSERT", "UPDATE", "DELETE")


class DeltaCoalescer:
    """Folds per-statement transition tables into net per-(table, event) deltas.

    Each row's journey through the batch is tracked by primary key and
    reduced to its *net* effect:

    * inserted then deleted within the batch → cancelled entirely (the
      insert-then-delete edge case — no trigger observes the row);
    * inserted then updated → a single net INSERT of the final version;
    * updated repeatedly → a single net UPDATE from the first pre-image to
      the last post-image;
    * deleted then re-inserted → a net UPDATE (old pre-image, new row), which
      the pruned transition tables of Definition 8 collapse to a no-op when
      the row came back unchanged.

    Tables without a primary key cannot pair old and new row versions, so
    their deltas are concatenated per original statement event instead of
    net-coalesced (still one firing per (table, event)).
    """

    def __init__(self) -> None:
        # table -> key -> [first old row | None, last new row | None]
        self._keyed: dict[str, dict[tuple, list] ] = {}
        # table -> event -> [inserted rows, deleted rows]  (no-PK fallback)
        self._bagged: dict[str, dict[str, tuple[list, list]]] = {}
        self._schemas: dict[str, Any] = {}
        self._order: list[str] = []  # tables in first-touched order
        self._counts: dict[str, int] = {}  # statements touching each table

    def absorb(self, result: StatementResult) -> None:
        """Fold one statement's transition tables into the running net delta."""
        table = result.table
        schema = result.inserted.schema
        if table not in self._schemas:
            self._schemas[table] = schema
            self._order.append(table)
        self._counts[table] = self._counts.get(table, 0) + 1

        if not schema.primary_key:
            per_event = self._bagged.setdefault(table, {})
            inserted, deleted = per_event.setdefault(result.event, ([], []))
            inserted.extend(result.inserted.rows)
            deleted.extend(result.deleted.rows)
            return

        state = self._keyed.setdefault(table, {})
        # Deletions first: an UPDATE statement's ∇ rows must release pending
        # new versions before its Δ rows record the replacements.
        for row in result.deleted:
            self._absorb_delete(state, schema.key_of(row), row)
        for row in result.inserted:
            self._absorb_insert(state, schema.key_of(row), row)

    def _absorb_delete(self, state: dict, key: tuple, row: tuple) -> None:
        entry = state.get(key)
        if entry is None:
            state[key] = [row, None]
            return
        old, new = entry
        if new is not None:
            if old is None:
                del state[key]  # in-batch insert cancelled by this delete
            else:
                entry[1] = None  # back to a net delete of the original row
        # else: net-deleted already; a second delete of the key is a no-op.

    def _absorb_insert(self, state: dict, key: tuple, row: tuple) -> None:
        entry = state.get(key)
        if entry is None:
            state[key] = [None, row]
        else:
            # Either a delete-then-reinsert (net update) or a newer version
            # of an in-batch insert/update; keep the first pre-image.
            entry[1] = row

    def deltas(self) -> list[CoalescedDelta]:
        """The net per-(table, event) deltas, tables in first-touched order.

        Within one table the slices come out in INSERT, UPDATE, DELETE order;
        empty slices are dropped.
        """
        result: list[CoalescedDelta] = []
        for table in self._order:
            schema = self._schemas[table]
            statements = self._counts.get(table, 1)
            buckets: dict[str, tuple[list, list]] = {
                event: ([], []) for event in _EVENT_ORDER
            }
            for old, new in self._keyed.get(table, {}).values():
                if old is None and new is not None:
                    buckets["INSERT"][0].append(new)
                elif old is not None and new is None:
                    buckets["DELETE"][1].append(old)
                elif old is not None and new is not None:
                    buckets["UPDATE"][0].append(new)
                    buckets["UPDATE"][1].append(old)
            for event, (inserted, deleted) in self._bagged.get(table, {}).items():
                buckets[event][0].extend(inserted)
                buckets[event][1].extend(deleted)
            for event in _EVENT_ORDER:
                inserted, deleted = buckets[event]
                if not inserted and not deleted:
                    continue
                result.append(
                    CoalescedDelta(
                        table=table,
                        event=event,
                        inserted=TransitionTable(schema, inserted),
                        deleted=TransitionTable(schema, deleted),
                        statements=statements,
                    )
                )
        return result


@dataclass
class BatchResult:
    """Outcome of :meth:`repro.relational.Database.execute_many`.

    ``statements`` holds the individual per-statement results (in execution
    order, triggers *not* fired per statement); ``deltas`` the coalesced
    per-(table, event) slices the triggers actually fired on.
    """

    statements: list[StatementResult] = field(default_factory=list)
    deltas: list[CoalescedDelta] = field(default_factory=list)
    fired_sql_triggers: list[str] = field(default_factory=list)
    fired_xml_triggers: list[Any] = field(default_factory=list)

    @property
    def rowcount(self) -> int:
        """Total rows touched across all statements."""
        return sum(result.rowcount for result in self.statements)

    @property
    def tables(self) -> list[str]:
        """Tables touched by the batch, in first-touched order."""
        seen: list[str] = []
        for result in self.statements:
            if result.table not in seen:
                seen.append(result.table)
        return seen
