"""Table schema objects: columns, keys, constraints.

Theorem 1 of the paper requires every base table to have a primary key for a
view to be trigger-specifiable, so :class:`TableSchema` makes the primary key
a first-class citizen.  Foreign keys are also declared explicitly because the
experimental hierarchy of Section 6.1 ("each child table has a foreign key
column referencing its parent's primary key") and the workload generator rely
on them, and the trigger pushdown builds indexes on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import SchemaError, UnknownColumnError
from repro.relational.types import DataType, coerce_value

__all__ = ["Column", "ForeignKey", "UniqueConstraint", "TableSchema"]


@dataclass(frozen=True)
class Column:
    """A single column definition."""

    name: str
    dtype: DataType
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError("column name must be a non-empty string")
        if not isinstance(self.dtype, DataType):
            raise SchemaError(f"column {self.name!r}: dtype must be a DataType")

    def coerce(self, value: Any) -> Any:
        """Coerce a value to this column's type, enforcing NOT NULL."""
        coerced = coerce_value(value, self.dtype, column=self.name)
        if coerced is None and not self.nullable:
            raise SchemaError(f"column {self.name!r} is NOT NULL")
        return coerced


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key constraint: ``columns`` reference ``parent_table.parent_columns``."""

    columns: tuple[str, ...]
    parent_table: str
    parent_columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.parent_columns):
            raise SchemaError("foreign key column count mismatch")
        if not self.columns:
            raise SchemaError("foreign key must name at least one column")


@dataclass(frozen=True)
class UniqueConstraint:
    """A uniqueness constraint over one or more columns."""

    columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.columns:
            raise SchemaError("unique constraint must name at least one column")


class TableSchema:
    """Schema of a relational table: ordered columns, primary key, constraints.

    Rows belonging to a table with this schema are stored as plain tuples in
    column order; :meth:`row_from_mapping` and :meth:`row_to_mapping` convert
    between tuples and dictionaries.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: Sequence[str] | None = None,
        foreign_keys: Sequence[ForeignKey] = (),
        unique: Sequence[UniqueConstraint] = (),
    ) -> None:
        if not name:
            raise SchemaError("table name must be non-empty")
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {name!r} has duplicate column names")

        self.name = name
        self.columns: tuple[Column, ...] = tuple(columns)
        self.column_names: tuple[str, ...] = tuple(names)
        self._index_of = {column_name: i for i, column_name in enumerate(names)}

        pk = tuple(primary_key or ())
        for column_name in pk:
            if column_name not in self._index_of:
                raise SchemaError(
                    f"table {name!r}: primary key column {column_name!r} not defined"
                )
        self.primary_key: tuple[str, ...] = pk
        self.foreign_keys: tuple[ForeignKey, ...] = tuple(foreign_keys)
        for fk in self.foreign_keys:
            for column_name in fk.columns:
                if column_name not in self._index_of:
                    raise SchemaError(
                        f"table {name!r}: foreign key column {column_name!r} not defined"
                    )
        self.unique_constraints: tuple[UniqueConstraint, ...] = tuple(unique)
        for constraint in self.unique_constraints:
            for column_name in constraint.columns:
                if column_name not in self._index_of:
                    raise SchemaError(
                        f"table {name!r}: unique column {column_name!r} not defined"
                    )

    # -- column access ------------------------------------------------------

    def has_column(self, name: str) -> bool:
        """Whether a column with this name exists."""
        return name in self._index_of

    def column(self, name: str) -> Column:
        """Return the :class:`Column` with the given name."""
        try:
            return self.columns[self._index_of[name]]
        except KeyError:
            raise UnknownColumnError(f"table {self.name!r} has no column {name!r}") from None

    def column_index(self, name: str) -> int:
        """Return the position of a column within a stored row tuple."""
        try:
            return self._index_of[name]
        except KeyError:
            raise UnknownColumnError(f"table {self.name!r} has no column {name!r}") from None

    @property
    def arity(self) -> int:
        """Number of columns."""
        return len(self.columns)

    # -- row conversion ------------------------------------------------------

    def row_from_mapping(self, mapping: Mapping[str, Any]) -> tuple:
        """Build a row tuple from a column-name → value mapping.

        Missing columns default to NULL; unknown columns raise.
        """
        unknown = set(mapping) - set(self.column_names)
        if unknown:
            raise UnknownColumnError(
                f"table {self.name!r} has no column(s) {sorted(unknown)!r}"
            )
        return tuple(
            column.coerce(mapping.get(column.name)) for column in self.columns
        )

    def row_from_values(self, values: Sequence[Any]) -> tuple:
        """Build a row tuple from positional values (must match arity)."""
        if len(values) != self.arity:
            raise SchemaError(
                f"table {self.name!r} expects {self.arity} values, got {len(values)}"
            )
        return tuple(
            column.coerce(value) for column, value in zip(self.columns, values)
        )

    def row_to_mapping(self, row: Sequence[Any]) -> dict[str, Any]:
        """Convert a row tuple into a column-name → value dictionary."""
        return dict(zip(self.column_names, row))

    # -- key extraction ------------------------------------------------------

    def key_of(self, row: Sequence[Any]) -> tuple:
        """Primary-key value of a row tuple."""
        return tuple(row[self._index_of[c]] for c in self.primary_key)

    def project(self, row: Sequence[Any], columns: Iterable[str]) -> tuple:
        """Project a row tuple onto a sequence of column names."""
        return tuple(row[self.column_index(c)] for c in columns)

    # -- misc -----------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cols = ", ".join(f"{c.name} {c.dtype}" for c in self.columns)
        pk = f", PRIMARY KEY ({', '.join(self.primary_key)})" if self.primary_key else ""
        return f"TableSchema({self.name}: {cols}{pk})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TableSchema):
            return NotImplemented
        return (
            self.name == other.name
            and self.columns == other.columns
            and self.primary_key == other.primary_key
            and self.foreign_keys == other.foreign_keys
            and self.unique_constraints == other.unique_constraints
        )

    def __hash__(self) -> int:
        return hash((self.name, self.columns, self.primary_key))
