"""Horizontal partitioning of the relational engine: ShardRouter + ShardedDatabase.

The translated-trigger pipeline keeps per-update cost flat as trigger
populations grow (the paper's Figure 17), but a single
:class:`~repro.relational.database.Database` is still a single-writer engine.
This module supplies the partitioning substrate the serving layer
(:mod:`repro.serving`) builds on:

* :class:`ShardRouter` — a deterministic mapping from ``(table, primary key)``
  to a shard index, with three policies: route by **table** name, by
  **primary-key hash**, or by a custom **routing key** function (e.g. "the
  top-level ancestor of this row", which the hierarchy workload uses so each
  XML subtree lives wholly on one shard).
* :class:`ShardedDatabase` — N databases sharing one catalog (every shard has
  every table's schema and indexes) with rows placed by the router.  DML
  statements are routed the same way, so a row is always read and written on
  the shard that owns it.

**View-closure contract.**  XML-trigger correctness on a sharded database
requires that the router co-locate every row a monitored XML node is built
from (the node's whole join/grouping neighborhood, e.g. a product and all its
vendors).  When that holds, each shard's view is exactly the restriction of
the global view to the nodes it owns, so the union of per-shard trigger
activations equals the unsharded system's — the equivalence property
``tests/serving/test_concurrent_equivalence.py`` pins down.  The ``table``
policy satisfies it for single-table views; multi-table views need a routing
key function that follows the view's foreign-key paths (see
:meth:`repro.workloads.generator.HierarchyWorkload.routing_key_fn`).
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import ShardRoutingError
from repro.relational.database import Database
from repro.relational.dml import (
    Batch,
    BatchResult,
    BulkLoad,
    DeleteStatement,
    InsertStatement,
    Statement,
    StatementResult,
    UpdateStatement,
)
from repro.relational.schema import TableSchema

__all__ = ["ShardRouter", "ShardedDatabase", "stable_hash"]

#: ``key_fn(table, key) -> hashable`` — custom routing-key extraction.
RoutingKeyFunction = Callable[[str, tuple], Any]


def stable_hash(value: Any) -> int:
    """A process-independent hash (CRC32 of ``repr``) for shard placement.

    ``hash()`` is randomized per process for strings (PYTHONHASHSEED), which
    would scatter the same row to different shards across runs; placement
    must be reproducible so that data loaded today routes identically to the
    statements executed tomorrow.
    """
    return zlib.crc32(repr(value).encode("utf-8"))


class ShardRouter:
    """Deterministically maps rows and statements to shard indexes.

    ``policy`` selects how the routing value is derived:

    * ``"key"`` (default) — the row's primary-key tuple; spreads every table
      uniformly, appropriate when each monitored XML node is built from a
      single row (single-table views).
    * ``"table"`` — the table name; all rows of one table share a shard, so
      any single-table view is trivially view-closed and different tables can
      be served in parallel.
    * a :data:`RoutingKeyFunction` passed as ``key_fn`` — derives an
      application-level routing value (e.g. the owning top element's id) so
      related rows across tables co-locate.  This is the policy multi-table
      views need (see the module docstring's view-closure contract).
    """

    def __init__(
        self,
        shard_count: int,
        policy: str = "key",
        key_fn: RoutingKeyFunction | None = None,
    ) -> None:
        if shard_count < 1:
            raise ShardRoutingError("shard_count must be at least 1")
        if policy not in ("key", "table"):
            raise ShardRoutingError(f"unknown shard policy {policy!r} (use 'key' or 'table')")
        self.shard_count = shard_count
        self.policy = policy
        self.key_fn = key_fn

    def shard_of(self, table: str, key: tuple | None) -> int:
        """Shard index owning the row of ``table`` with primary key ``key``."""
        if self.key_fn is not None:
            return stable_hash(self.key_fn(table, key)) % self.shard_count
        if self.policy == "table":
            return stable_hash(table) % self.shard_count
        if key is None:
            raise ShardRoutingError(
                f"cannot route a keyless row of {table!r} under the 'key' policy"
            )
        return stable_hash(key) % self.shard_count

    def shard_of_statement(
        self, statement: Statement, schema: TableSchema
    ) -> int | None:
        """Shard index a DML statement routes to, or ``None`` for broadcast.

        INSERTs route by the primary keys of their rows (keyless-table
        INSERTs route like keyless loaded rows — broadcasting them would
        duplicate the rows on every shard); key-targeted UPDATE / DELETE
        statements (``keys=...``) route by those keys.  Predicate-only
        UPDATE / DELETE statements (``where`` with no key set) cannot be
        routed and return ``None`` — the caller broadcasts them to every
        shard, which is equivalent because shards partition the rows.  A
        statement whose keys span several shards raises
        :class:`ShardRoutingError`: cross-shard statements would break the
        one-batch-one-shard execution model.
        """
        if self.shard_count == 1:
            return 0
        if self.policy == "table" and self.key_fn is None:
            return self.shard_of(statement.table, None)
        if isinstance(statement, InsertStatement) and not schema.primary_key:
            # A keyless INSERT must never broadcast — every shard would apply
            # it and the rows would duplicate shard_count times.  Route it
            # like a keyless loaded row instead: deterministic under a
            # key_fn, rejected under the 'key' policy (same as load_rows).
            return self.shard_of(statement.table, None)
        keys = self._statement_keys(statement, schema)
        if keys is None:
            return None
        shards = {self.shard_of(statement.table, key) for key in keys}
        if len(shards) != 1:
            raise ShardRoutingError(
                f"statement on {statement.table!r} targets keys on {len(shards)} shards; "
                "split it into per-shard statements"
            )
        return shards.pop()

    @staticmethod
    def _statement_keys(
        statement: Statement, schema: TableSchema
    ) -> list[tuple] | None:
        if isinstance(statement, InsertStatement):
            keys = []
            for row in statement.rows:
                if isinstance(row, Mapping):
                    keys.append(tuple(row[column] for column in schema.primary_key))
                else:
                    keys.append(schema.key_of(schema.row_from_values(row)))
            return keys
        if isinstance(statement, (UpdateStatement, DeleteStatement)):
            key_set = statement.key_set()
            if key_set is None:
                return None
            return sorted(key_set)
        return None


class ShardedDatabase:
    """N single-writer :class:`Database` shards behind one catalog.

    The catalog (tables, indexes, foreign keys) is replicated on every shard;
    the *rows* are partitioned by the :class:`ShardRouter`.  The class mirrors
    the parts of the ``Database`` API the workloads and the serving layer
    need — ``create_table`` / ``create_index`` / ``load_rows`` /
    ``execute`` / ``execute_many`` / ``snapshot`` — so a
    :class:`~repro.workloads.generator.HierarchyWorkload` can populate either
    transparently.

    ``execute`` on a routable statement runs it on the owning shard (firing
    that shard's triggers); a broadcast statement runs on every shard and
    returns the list of per-shard results.  For concurrent serving, wrap the
    sharded database in an :class:`repro.serving.ActiveViewServer`, which
    gives each shard a dedicated worker thread and micro-batches its queue.
    """

    def __init__(
        self,
        shard_count: int,
        *,
        name: str = "sharded",
        policy: str = "key",
        key_fn: RoutingKeyFunction | None = None,
        router: ShardRouter | None = None,
    ) -> None:
        self.name = name
        self.router = router or ShardRouter(shard_count, policy=policy, key_fn=key_fn)
        if self.router.shard_count != shard_count:
            raise ShardRoutingError(
                f"router covers {self.router.shard_count} shards, expected {shard_count}"
            )
        self.shards: list[Database] = [
            Database(name=f"{name}_shard{index}") for index in range(shard_count)
        ]

    @classmethod
    def from_databases(
        cls,
        databases: Sequence[Database],
        *,
        router: ShardRouter | None = None,
        name: str = "sharded",
        policy: str = "key",
        key_fn: RoutingKeyFunction | None = None,
    ) -> "ShardedDatabase":
        """Wrap existing databases as shards (catalogs must already match).

        The common case is wrapping a single pre-built
        :class:`~repro.relational.database.Database` so it can be served by an
        :class:`repro.serving.ActiveViewServer` as one shard.
        """
        if not databases:
            raise ShardRoutingError("at least one database is required")
        instance = cls.__new__(cls)
        instance.name = name
        instance.router = router or ShardRouter(len(databases), policy=policy, key_fn=key_fn)
        if instance.router.shard_count != len(databases):
            raise ShardRoutingError(
                f"router covers {instance.router.shard_count} shards, "
                f"expected {len(databases)}"
            )
        instance.shards = list(databases)
        return instance

    # ------------------------------------------------------------------ catalog

    @property
    def shard_count(self) -> int:
        """Number of shards."""
        return len(self.shards)

    def shard(self, index: int) -> Database:
        """The shard database at ``index``."""
        return self.shards[index]

    def create_table(self, schema: TableSchema) -> None:
        """Create a table on every shard (the catalog is replicated)."""
        for shard in self.shards:
            shard.create_table(schema)

    def create_index(self, table: str, columns: Sequence[str], name: str | None = None) -> None:
        """Create a hash index on ``table(columns)`` on every shard."""
        for shard in self.shards:
            shard.create_index(table, columns, name)

    def has_table(self, name: str) -> bool:
        """Whether a table with this name exists (checked on shard 0)."""
        return self.shards[0].has_table(name)

    def table_names(self) -> list[str]:
        """Names of all tables, in creation order."""
        return self.shards[0].table_names()

    def schema(self, name: str) -> TableSchema:
        """Return the (shared) schema of a table."""
        return self.shards[0].schema(name)

    @property
    def enforce_foreign_keys(self) -> bool:
        """Foreign-key enforcement flag, kept in lockstep across shards."""
        return self.shards[0].enforce_foreign_keys

    @enforce_foreign_keys.setter
    def enforce_foreign_keys(self, value: bool) -> None:
        for shard in self.shards:
            shard.enforce_foreign_keys = value

    # ------------------------------------------------------------------ durability hooks

    def add_commit_listener(self, listener) -> list:
        """Observe committed changes on every shard, tagged with the shard index.

        ``listener(shard_index, kind, payload)`` receives the same
        ``(kind, payload)`` events as
        :meth:`~repro.relational.database.Database.add_commit_listener`, one
        stream per shard — this is how :class:`repro.persist.DurableServer`
        maintains one write-ahead log per shard.  Returns the per-shard
        wrapper callables (pass them to :meth:`remove_commit_listeners`).
        """
        wrappers = []
        for index, shard in enumerate(self.shards):
            def wrapper(kind, payload, _index=index):
                listener(_index, kind, payload)
            shard.add_commit_listener(wrapper)
            wrappers.append(wrapper)
        return wrappers

    def remove_commit_listeners(self, wrappers: Sequence) -> None:
        """Detach wrappers previously returned by :meth:`add_commit_listener`."""
        for shard, wrapper in zip(self.shards, wrappers):
            shard.remove_commit_listener(wrapper)

    # ------------------------------------------------------------------ loading

    def load_rows(
        self, table: str, rows: Iterable[Mapping[str, Any] | Sequence[Any]]
    ) -> int:
        """Bulk-load rows, placing each on the shard the router assigns it."""
        schema = self.schema(table)
        placed: dict[int, list] = {}
        count = 0
        for row in rows:
            if isinstance(row, Mapping):
                key = (
                    tuple(row[column] for column in schema.primary_key)
                    if schema.primary_key
                    else None
                )
            else:
                stored = schema.row_from_values(row)
                key = schema.key_of(stored) if schema.primary_key else None
            placed.setdefault(self.router.shard_of(table, key), []).append(row)
            count += 1
        for index, shard_rows in placed.items():
            self.shards[index].load_rows(table, shard_rows)
        return count

    # ------------------------------------------------------------------ execution

    def statement_shard(self, statement: Statement) -> int | None:
        """Shard index the statement routes to (``None`` = broadcast)."""
        return self.router.shard_of_statement(statement, self.schema(statement.table))

    def execute(
        self, statement: Statement, **kwargs
    ) -> StatementResult | list[StatementResult]:
        """Execute one statement on its owning shard (or broadcast it).

        Returns the owning shard's :class:`StatementResult` for a routable
        statement, or the list of per-shard results for a broadcast
        (predicate-only) statement.
        """
        shard = self.statement_shard(statement)
        if shard is not None:
            return self.shards[shard].execute(statement, **kwargs)
        return [s.execute(statement, **kwargs) for s in self.shards]

    def execute_many(
        self,
        statements: Batch | BulkLoad | Iterable[Statement | BulkLoad],
        **kwargs,
    ) -> dict[int, BatchResult]:
        """Execute a batch set-at-a-time, grouped per owning shard.

        Statements are split by shard (broadcasts are appended to every
        shard's sub-batch) and each shard runs its sub-batch through
        :meth:`Database.execute_many`, preserving the per-shard submission
        order.  Returns the per-shard :class:`BatchResult` objects keyed by
        shard index.
        """
        per_shard: dict[int, list[Statement]] = {}
        for statement in Database._flatten(statements):
            shard = self.statement_shard(statement)
            targets = range(self.shard_count) if shard is None else (shard,)
            for index in targets:
                per_shard.setdefault(index, []).append(statement)
        return {
            index: self.shards[index].execute_many(shard_statements, **kwargs)
            for index, shard_statements in sorted(per_shard.items())
        }

    # ------------------------------------------------------------------ utilities

    def row_count(self, table: str) -> int:
        """Total number of rows of ``table`` across all shards."""
        return sum(shard.row_count(table) for shard in self.shards)

    def snapshot(self) -> dict[str, list[tuple]]:
        """Merged copy of every table's rows across shards (sorted per table).

        Rows are sorted so snapshots compare equal whenever the *contents*
        match, regardless of how the rows were distributed."""
        merged: dict[str, list[tuple]] = {name: [] for name in self.table_names()}
        for shard in self.shards:
            for name, rows in shard.snapshot().items():
                merged[name].extend(rows)
        return {name: sorted(rows, key=repr) for name, rows in merged.items()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = ", ".join(str(sum(len(t) for t in s._tables.values())) for s in self.shards)
        return f"ShardedDatabase({self.name}: {self.shard_count} shards, rows [{sizes}])"
