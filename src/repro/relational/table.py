"""Table storage: rows, primary-key map, secondary hash indexes.

A :class:`Table` stores rows as tuples keyed by their primary-key value.
Tables without a primary key fall back to an internal surrogate row id (the
paper's algorithms require primary keys on base tables, but the engine itself
does not).  Secondary hash indexes can be created on any column list; the
trigger pushdown creates them on foreign-key columns so that affected-key
probes are O(matching rows) rather than O(table size) — mirroring the paper's
"appropriate indices on the key columns and other join columns".

:class:`TransitionTable` is a lightweight read-only collection of rows used
for the statement-trigger transition tables ``Δtable`` / ``∇table``.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.errors import IntegrityError, SchemaError
from repro.relational.schema import TableSchema

#: Process-wide unique ids so version stamps from two Table instances that
#: happen to share a name (drop + recreate, recovery rebuilds) never collide.
_table_uids = itertools.count(1)

__all__ = ["Table", "TransitionTable"]


class TransitionTable:
    """An immutable bag of rows sharing a schema (``OLD_TABLE`` / ``NEW_TABLE``)."""

    def __init__(self, schema: TableSchema, rows: Iterable[tuple] = ()) -> None:
        self.schema = schema
        self._rows: tuple[tuple, ...] = tuple(tuple(row) for row in rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    @property
    def rows(self) -> tuple[tuple, ...]:
        """All rows as tuples (column order follows the schema)."""
        return self._rows

    def mappings(self) -> list[dict[str, Any]]:
        """All rows as column-name → value dictionaries."""
        return [self.schema.row_to_mapping(row) for row in self._rows]

    def keys(self) -> set[tuple]:
        """Primary-key values of all rows (requires the schema to have a PK)."""
        if not self.schema.primary_key:
            raise SchemaError(
                f"table {self.schema.name!r} has no primary key; "
                "transition-table rows cannot be identified by key"
            )
        return {self.schema.key_of(row) for row in self._rows}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TransitionTable({self.schema.name}, {len(self._rows)} rows)"


class Table:
    """Mutable storage for one relational table."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: dict[tuple, tuple] = {}
        self._next_rowid = 0
        # Monotonic data-version counter.  Every mutation path — per-statement
        # DML, batched execution, trigger-bypassing bulk loads, and WAL
        # recovery replay — lands in insert_row / _remove / update_where, so
        # the counter advances on every commit path.  The compiled-plan result
        # cache (repro.xqgm.physical) stamps cached subplan results with the
        # versions of the tables they read; a stamp mismatch is the cache's
        # only invalidation rule.
        self._version = 0
        self._uid = next(_table_uids)
        # index name -> (columns, mapping value-tuple -> set of storage keys)
        self._indexes: dict[str, tuple[tuple[str, ...], dict[tuple, set[tuple]]]] = {}
        # Version-stamped {storage key -> scan position} map (see scan_positions).
        self._positions: tuple[int, dict[tuple, int]] | None = None
        # Unique constraints get dedicated indexes for O(1) enforcement.
        for constraint in schema.unique_constraints:
            self.create_index(
                f"__unique_{'_'.join(constraint.columns)}", constraint.columns
            )

    # -- basics ---------------------------------------------------------------

    @property
    def name(self) -> str:
        """Table name (from the schema)."""
        return self.schema.name

    @property
    def version(self) -> int:
        """Monotonic counter advanced by every mutation of this table."""
        return self._version

    @property
    def version_stamp(self) -> tuple[int, int]:
        """``(table uid, version)`` — the result cache's freshness token.

        The counter is advanced inline by the storage mutators themselves
        (``insert_row`` / ``_remove``); any new mutation path must route
        through those or bump ``self._version`` the same way.
        """
        return (self._uid, self._version)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._rows.values())

    def rows(self) -> list[tuple]:
        """A snapshot list of all row tuples."""
        return list(self._rows.values())

    def mappings(self) -> list[dict[str, Any]]:
        """All rows as dictionaries."""
        return [self.schema.row_to_mapping(row) for row in self._rows.values()]

    def _storage_key(self, row: tuple) -> tuple:
        if self.schema.primary_key:
            return self.schema.key_of(row)
        self._next_rowid += 1
        return ("__rowid__", self._next_rowid)

    # -- index management ------------------------------------------------------

    def create_index(self, name: str, columns: Sequence[str]) -> None:
        """Create (or refresh) a hash index over ``columns``."""
        columns = tuple(columns)
        for column in columns:
            self.schema.column(column)  # validates existence
        mapping: dict[tuple, set[tuple]] = {}
        for storage_key, row in self._rows.items():
            value = self.schema.project(row, columns)
            mapping.setdefault(value, set()).add(storage_key)
        self._indexes[name] = (columns, mapping)

    def has_index_on(self, columns: Sequence[str]) -> bool:
        """Whether an index exactly covering ``columns`` exists."""
        target = tuple(columns)
        return any(cols == target for cols, _ in self._indexes.values())

    def index_names(self) -> list[str]:
        """Names of all indexes on this table."""
        return list(self._indexes)

    def index_definitions(self) -> list[tuple[str, tuple[str, ...]]]:
        """``(name, columns)`` for every index (used by persistence snapshots)."""
        return [(name, columns) for name, (columns, _) in self._indexes.items()]

    def _index_for(self, columns: Sequence[str]):
        target = tuple(columns)
        for cols, mapping in self._indexes.values():
            if cols == target:
                return mapping
        return None

    # -- lookups ---------------------------------------------------------------

    def get(self, key: tuple) -> tuple | None:
        """Return the row with the given primary-key value, or ``None``."""
        if not self.schema.primary_key:
            raise SchemaError(f"table {self.name!r} has no primary key")
        return self._rows.get(tuple(key))

    def contains_key(self, key: tuple) -> bool:
        """Whether a row with this primary-key value exists."""
        return tuple(key) in self._rows if self.schema.primary_key else False

    def scan_positions(self) -> dict[tuple, int]:
        """``{storage key -> position in scan order}`` for the current version.

        Scan order is the order :meth:`rows` / iteration produce, so the map
        lets an index probe reorder its matches into the order a full scan
        would have emitted them (the columnar engine's bulk probes rely on
        this to reproduce hash-join output order).  The map is rebuilt lazily
        when the table version has advanced and must not be mutated.
        """
        cached = self._positions
        if cached is not None and cached[0] == self._version:
            return cached[1]
        positions = {key: i for i, key in enumerate(self._rows)}
        self._positions = (self._version, positions)
        return positions

    def indexed_rows(
        self, columns: Sequence[str], value: Sequence[Any]
    ) -> list[tuple[tuple, tuple]]:
        """``(storage key, row)`` pairs whose ``columns`` equal ``value``.

        Requires a hash index covering ``columns`` (empty list when the index
        exists but no row matches); raises :class:`SchemaError` when no such
        index exists — callers are expected to check :meth:`has_index_on`.
        The pairs are unordered (hash-bucket order).
        """
        mapping = self._index_for(columns)
        if mapping is None:
            raise SchemaError(
                f"table {self.name!r} has no index on {tuple(columns)!r}"
            )
        return [(key, self._rows[key]) for key in mapping.get(tuple(value), ())]

    def lookup(self, columns: Sequence[str], value: Sequence[Any]) -> list[tuple]:
        """Return all rows whose ``columns`` equal ``value``.

        Uses a hash index when one covers the columns; otherwise scans.
        """
        value = tuple(value)
        mapping = self._index_for(columns)
        if mapping is not None:
            return [self._rows[k] for k in mapping.get(value, ())]
        columns = tuple(columns)
        return [
            row
            for row in self._rows.values()
            if self.schema.project(row, columns) == value
        ]

    def scan(self, predicate: Callable[[dict[str, Any]], bool] | None = None) -> list[tuple]:
        """Return all rows, optionally filtered by a predicate over row dicts."""
        if predicate is None:
            return self.rows()
        result = []
        for row in self._rows.values():
            if predicate(self.schema.row_to_mapping(row)):
                result.append(row)
        return result

    # -- mutation ---------------------------------------------------------------

    def _check_unique(self, row: tuple, ignore_key: tuple | None = None) -> None:
        for constraint in self.schema.unique_constraints:
            value = self.schema.project(row, constraint.columns)
            if any(v is None for v in value):
                continue  # SQL unique constraints ignore NULLs
            for existing_key in self._matching_keys(constraint.columns, value):
                if existing_key != ignore_key:
                    raise IntegrityError(
                        f"table {self.name!r}: unique constraint on "
                        f"{constraint.columns} violated by {value!r}"
                    )

    def _matching_keys(self, columns: Sequence[str], value: tuple) -> set[tuple]:
        mapping = self._index_for(columns)
        if mapping is not None:
            return set(mapping.get(value, set()))
        columns = tuple(columns)
        return {
            key
            for key, row in self._rows.items()
            if self.schema.project(row, columns) == value
        }

    def insert_row(self, row: Mapping[str, Any] | Sequence[Any]) -> tuple:
        """Insert one row (mapping or positional values); returns the stored tuple."""
        if isinstance(row, Mapping):
            stored = self.schema.row_from_mapping(row)
        else:
            stored = self.schema.row_from_values(row)
        if self.schema.primary_key:
            key = self.schema.key_of(stored)
            if any(part is None for part in key):
                raise IntegrityError(
                    f"table {self.name!r}: primary key may not contain NULL"
                )
            if key in self._rows:
                raise IntegrityError(
                    f"table {self.name!r}: duplicate primary key {key!r}"
                )
        self._check_unique(stored)
        storage_key = self._storage_key(stored)
        self._rows[storage_key] = stored
        for columns, mapping in self._indexes.values():
            mapping.setdefault(self.schema.project(stored, columns), set()).add(storage_key)
        self._version += 1
        return stored

    def _candidates(self, candidate_keys: Iterable[tuple] | None) -> Iterable[tuple[tuple, tuple]]:
        """(storage key, row) pairs to consider: all rows, or just the given keys."""
        if candidate_keys is None:
            return list(self._rows.items())
        result = []
        for key in candidate_keys:
            key = tuple(key)
            row = self._rows.get(key)
            if row is not None:
                result.append((key, row))
        return result

    def delete_where(
        self,
        predicate: Callable[[dict[str, Any]], bool],
        candidate_keys: Iterable[tuple] | None = None,
    ) -> list[tuple]:
        """Delete all rows matching ``predicate``; returns the deleted rows.

        ``candidate_keys`` restricts the scan to rows with those primary keys
        (the index fast path for key-targeted statements).
        """
        doomed = [
            (key, row)
            for key, row in self._candidates(candidate_keys)
            if predicate(self.schema.row_to_mapping(row))
        ]
        for key, row in doomed:
            self._remove(key, row)
        return [row for _, row in doomed]

    def delete_key(self, key: tuple) -> tuple | None:
        """Delete the row with the given primary key; returns it (or ``None``)."""
        key = tuple(key)
        row = self._rows.get(key)
        if row is None:
            return None
        self._remove(key, row)
        return row

    def _remove(self, storage_key: tuple, row: tuple) -> None:
        del self._rows[storage_key]
        for columns, mapping in self._indexes.values():
            value = self.schema.project(row, columns)
            bucket = mapping.get(value)
            if bucket is not None:
                bucket.discard(storage_key)
                if not bucket:
                    del mapping[value]
        self._version += 1

    def update_where(
        self,
        predicate: Callable[[dict[str, Any]], bool],
        assign: Callable[[dict[str, Any]], Mapping[str, Any]],
        candidate_keys: Iterable[tuple] | None = None,
    ) -> list[tuple[tuple, tuple]]:
        """Update rows matching ``predicate``.

        ``assign`` maps the current row dict to a dict of column → new value
        (only the changed columns need to be present).  Returns a list of
        ``(old_row, new_row)`` tuple pairs, including rows whose values did
        not actually change (matching SQL transition-table semantics, see
        Definition 5 / Appendix F.1 of the paper).  ``candidate_keys``
        restricts the scan to rows with those primary keys.
        """
        matched = [
            (key, row)
            for key, row in self._candidates(candidate_keys)
            if predicate(self.schema.row_to_mapping(row))
        ]
        changes: list[tuple[tuple, tuple]] = []
        for key, old_row in matched:
            current = self.schema.row_to_mapping(old_row)
            updates = dict(assign(dict(current)))
            current.update(updates)
            new_row = self.schema.row_from_mapping(current)
            changes.append((old_row, new_row))

        # Apply with primary-key integrity checking (two-phase so that
        # key-swapping updates within one statement do not falsely collide).
        for key, old_row in matched:
            self._remove(key, old_row)
        try:
            for (_, new_row) in changes:
                if self.schema.primary_key:
                    new_key = self.schema.key_of(new_row)
                    if any(part is None for part in new_key):
                        raise IntegrityError(
                            f"table {self.name!r}: primary key may not contain NULL"
                        )
                    if new_key in self._rows:
                        raise IntegrityError(
                            f"table {self.name!r}: duplicate primary key {new_key!r}"
                        )
                self._check_unique(new_row)
                storage_key = self._storage_key(new_row)
                self._rows[storage_key] = new_row
                for columns, mapping in self._indexes.values():
                    mapping.setdefault(
                        self.schema.project(new_row, columns), set()
                    ).add(storage_key)
        except IntegrityError:
            # Roll the statement back: restore the original rows.
            for (_, new_row) in changes:
                storage_key = (
                    self.schema.key_of(new_row) if self.schema.primary_key else None
                )
                if storage_key is not None and self._rows.get(storage_key) == new_row:
                    self._remove(storage_key, new_row)
            for key, old_row in matched:
                storage_key = self._storage_key(old_row)
                self._rows[storage_key] = old_row
                for columns, mapping in self._indexes.values():
                    mapping.setdefault(
                        self.schema.project(old_row, columns), set()
                    ).add(storage_key)
            raise
        return changes

    # -- snapshots ----------------------------------------------------------------

    def snapshot(self) -> list[tuple]:
        """A copy of all rows (used by the MATERIALIZED baseline / tests)."""
        return list(self._rows.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table({self.name}, {len(self._rows)} rows)"
