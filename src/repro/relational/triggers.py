"""Statement-level SQL triggers and their transition tables.

This module supplies the relational-trigger facility the paper assumes of
the underlying DBMS (Section 2.3):

* ``AFTER INSERT | UPDATE | DELETE ON <table>``
* ``FOR EACH STATEMENT``
* ``REFERENCING OLD_TABLE AS ... NEW_TABLE AS ...``

The :class:`TriggerContext` passed to the trigger body exposes the post-update
database, the transition tables, the *pruned* transition tables of
Definition 8 (rows that actually changed), and the reconstructed pre-update
contents of the updated table (``B_old``), computed as
``(SELECT * FROM B) EXCEPT (SELECT * FROM ΔB) UNION (SELECT * FROM ∇B)``
exactly as described in Section 4.2.
"""

from __future__ import annotations

import enum
import itertools
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.relational.table import TransitionTable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relational.database import Database

__all__ = ["TriggerEvent", "TriggerContext", "StatementTrigger", "bag_difference"]


class TriggerEvent(enum.Enum):
    """Relational trigger events (and XML trigger events, Section 2.2)."""

    INSERT = "INSERT"
    UPDATE = "UPDATE"
    DELETE = "DELETE"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @classmethod
    def parse(cls, text: str) -> "TriggerEvent":
        """Parse an event name case-insensitively."""
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ValueError(f"unknown trigger event {text!r}") from None


@dataclass
class TriggerContext:
    """Everything a statement-level trigger body may reference.

    Attributes
    ----------
    database:
        The database *after* the statement was applied.
    table:
        Name of the table the statement modified.
    event:
        Which kind of statement fired the trigger.
    inserted:
        ``Δtable`` / ``NEW_TABLE``: affected rows after the statement
        (empty for DELETE).
    deleted:
        ``∇table`` / ``OLD_TABLE``: affected rows before the statement
        (empty for INSERT).
    statements:
        How many DML statements produced these transition tables.  ``1`` for
        an ordinary per-statement firing; greater when
        :meth:`~repro.relational.database.Database.execute_many` coalesced a
        whole batch's deltas into this single set-oriented firing.
    batch_inserted / batch_deleted:
        The updated table's *full* net batch delta (union over every event
        slice of the batch).  ``None`` outside batched execution.  The
        ``B_old`` reconstruction uses these so that a slice firing sees the
        table as it stood before the whole batch, not merely before its own
        slice.
    batch_seen:
        A scratch set shared by every firing of one batch (``None`` outside
        batched execution).  Consumers that must act at most once per logical
        transition per batch — e.g. the active-view service deduplicating XML
        activations rediscovered by sibling event slices — record their keys
        here.
    """

    database: "Database"
    table: str
    event: TriggerEvent
    inserted: TransitionTable
    deleted: TransitionTable
    statements: int = 1
    batch_inserted: TransitionTable | None = None
    batch_deleted: TransitionTable | None = None
    batch_seen: set | None = None
    #: Process-unique token identifying this firing's transition tables.
    #: Every SQL trigger fired for one (statement, table, event) receives the
    #: *same* context object, so the token lets the compiled-plan result
    #: cache (:mod:`repro.xqgm.physical`) reuse delta-dependent subplan
    #: results across the many trigger groups fired by one statement while
    #: never confusing two different firings.
    context_token: int = field(init=False, repr=False, compare=False)
    #: Shared scratch space for the matching engine: xpath probe results per
    #: ``(old node id, new node id)`` pair, reused across the many trigger
    #: groups fired by this statement when they probe the same affected nodes
    #: (see :meth:`repro.matching.engine.GroupMatcher.candidates`).  Dies
    #: with the context, so node ids can never alias across statements.
    probe_cache: dict = field(default_factory=dict, init=False, repr=False, compare=False)
    _net_pruned_inserted: TransitionTable | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _net_pruned_deleted: TransitionTable | None = field(
        default=None, init=False, repr=False, compare=False
    )

    _tokens = itertools.count(1)

    def __post_init__(self) -> None:
        self.context_token = next(TriggerContext._tokens)

    # -- derived tables --------------------------------------------------------

    @property
    def net_inserted(self) -> TransitionTable:
        """The Δ to undo when reconstructing ``B_old``: the whole batch's net
        inserted rows for this table when batched, this statement's otherwise."""
        return self.batch_inserted if self.batch_inserted is not None else self.inserted

    @property
    def net_deleted(self) -> TransitionTable:
        """The ∇ to restore when reconstructing ``B_old`` (see ``net_inserted``)."""
        return self.batch_deleted if self.batch_deleted is not None else self.deleted

    def pruned_inserted(self) -> TransitionTable:
        """``ΔT' = ΔT − ∇T``: inserted rows that are not also in the deleted set.

        This is the pruned transition table of Definition 8 (bag difference
        on full row values), which removes no-op updates such as
        ``SET price = 1 * price``.
        """
        return bag_difference(self.inserted, self.deleted)

    def pruned_deleted(self) -> TransitionTable:
        """``∇T' = ∇T − ΔT``: deleted rows that are not also in the inserted set."""
        return bag_difference(self.deleted, self.inserted)

    def net_pruned_inserted(self) -> TransitionTable:
        """Pruned Δ over the batch-wide net delta (== ``pruned_inserted`` for
        per-statement firings).  The executable trigger plans evaluate their
        delta scans on these so affected keys and old-aggregate compensation
        see the whole batch's changes, whichever event slice is firing.
        Cached: a plan may scan the delta tables many times per firing."""
        if self._net_pruned_inserted is None:
            self._net_pruned_inserted = bag_difference(self.net_inserted, self.net_deleted)
        return self._net_pruned_inserted

    def net_pruned_deleted(self) -> TransitionTable:
        """Pruned ∇ over the batch-wide net delta (see ``net_pruned_inserted``)."""
        if self._net_pruned_deleted is None:
            self._net_pruned_deleted = bag_difference(self.net_deleted, self.net_inserted)
        return self._net_pruned_deleted

    def old_table_rows(self) -> list[tuple]:
        """Reconstruct the pre-update contents of the updated table (``B_old``).

        ``B_old = (B EXCEPT ΔB) UNION ∇B`` per Section 4.2 of the paper.
        The EXCEPT here removes by primary key (each Δ row replaced exactly
        one pre-update row with the same key, or was newly inserted).  For a
        batched firing the *whole batch's* net delta on this table is undone
        (``batch_inserted`` / ``batch_deleted``), not just this slice's, so
        every slice reconstructs the table as it stood before the batch.
        """
        inserted = self.net_inserted
        deleted = self.net_deleted
        table = self.database.table(self.table)
        schema = table.schema
        if schema.primary_key:
            inserted_keys = {schema.key_of(row) for row in inserted}
            rows = [row for row in table if schema.key_of(row) not in inserted_keys]
        else:
            remaining = list(inserted.rows)
            rows = []
            for row in table:
                if row in remaining:
                    remaining.remove(row)
                else:
                    rows.append(row)
        rows.extend(deleted.rows)
        return rows

    def old_table(self) -> TransitionTable:
        """``B_old`` wrapped as a read-only table."""
        return TransitionTable(self.database.table(self.table).schema, self.old_table_rows())


def bag_difference(left: TransitionTable, right: TransitionTable) -> TransitionTable:
    """Multiset difference of two transition tables on full row values."""
    if not len(right):
        return left
    remaining = Counter(right.rows)
    result = []
    for row in left.rows:
        if remaining[row] > 0:
            remaining[row] -= 1
        else:
            result.append(row)
    return TransitionTable(left.schema, result)


@dataclass
class StatementTrigger:
    """An ``AFTER ... FOR EACH STATEMENT`` trigger registered on one table.

    ``body`` is invoked once per qualifying statement with a
    :class:`TriggerContext`.  The optional ``sql_text`` holds the rendered SQL
    of the generated trigger (Figure 16 of the paper) for inspection.
    """

    name: str
    table: str
    events: frozenset[TriggerEvent]
    body: Callable[[TriggerContext], Any]
    sql_text: str | None = None
    enabled: bool = True
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if isinstance(self.events, (TriggerEvent, str)):
            self.events = frozenset({TriggerEvent.parse(str(self.events))})
        else:
            self.events = frozenset(
                event if isinstance(event, TriggerEvent) else TriggerEvent.parse(event)
                for event in self.events
            )

    def handles(self, event: TriggerEvent) -> bool:
        """Whether this trigger fires for the given event."""
        return self.enabled and event in self.events

    def fire(self, context: TriggerContext) -> Any:
        """Invoke the trigger body."""
        return self.body(context)
