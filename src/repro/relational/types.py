"""Value types and SQL-style value semantics for the relational engine.

The engine supports a small but sufficient set of scalar types:

* ``INTEGER`` — Python :class:`int`
* ``REAL`` — Python :class:`float` (integers are accepted and widened)
* ``TEXT`` — Python :class:`str`
* ``BOOLEAN`` — Python :class:`bool`

``None`` represents SQL ``NULL`` for every type.  Comparison helpers follow
SQL three-valued logic: any comparison involving ``NULL`` yields ``None``
("unknown"), and ``WHERE`` treats unknown as false.
"""

from __future__ import annotations

import enum
import math
from typing import Any, Optional

from repro.errors import TypeMismatchError

__all__ = [
    "DataType",
    "coerce_value",
    "type_of_value",
    "sql_eq",
    "sql_ne",
    "sql_lt",
    "sql_le",
    "sql_gt",
    "sql_ge",
    "sql_and",
    "sql_or",
    "sql_not",
    "is_truthy",
    "compare_values",
    "values_equal",
    "sort_key",
]


class DataType(enum.Enum):
    """Declared type of a relational column."""

    INTEGER = "INTEGER"
    REAL = "REAL"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def coerce_value(value: Any, dtype: DataType, *, column: str = "?") -> Any:
    """Coerce ``value`` to the Python representation of ``dtype``.

    ``None`` (NULL) passes through unchanged.  Raises
    :class:`~repro.errors.TypeMismatchError` when the value cannot be
    represented in the declared type without loss of meaning.
    """
    if value is None:
        return None
    if dtype is DataType.INTEGER:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            try:
                return int(value)
            except ValueError as exc:
                raise TypeMismatchError(
                    f"column {column!r}: cannot coerce {value!r} to INTEGER"
                ) from exc
        raise TypeMismatchError(f"column {column!r}: cannot coerce {value!r} to INTEGER")
    if dtype is DataType.REAL:
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError as exc:
                raise TypeMismatchError(
                    f"column {column!r}: cannot coerce {value!r} to REAL"
                ) from exc
        raise TypeMismatchError(f"column {column!r}: cannot coerce {value!r} to REAL")
    if dtype is DataType.TEXT:
        if isinstance(value, str):
            return value
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, (int, float)):
            return format_number(value)
        raise TypeMismatchError(f"column {column!r}: cannot coerce {value!r} to TEXT")
    if dtype is DataType.BOOLEAN:
        if isinstance(value, bool):
            return value
        if isinstance(value, int):
            return bool(value)
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("true", "t", "1"):
                return True
            if lowered in ("false", "f", "0"):
                return False
            raise TypeMismatchError(
                f"column {column!r}: cannot coerce {value!r} to BOOLEAN"
            )
        raise TypeMismatchError(f"column {column!r}: cannot coerce {value!r} to BOOLEAN")
    raise TypeMismatchError(f"column {column!r}: unknown type {dtype!r}")  # pragma: no cover


def type_of_value(value: Any) -> Optional[DataType]:
    """Infer the :class:`DataType` of a Python value (``None`` for NULL)."""
    if value is None:
        return None
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.REAL
    if isinstance(value, str):
        return DataType.TEXT
    raise TypeMismatchError(f"unsupported value type: {type(value).__name__}")


def format_number(value: Any) -> str:
    """Render a numeric value the way the tagger / TEXT coercion expects."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if math.isfinite(value) and value.is_integer():
            return f"{value:.1f}"
        return repr(value)
    return str(value)


# ---------------------------------------------------------------------------
# Three-valued comparison logic
# ---------------------------------------------------------------------------


def _comparable(a: Any, b: Any) -> tuple[Any, Any]:
    """Normalize a pair of non-NULL values so Python comparison is valid."""
    if isinstance(a, bool) or isinstance(b, bool):
        if isinstance(a, bool) and isinstance(b, bool):
            return a, b
        # bool vs number compares numerically; bool vs text compares textually
        if isinstance(a, (int, float)) and isinstance(b, (int, float)):
            return float(a), float(b)
        return str(a).lower(), str(b).lower()
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return a, b
    if isinstance(a, str) and isinstance(b, str):
        return a, b
    # Mixed text/number comparison: compare as text (matches our TEXT coercion).
    return format_number(a) if not isinstance(a, str) else a, (
        format_number(b) if not isinstance(b, str) else b
    )


def sql_eq(a: Any, b: Any) -> Optional[bool]:
    """SQL ``=``: NULL-propagating equality."""
    if a is None or b is None:
        return None
    a, b = _comparable(a, b)
    return a == b


def sql_ne(a: Any, b: Any) -> Optional[bool]:
    """SQL ``<>``."""
    result = sql_eq(a, b)
    return None if result is None else not result


def sql_lt(a: Any, b: Any) -> Optional[bool]:
    """SQL ``<``."""
    if a is None or b is None:
        return None
    a, b = _comparable(a, b)
    return a < b


def sql_le(a: Any, b: Any) -> Optional[bool]:
    """SQL ``<=``."""
    if a is None or b is None:
        return None
    a, b = _comparable(a, b)
    return a <= b


def sql_gt(a: Any, b: Any) -> Optional[bool]:
    """SQL ``>``."""
    if a is None or b is None:
        return None
    a, b = _comparable(a, b)
    return a > b


def sql_ge(a: Any, b: Any) -> Optional[bool]:
    """SQL ``>=``."""
    if a is None or b is None:
        return None
    a, b = _comparable(a, b)
    return a >= b


def sql_and(a: Optional[bool], b: Optional[bool]) -> Optional[bool]:
    """SQL three-valued AND."""
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def sql_or(a: Optional[bool], b: Optional[bool]) -> Optional[bool]:
    """SQL three-valued OR."""
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


def sql_not(a: Optional[bool]) -> Optional[bool]:
    """SQL three-valued NOT."""
    if a is None:
        return None
    return not a


def is_truthy(value: Optional[bool]) -> bool:
    """WHERE-clause semantics: unknown (NULL) counts as false."""
    return value is True


# ---------------------------------------------------------------------------
# Total ordering helpers (for grouping / ORDER BY / key comparison)
# ---------------------------------------------------------------------------

_TYPE_RANK = {type(None): 0, bool: 1, int: 2, float: 2, str: 3}


def sort_key(value: Any) -> tuple:
    """Return a key that totally orders heterogeneous values (NULLs first)."""
    if value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, value)
    if isinstance(value, (int, float)):
        return (2, float(value))
    return (3, str(value))


def compare_values(a: Any, b: Any) -> int:
    """Totally-ordered comparison used by ORDER BY (NULLs sort first)."""
    ka, kb = sort_key(a), sort_key(b)
    if ka < kb:
        return -1
    if ka > kb:
        return 1
    return 0


def values_equal(a: Any, b: Any) -> bool:
    """Grouping / key equality: NULL equals NULL (unlike SQL ``=``)."""
    if a is None and b is None:
        return True
    if a is None or b is None:
        return False
    na, nb = _comparable(a, b)
    return na == nb
