"""Concurrent sharded serving layer for active XML views.

This package turns the single-caller pipeline of
:class:`~repro.core.service.ActiveViewService` into a *server*:

* :class:`ActiveViewServer` (:mod:`repro.serving.server`) — accepts DML from
  many concurrent clients, routes statements to per-shard single-writer
  worker loops, micro-batches each shard's queue through the set-oriented
  batch engine, and shares one thread-safe compiled-plan cache across
  shards;
* :class:`Subscriber` / :class:`Activation`
  (:mod:`repro.serving.subscribers`) — bounded activation fan-out with
  at-least-once, per-node-ordered delivery;
* :mod:`repro.serving.net` — an asyncio TCP front end (framed wire
  protocol, connection-scale subscription fan-out, resumable cursors).
  Imported explicitly (``from repro.serving.net import NetworkServer,
  NetClient``) so the in-process layer stays free of the durability
  dependency.

See ``docs/api.md`` for the full reference,
``examples/concurrent_subscribers.py`` for the in-process walkthrough, and
``examples/network_subscribers.py`` + ``docs/networking.md`` for the
network layer.
"""

from repro.serving.server import ActiveViewServer, ShardStats, Ticket
from repro.serving.subscribers import Activation, Subscriber

__all__ = ["ActiveViewServer", "Activation", "ShardStats", "Subscriber", "Ticket"]
