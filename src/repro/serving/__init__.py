"""Concurrent sharded serving layer for active XML views.

This package turns the single-caller pipeline of
:class:`~repro.core.service.ActiveViewService` into a *server*:

* :class:`ActiveViewServer` (:mod:`repro.serving.server`) — accepts DML from
  many concurrent clients, routes statements to per-shard single-writer
  worker loops, micro-batches each shard's queue through the set-oriented
  batch engine, and shares one thread-safe compiled-plan cache across
  shards;
* :class:`Subscriber` / :class:`Activation`
  (:mod:`repro.serving.subscribers`) — bounded activation fan-out with
  at-least-once, per-node-ordered delivery.

See ``docs/api.md`` for the full reference and
``examples/concurrent_subscribers.py`` for an end-to-end walkthrough.
"""

from repro.serving.server import ActiveViewServer, ShardStats, Ticket
from repro.serving.subscribers import Activation, Subscriber

__all__ = ["ActiveViewServer", "Activation", "ShardStats", "Subscriber", "Ticket"]
