"""Network front end for the serving layer: framed protocol, server, client.

See :mod:`repro.serving.net.protocol` for the wire format,
:mod:`repro.serving.net.netserver` for the multi-loop asyncio server
(:mod:`repro.serving.net.connection` holds the per-loop connection
runtime, :mod:`repro.serving.net.frames` the cross-loop encode cache),
:mod:`repro.serving.net.client` for the asyncio client, and
``docs/networking.md`` for the protocol reference.
"""

from repro.serving.net.client import NetClient, NetSubscription
from repro.serving.net.connection import (
    LoopSubscriber,
    WakeHub,
    subscription_filter,
)
from repro.serving.net.frames import SharedFrameCache
from repro.serving.net.netserver import NetworkServer
from repro.serving.net.protocol import (
    CAP_ACTIVATION_BATCH,
    DEFAULT_MAX_FRAME,
    MAX_BATCH_ACTIVATIONS,
    PROTOCOL_VERSION,
    SUPPORTED_CAPS,
    activation_from_wire,
    activation_to_wire,
    batch_payloads,
    encode_frame,
    negotiate_caps,
    read_frame,
    statement_from_wire,
    statement_to_wire,
)

__all__ = [
    "LoopSubscriber",
    "NetClient",
    "NetSubscription",
    "NetworkServer",
    "SharedFrameCache",
    "WakeHub",
    "subscription_filter",
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_FRAME",
    "CAP_ACTIVATION_BATCH",
    "SUPPORTED_CAPS",
    "MAX_BATCH_ACTIVATIONS",
    "negotiate_caps",
    "batch_payloads",
    "encode_frame",
    "read_frame",
    "statement_to_wire",
    "statement_from_wire",
    "activation_to_wire",
    "activation_from_wire",
]
