"""Network front end for the serving layer: framed protocol, server, client.

See :mod:`repro.serving.net.protocol` for the wire format,
:mod:`repro.serving.net.netserver` for the asyncio server,
:mod:`repro.serving.net.client` for the asyncio client, and
``docs/networking.md`` for the protocol reference.
"""

from repro.serving.net.client import NetClient, NetSubscription
from repro.serving.net.netserver import NetworkServer
from repro.serving.net.protocol import (
    DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
    activation_from_wire,
    activation_to_wire,
    encode_frame,
    read_frame,
    statement_from_wire,
    statement_to_wire,
)

__all__ = [
    "NetClient",
    "NetSubscription",
    "NetworkServer",
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_FRAME",
    "encode_frame",
    "read_frame",
    "statement_to_wire",
    "statement_from_wire",
    "activation_to_wire",
    "activation_from_wire",
]
