"""Asyncio client for the :mod:`repro.serving.net` wire protocol.

:class:`NetClient` is the in-process counterpart of
:class:`~repro.serving.net.netserver.NetworkServer`: it speaks the framed
protocol of :mod:`repro.serving.net.protocol` and exposes the serving
surface as awaitables — statements go out as constant wire records and come
back as result summaries, trigger DDL round-trips to ``ddl_ok`` replies, and
a subscription turns the connection into an activation stream consumed with
``async for``.

One background reader task demultiplexes everything arriving on the socket:
replies resolve per-request futures keyed by message id, ``activation``
frames feed the connection's :class:`NetSubscription`, and a ``paused``
frame (the server's slow-consumer policy) ends the stream with
:attr:`NetSubscription.paused` set — the consumer then acks what it
processed and calls :meth:`NetClient.subscribe` again (same name) to resume
from its durable cursor.  A typical resilient consumer is a loop::

    client = await NetClient.connect(host, port)
    subscription = await client.subscribe("audit", cursor=saved_cursor)
    async for activation in subscription:
        handle(activation)
        await client.ack(activation)

``examples/network_subscribers.py`` runs the full pattern end to end.
"""

from __future__ import annotations

import asyncio
from typing import Any, AsyncIterator, Iterable, Mapping, Sequence

from repro.errors import NetworkError, ProtocolError
from repro.relational.dml import Statement
from repro.serving.net.protocol import (
    DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
    SUPPORTED_CAPS,
    activation_from_wire,
    batch_payloads,
    decode_payload,
    encode_frame,
    negotiate_caps,
    read_frame,
    read_frame_payload,
    statement_to_wire,
)
from repro.serving.subscribers import Activation

__all__ = ["NetClient", "NetSubscription"]

#: Sentinel queued into a subscription to mark end-of-stream (pause/close).
_STREAM_END = object()

#: Process-wide decode memo for server *push* frames, keyed by the frame's
#: CRC-verified payload bytes.  The server encodes an activation (or batch)
#: once and writes the identical frame to every subscriber; a process
#: holding many subscriber connections receives those same bytes once per
#: connection, and this is the decode-side mirror of that shared encode
#: cache: one payload decode + one Activation materialization per distinct
#: frame.  Sharing the Activation objects across connections matches
#: in-process delivery, where every subscriber receives the same
#: (read-only) Activation instance.  Only fully validated activation pushes
#: are stored, so a cache hit can never skip a validation step.  Plain-dict
#: operations are GIL-atomic; the worst cross-loop race costs a duplicate
#: decode.
_PUSH_DECODE_CACHE: dict[bytes, tuple[bool, tuple[Activation, ...]]] = {}
_PUSH_DECODE_CACHE_LIMIT = 128


def _remember_push(payload: bytes, is_batch: bool,
                   activations: tuple[Activation, ...]) -> None:
    if len(_PUSH_DECODE_CACHE) >= _PUSH_DECODE_CACHE_LIMIT:
        _PUSH_DECODE_CACHE.pop(next(iter(_PUSH_DECODE_CACHE)))
    _PUSH_DECODE_CACHE[payload] = (is_batch, activations)


class NetSubscription:
    """The activation stream of one subscription, consumed asynchronously.

    Iterate (``async for``) or call :meth:`get`; the stream ends when the
    server pauses the subscription (slow consumer), the subscription's
    connection closes, or the server shuts down.  After the stream ends,
    :attr:`paused` tells a durable consumer whether to resume by
    re-subscribing under the same name.
    """

    def __init__(self, client: "NetClient", name: str, durable: bool) -> None:
        self.client = client
        #: Subscription name (server-assigned for anonymous subscriptions).
        self.name = name
        #: True when the subscription is backed by a durable cursor.
        self.durable = durable
        #: Set once the server sent a ``paused`` frame (re-subscribe to resume).
        self.paused = False
        #: The ``paused`` frame itself (e.g. its ``sent`` watermarks), if any.
        self.pause_info: dict | None = None
        #: Set once no further activations can arrive.
        self.ended = False
        self._queue: asyncio.Queue = asyncio.Queue()

    def _on_activation(self, payload: Any) -> None:
        self._queue.put_nowait(activation_from_wire(payload))

    def _on_decoded(self, activation: Activation) -> None:
        self._queue.put_nowait(activation)

    def _on_paused(self, message: dict) -> None:
        self.paused = True
        self.pause_info = message
        self._end()

    def _end(self) -> None:
        if not self.ended:
            self.ended = True
            self._queue.put_nowait(_STREAM_END)

    async def get(self, timeout: float | None = None) -> Activation | None:
        """Next activation, or ``None`` once the stream has ended.

        With a ``timeout``, raises ``asyncio.TimeoutError`` if nothing
        arrives in time (the stream itself stays usable).
        """
        try:
            # Fast path: during a fan-out storm the queue is rarely empty,
            # and ``wait_for`` costs a wrapper task + timer per call.
            item = self._queue.get_nowait()
        except asyncio.QueueEmpty:
            if timeout is None:
                item = await self._queue.get()
            else:
                item = await asyncio.wait_for(self._queue.get(), timeout)
        if item is _STREAM_END:
            self._queue.put_nowait(_STREAM_END)  # keep the stream-end latched
            return None
        return item

    def __aiter__(self) -> AsyncIterator[Activation]:
        return self._iterate()

    async def _iterate(self) -> AsyncIterator[Activation]:
        while True:
            activation = await self.get()
            if activation is None:
                return
            yield activation


class NetClient:
    """One connection to a :class:`~repro.serving.net.netserver.NetworkServer`.

    Create with :meth:`connect` (performs the version handshake and starts
    the reader task); close with :meth:`close` or use as an async context
    manager.  All request methods may be called concurrently — replies are
    matched by message id.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        max_frame: int = DEFAULT_MAX_FRAME,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._max_frame = max_frame
        self._send_lock = asyncio.Lock()
        self._futures: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._reader_task: asyncio.Task | None = None
        self._closed = False
        #: Populated from the ``welcome`` frame (shard count, durability).
        self.server_info: dict = {}
        #: Capabilities negotiated with the server (the intersection of what
        #: both endpoints announced); ``activation_batch`` in here means the
        #: server may coalesce activations into batch frames.
        self.caps: frozenset[str] = frozenset()
        #: The connection's subscription, once :meth:`subscribe` succeeded.
        self.subscription: NetSubscription | None = None
        # Coalesced acks: highest pending position per shard, flushed by a
        # scheduled task or — to preserve ack-before-request ordering — by
        # the next outgoing request under the send lock.
        self._pending_acks: dict[int, int] = {}
        self._ack_flush_scheduled = False
        #: Ack frames actually written (after coalescing).
        self.acks_sent = 0
        #: Ack positions merged into an already-pending shard entry.
        self.acks_coalesced = 0
        #: ``activation_batch`` frames received.
        self.batches_received = 0

    # ------------------------------------------------------------------ lifecycle

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        max_frame: int = DEFAULT_MAX_FRAME,
        caps: Iterable[str] | None = None,
    ) -> "NetClient":
        """Open a connection, run the hello/welcome handshake.

        ``caps`` announces capabilities to the server (default: everything
        this client implementation speaks, currently ``activation_batch``).
        Pass ``caps=()`` to negotiate none — the server then behaves exactly
        as toward a pre-capability client, one ``activation`` frame per
        fired trigger.
        """
        announce = sorted(SUPPORTED_CAPS if caps is None else caps)
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer, max_frame=max_frame)
        try:
            await client._send(
                {"type": "hello", "version": PROTOCOL_VERSION, "caps": announce}
            )
            welcome = await read_frame(reader, max_frame=max_frame)
            if welcome["type"] == "error":
                raise NetworkError(
                    f"server refused the connection: {welcome.get('message')}"
                )
            if welcome["type"] != "welcome":
                raise ProtocolError(
                    f"expected a welcome frame, got {welcome['type']!r}"
                )
            if welcome.get("version") != PROTOCOL_VERSION:
                raise ProtocolError(
                    f"protocol version mismatch: server {welcome.get('version')!r}"
                )
        except BaseException:
            writer.close()
            raise
        client.server_info = dict(welcome.get("server") or {})
        client.caps = negotiate_caps(welcome.get("caps")).intersection(announce)
        client._reader_task = asyncio.ensure_future(client._reader_loop())
        return client

    async def close(self) -> None:
        """Close the connection; pending requests fail with NetworkError."""
        if self._closed:
            return
        # A consumer that acked its last activations and closed must not
        # lose those cursor advances to coalescing: flush before teardown.
        if self._pending_acks:
            try:
                await self._flush_acks()
            except (ConnectionError, OSError, NetworkError):
                pass
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self._finish(NetworkError("client closed"))

    async def __aenter__(self) -> "NetClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # ------------------------------------------------------------------ plumbing

    async def _send(self, message: dict) -> None:
        async with self._send_lock:
            # Pending acks always precede the next request on the wire, so
            # coalescing can never reorder an ack past a later ping/submit
            # (the flush barrier semantics durable consumers rely on).
            self._write_pending_acks()
            self._writer.write(encode_frame(message))
            await self._writer.drain()

    def _write_pending_acks(self) -> None:
        # Send-lock held by the caller.
        if not self._pending_acks:
            return
        pending, self._pending_acks = self._pending_acks, {}
        for shard in sorted(pending):
            self._writer.write(
                encode_frame({"type": "ack", "shard": shard, "seq": pending[shard]})
            )
            self.acks_sent += 1

    async def _flush_acks(self) -> None:
        async with self._send_lock:
            self._write_pending_acks()
            await self._writer.drain()

    async def _flush_acks_quietly(self) -> None:
        # A broken transport loses nothing: unacked positions are exactly
        # what a durable resume redelivers (at-least-once).
        try:
            await self._flush_acks()
        except (ConnectionError, OSError):
            pass

    def _schedule_ack_flush(self) -> None:
        if self._ack_flush_scheduled or self._closed:
            return
        self._ack_flush_scheduled = True

        def spawn() -> None:
            self._ack_flush_scheduled = False
            if not self._closed and self._pending_acks:
                asyncio.ensure_future(self._flush_acks_quietly())

        asyncio.get_running_loop().call_soon(spawn)

    async def _request(self, message: dict) -> dict:
        if self._closed:
            raise NetworkError("client is closed")
        self._next_id += 1
        msg_id = self._next_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._futures[msg_id] = future
        try:
            await self._send({**message, "id": msg_id})
            return await future
        finally:
            self._futures.pop(msg_id, None)

    async def _reader_loop(self) -> None:
        error: Exception = NetworkError("connection closed by the server")
        try:
            while True:
                payload_bytes = await read_frame_payload(
                    self._reader, max_frame=self._max_frame
                )
                cached = _PUSH_DECODE_CACHE.get(payload_bytes)
                if cached is not None:
                    is_batch, activations = cached
                    if is_batch:
                        self.batches_received += 1
                    if self.subscription is not None:
                        for activation in activations:
                            self.subscription._on_decoded(activation)
                    continue
                message = decode_payload(payload_bytes)
                mtype = message["type"]
                if mtype == "activation":
                    activation = activation_from_wire(message.get("payload"))
                    _remember_push(payload_bytes, False, (activation,))
                    if self.subscription is not None:
                        self.subscription._on_decoded(activation)
                elif mtype == "activation_batch":
                    # Strictly validated even when no subscription is live:
                    # a malformed batch is a protocol error, not a silent
                    # drop.  One bad record fails the frame exactly like a
                    # malformed single activation would.
                    payloads = batch_payloads(message)
                    self.batches_received += 1
                    activations = tuple(
                        activation_from_wire(record) for record in payloads
                    )
                    _remember_push(payload_bytes, True, activations)
                    if self.subscription is not None:
                        for activation in activations:
                            self.subscription._on_decoded(activation)
                elif mtype == "paused":
                    if self.subscription is not None:
                        self.subscription._on_paused(message)
                elif mtype == "error" and message.get("id") is None:
                    # Connection-fatal server error (protocol violation we
                    # sent, or server shutdown): the close follows.
                    error = NetworkError(
                        f"server error [{message.get('code')}]: "
                        f"{message.get('message')}"
                    )
                else:
                    future = self._futures.get(message.get("id"))
                    if future is not None and not future.done():
                        if mtype == "error":
                            future.set_exception(
                                NetworkError(
                                    f"request failed [{message.get('code')}]: "
                                    f"{message.get('message')}"
                                )
                            )
                        else:
                            future.set_result(message)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass
        except ProtocolError as protocol_error:
            error = protocol_error
        except asyncio.CancelledError:
            error = NetworkError("client closed")
        finally:
            self._finish(error)

    def _finish(self, error: Exception) -> None:
        for future in list(self._futures.values()):
            if not future.done():
                future.set_exception(error)
        self._futures.clear()
        if self.subscription is not None:
            self.subscription._end()

    # ------------------------------------------------------------------ DML

    async def execute(self, statement: Statement) -> list[dict]:
        """Submit one statement; returns its per-shard result summaries."""
        reply = await self._request(
            {"type": "submit", "statements": [statement_to_wire(statement)]}
        )
        return reply["results"][0]

    async def execute_batch(
        self, statements: Sequence[Statement]
    ) -> list[list[dict]]:
        """Submit statements in order within one request.

        Returns one list of per-shard result summaries per statement.  The
        statements are applied in order with respect to each other, so this
        is the high-throughput path for workload streams.
        """
        reply = await self._request(
            {
                "type": "submit",
                "statements": [statement_to_wire(s) for s in statements],
            }
        )
        return reply["results"]

    # ------------------------------------------------------------------ DDL

    async def create_trigger(self, source: str) -> str:
        """CREATE TRIGGER from source text; returns the trigger's name."""
        reply = await self._request(
            {"type": "ddl", "op": "create_trigger", "source": source}
        )
        return reply["names"][0]

    async def register_triggers_bulk(self, sources: Iterable[str]) -> list[str]:
        """Register a batch of triggers (one parse, shared analyses)."""
        reply = await self._request(
            {
                "type": "ddl",
                "op": "register_triggers_bulk",
                "sources": list(sources),
            }
        )
        return list(reply["names"])

    async def drop_trigger(self, name: str) -> None:
        await self._request({"type": "ddl", "op": "drop_trigger", "name": name})

    async def drop_view(self, name: str) -> None:
        await self._request({"type": "ddl", "op": "drop_view", "name": name})

    # ------------------------------------------------------------------ streaming

    async def subscribe(
        self,
        name: str | None = None,
        *,
        view: str | None = None,
        path: Sequence[str] | None = None,
        cursor: Mapping[int, int] | None = None,
    ) -> NetSubscription:
        """Open this connection's activation stream.

        ``name`` makes the subscription durable on a durable server:
        acknowledged positions persist, and a later subscribe under the same
        name (this connection after a pause, or a fresh one after a crash)
        resumes from the cursor with every unacknowledged activation
        redelivered from the outbox.  ``cursor`` explicitly fast-forwards
        the cursor before the backlog is computed.  ``view`` / ``path``
        filter the stream server-side.
        """
        if self.subscription is not None and not self.subscription.ended:
            raise NetworkError("this connection already has an active subscription")
        message: dict = {"type": "subscribe", "name": name}
        if view is not None:
            message["view"] = view
        if path is not None:
            message["path"] = list(path)
        if cursor is not None:
            message["cursor"] = {int(k): int(v) for k, v in cursor.items()}
        # Install the stream *before* the request goes out: the server may
        # push a redelivered backlog ahead of (or right behind) the
        # ``subscribed`` reply, and those frames must land in the queue, not
        # race the reply through a still-unset subscription slot.
        subscription = NetSubscription(self, name or "", False)
        self.subscription = subscription
        try:
            reply = await self._request(message)
        except BaseException:
            self.subscription = None
            raise
        subscription.name = reply["name"]
        subscription.durable = bool(reply.get("durable"))
        return subscription

    async def ack(self, activation: Activation) -> None:
        """Acknowledge an activation (advances the durable cursor)."""
        await self.ack_position(activation.shard, activation.sequence)

    async def ack_position(self, shard: int, sequence: int) -> None:
        """Acknowledge by ``(shard, sequence)`` position (fire-and-forget).

        Acks **coalesce**: positions accumulate per shard (the cursor is a
        monotonic high-water mark, so only the highest matters) and flush as
        one ack frame per shard on the next event-loop turn — or earlier,
        ahead of any outgoing request.  A consumer draining a burst of
        activations therefore sends one ack frame per shard, not one per
        activation; :meth:`close` flushes whatever is still pending.
        """
        if self._closed:
            raise NetworkError("client is closed")
        if shard in self._pending_acks:
            self.acks_coalesced += 1
            if sequence > self._pending_acks[shard]:
                self._pending_acks[shard] = sequence
        else:
            self._pending_acks[shard] = sequence
        self._schedule_ack_flush()

    # ------------------------------------------------------------------ misc

    async def stats(self) -> dict:
        """The server's evaluation report, shard stats, and net counters."""
        reply = await self._request({"type": "stats"})
        return {key: value for key, value in reply.items() if key not in ("type", "id")}

    async def ping(self) -> None:
        """Round-trip liveness check."""
        await self._request({"type": "ping"})
