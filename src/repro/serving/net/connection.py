"""Per-loop connection runtime for the network front end.

Everything in this module runs on (or hands off to) **one** of the server's
event loops: :class:`_Connection` owns a client's framed reader loop,
serialized writer loop, and subscription state; :class:`LoopSubscriber`
bridges shard worker threads to that loop without ever blocking them; and
:class:`_SubmitAggregator` turns ticket completions into one ``result``
reply.  The loop-group orchestration (listener sockets, loop threads,
lifecycle) lives in :mod:`repro.serving.net.netserver`.

:class:`WakeHub`, :class:`LoopSubscriber`, and :func:`subscription_filter`
are the front-end-agnostic half of this module: they know nothing about the
framed TCP protocol, only about handing activations from shard worker
threads to an event loop under a bounded budget.  The HTTP/WebSocket
gateway (:mod:`repro.serving.web`) reuses them verbatim, so both front ends
share one pause/flush/backpressure discipline by construction.

Activation delivery has two shapes, chosen per connection at handshake:

* **single-frame** — one ``activation`` frame per fired trigger (the only
  shape an un-upgraded client ever sees);
* **batched** — for clients that negotiated the ``activation_batch``
  capability, pending activations coalesce into one length+CRC frame,
  bounded by a count budget, a byte budget, and a linger deadline
  (:class:`~repro.serving.net.netserver.NetworkServer` parameters).  A
  batch of one degenerates to the plain single frame, so the shared encode
  cache is hit either way.

The pause/flush discipline is unchanged from the single-loop front end: a
slow consumer's subscription detaches, everything buffered (including a
pending batch) flushes, and a terminal ``paused`` frame carries the
watermarks actually sent.
"""

from __future__ import annotations

import asyncio
import socket
import threading
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import ProtocolError, ServingError
from repro.serving.net.protocol import (
    CAP_ACTIVATION_BATCH,
    PROTOCOL_VERSION,
    encode_frame,
    negotiate_caps,
    read_frame,
    result_to_wire,
    statement_from_wire,
)
from repro.serving.server import Ticket
from repro.serving.subscribers import Activation, Subscriber

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serving.net.netserver import _LoopRuntime

__all__ = [
    "LoopSubscriber",
    "WakeHub",
    "subscription_filter",
    "_Connection",
    "_SubmitAggregator",
]


class WakeHub:
    """Coalesces producer→loop wakeups into one callback per burst.

    Every ``call_soon_threadsafe`` pays for a lock, a callback handle and a
    self-pipe write; a fan-out burst used to pay that once per *subscriber*
    per delivery run — hundreds of wakeup syscalls per activation on a busy
    loop, and the dominant cross-thread cost once frames themselves are
    shared.  The hub funnels them: producers post callables under one lock,
    and only the post that finds the hub idle schedules the single drain
    callback.  The drain runs every posted callable in FIFO order, so the
    per-subscriber ordering contract (draining wakeup before the overflow
    callback) is exactly as strong as scheduling each callable directly.
    """

    __slots__ = ("_loop", "_lock", "_pending", "_armed", "_dead", "posts", "wakeups")

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop
        self._lock = threading.Lock()
        #: ``(fn, on_fail)`` pairs not yet handed to the loop.
        self._pending: list[tuple[Callable[[], None], Callable[[], None] | None]] = []
        self._armed = False
        self._dead = False
        self.posts = 0
        self.wakeups = 0

    def post(
        self, fn: Callable[[], None], on_fail: Callable[[], None] | None = None
    ) -> None:
        """Run ``fn()`` on the loop soon; ``on_fail()`` if the loop is gone."""
        arm = False
        with self._lock:
            dead = self._dead
            if not dead:
                self._pending.append((fn, on_fail))
                self.posts += 1
                if not self._armed:
                    self._armed = arm = True
                    self.wakeups += 1
        if dead:
            if on_fail is not None:
                on_fail()
            return
        if not arm:
            return
        try:
            self._loop.call_soon_threadsafe(self._drain)
        except RuntimeError:
            # The loop is gone (server stopped mid-delivery).  Every pending
            # post would otherwise be lost silently — run the failure hooks
            # so subscribers stop accepting instead of leaking reservations.
            with self._lock:
                self._dead = True
                failed, self._pending = self._pending, []
                self._armed = False
            for _fn, fail in failed:
                if fail is not None:
                    fail()

    def _drain(self) -> None:  # loop thread
        while True:
            with self._lock:
                batch = self._pending
                if not batch:
                    self._armed = False
                    return
                self._pending = []
            for fn, _fail in batch:
                fn()


class LoopSubscriber(Subscriber):
    """A subscriber whose delivery hands off to a connection's event loop.

    ``_offer`` runs on the producing shard worker's thread and must never
    block it (the in-process :class:`Subscriber` blocks on a full queue —
    correct for one consumer thread, fatal for one slow socket among
    thousands).  Instead it reserves a slot of the connection's bounded
    send buffer under a lock, appends to a pending run, and makes sure one
    *wakeup* is scheduled on the loop; the wakeup drains the whole run in
    one callback.  The wakeup itself travels through the loop's
    :class:`WakeHub`, so a burst touching many subscribers on one loop
    pays for a single ``call_soon_threadsafe``, not one per subscriber.
    Coalescing the handoff this way (instead of one
    ``call_soon_threadsafe`` per activation) is what lets a fan-out burst
    actually reach the connection as a run — the batching layer then folds
    the run into batch frames instead of finding one activation at a time.
    When the buffer is full the subscriber flips to *paused* and schedules
    the overflow policy; loop-callback FIFO guarantees the draining wakeup
    runs first, so every reserved activation is framed before the
    ``paused`` frame.  ``release`` is called by the connection after the
    frame (one activation's worth, or a whole batch's) has been written
    and drained.
    """

    def __init__(
        self,
        name: str,
        *,
        limit: int,
        hub: WakeHub,
        deliver: Callable[[Activation], None],
        overflow: Callable[[], None],
        accept: Callable[[Activation], bool] | None = None,
        run_end: Callable[[], None] | None = None,
    ) -> None:
        super().__init__(name, capacity=max(1, limit))
        self.limit = limit
        self._hub = hub
        self._deliver = deliver
        self._overflow = overflow
        self._accept = accept
        self._run_end = run_end
        self._flight_lock = threading.Lock()
        #: Activations reserved but not yet handed to the loop, drained as
        #: one run by the next wakeup (guarded by ``_flight_lock``).
        self._pending_run: list[Activation] = []
        self._wake_scheduled = False
        #: Activations handed to the loop whose frames are not yet drained —
        #: the bounded send buffer (<= ``limit`` by construction; the
        #: slow-consumer regression test asserts it).
        self.inflight = 0
        #: True once the buffer overflowed; no further deliveries happen.
        self.paused = False
        #: Activations skipped by the subscription's view/path filter.
        self.filtered = 0
        #: Activations refused because the subscription was paused (or its
        #: connection closed) — redeliverable from a durable outbox, and
        #: never silently lost: the client was told via the ``paused`` frame.
        self.refused = 0

    def _offer(self, activation: Activation, give_up: Callable[[], bool]) -> bool:
        if self._accept is not None and not self._accept(activation):
            self.filtered += 1
            return True
        if self.closed or self.paused:
            self.refused += 1
            return False
        with self._flight_lock:
            if self.inflight >= self.limit:
                self.paused = True
                self.refused += 1
                self._schedule(self._overflow)
                return False
            self.inflight += 1
            self._pending_run.append(activation)
            wake = not self._wake_scheduled
            if wake:
                self._wake_scheduled = True
        self.delivered += 1
        if wake:
            self._schedule(self._wake)
        return True

    def _wake(self) -> None:
        """Drain every pending activation in one loop callback."""
        delivered = False
        while True:
            with self._flight_lock:
                run = self._pending_run
                if not run:
                    # Only stand down with the run empty under the lock: a
                    # producer that appended meanwhile saw the wakeup still
                    # scheduled and skipped scheduling another.
                    self._wake_scheduled = False
                    break
                self._pending_run = []
            for activation in run:
                self._deliver(activation)
            delivered = True
        if delivered and self._run_end is not None:
            # The run is over — nothing more is coming in *this* callback,
            # so a batching connection flushes its pending batch now rather
            # than paying the linger for a burst that has already ended.
            self._run_end()

    def _schedule(self, fn: Callable[[], None]) -> None:
        # When the loop is gone (server stopped mid-delivery) the slot can
        # never drain, so the hub's failure hook stops accepting instead of
        # leaking reservations.
        self._hub.post(fn, self.close)

    def release(self, count: int = 1) -> None:
        """Return send-buffer slots (a frame's activations written + drained)."""
        with self._flight_lock:
            self.inflight -= count


def subscription_filter(
    view: str | None, path: list | None
) -> Callable[[Activation], bool] | None:
    """Build the optional view/path acceptance predicate for a subscription."""
    if view is None and path is None:
        return None
    prefix = tuple(path) if path is not None else None

    def accept(activation: Activation) -> bool:
        if view is not None and activation.view != view:
            return False
        if prefix is not None and activation.path[: len(prefix)] != prefix:
            return False
        return True

    return accept


class _SubmitAggregator:
    """Collects one submit request's tickets and replies once all resolve.

    Done-callbacks run on shard worker threads; the last one hands the
    fully-resolved set back to the connection's loop.  No thread blocks
    waiting — the resolution *is* the notification.
    """

    def __init__(self, connection: "_Connection", msg_id: int, tickets: list[Ticket]):
        self._connection = connection
        self._msg_id = msg_id
        self._tickets = tickets
        self._lock = threading.Lock()
        self._remaining = len(tickets)
        for ticket in tickets:
            ticket.add_done_callback(self._one_done)

    def _one_done(self, _ticket: Ticket) -> None:
        with self._lock:
            self._remaining -= 1
            if self._remaining:
                return
        self._connection.schedule(self._reply)

    def _reply(self) -> None:  # loop thread
        results: list[list[dict]] = []
        for ticket in self._tickets:
            try:
                outcome = ticket.result(timeout=0)
            except Exception as error:  # noqa: BLE001 - forwarded to the client
                self._connection.send_error(self._msg_id, "execution", str(error))
                return
            parts = outcome if isinstance(outcome, list) else [outcome]
            results.append([result_to_wire(part) for part in parts])
        self._connection.send(
            {"type": "result", "id": self._msg_id, "results": results}
        )


class _Connection:
    """One client connection: framed reader loop + serialized writer loop."""

    def __init__(
        self,
        runtime: "_LoopRuntime",
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.runtime = runtime
        self.server = runtime.server
        self.reader = reader
        self.writer = writer
        # Bounded: activations respect the subscriber's inflight cap, and a
        # well-behaved client has at most a handful of replies outstanding.
        # Overflow means the peer pipelines requests without reading replies
        # — the connection is cut rather than buffering without limit.
        self._out: asyncio.Queue = asyncio.Queue(
            maxsize=self.server.send_buffer + 64
        )
        self._writer_task: asyncio.Task | None = None
        self.subscriber: LoopSubscriber | None = None
        self._sent_watermark: dict[int, int] = {}
        self._loop = asyncio.get_running_loop()
        #: True once the peer negotiated ``activation_batch`` *and* the
        #: server has batching enabled; otherwise every activation travels
        #: as its own frame, exactly as before the capability existed.
        self.batching = False
        self._pending_batch: list[Activation] = []
        self._pending_bytes = 0
        self._linger_handle: asyncio.TimerHandle | None = None

    # ------------------------------------------------------------------ sending

    def send(
        self, message: dict | bytes, after: Callable[[], None] | None = None
    ) -> None:
        """Queue a frame (loop thread only); ``after`` runs once it drained.

        ``message`` is a message dict, or pre-encoded frame bytes (the
        shared-fan-out path).
        """
        try:
            self._out.put_nowait((message, after))
        except asyncio.QueueFull:
            self.runtime.counters["overflow_closes"] += 1
            if after is not None:
                after()
            try:
                self.writer.close()
            except (ConnectionError, OSError):  # pragma: no cover - defensive
                pass

    def send_error(self, msg_id: int | None, code: str, message: str) -> None:
        self.send({"type": "error", "id": msg_id, "code": code, "message": message})

    def schedule(self, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` on the loop from any thread (no-op if loop died)."""
        try:
            self._loop.call_soon_threadsafe(fn, *args)
        except RuntimeError:
            pass

    async def _writer_loop(self) -> None:
        counters = self.runtime.counters
        while True:
            item = await self._out.get()
            if item is None:
                return
            message, after = item
            try:
                frame = (
                    message if isinstance(message, bytes) else encode_frame(message)
                )
                self.writer.write(frame)
                await self.writer.drain()
                counters["frames_sent"] += 1
                counters["bytes_sent"] += len(frame)
            except (ConnectionError, OSError):
                # Peer went away mid-write: stop writing, let the reader
                # loop observe the broken transport and run the cleanup.
                return
            finally:
                if after is not None:
                    after()

    # ------------------------------------------------------------------ lifecycle

    async def run(self) -> None:
        self.runtime.counters["connections_opened"] += 1
        if self.server.write_buffer_limit is not None:
            # A small high-water mark — transport *and* kernel send buffer —
            # makes ``drain()`` (and therefore the inflight accounting)
            # track the consumer's real pace instead of buffering depth;
            # tests pin the pause policy with this.
            limit = self.server.write_buffer_limit
            self.writer.transport.set_write_buffer_limits(high=limit)
            raw = self.writer.get_extra_info("socket")
            if raw is not None:
                raw.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, limit)
        self._writer_task = asyncio.ensure_future(self._writer_loop())
        try:
            await self._handshake()
            while True:
                try:
                    message = await read_frame(
                        self.reader, max_frame=self.server.max_frame
                    )
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    break  # closed (possibly mid-frame) — a clean goodbye
                self.runtime.counters["frames_received"] += 1
                await self._dispatch(message)
        except ProtocolError as error:
            self.runtime.counters["protocol_errors"] += 1
            self.send_error(None, "protocol", str(error))
        except (ConnectionError, OSError):
            pass
        finally:
            await self._cleanup()

    async def _handshake(self) -> None:
        try:
            hello = await read_frame(self.reader, max_frame=self.server.max_frame)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            raise ProtocolError("connection closed before the hello frame")
        if hello["type"] != "hello":
            raise ProtocolError(f"expected a hello frame, got {hello['type']!r}")
        if hello.get("version") != PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol version mismatch: client {hello.get('version')!r}, "
                f"server {PROTOCOL_VERSION}"
            )
        caps = negotiate_caps(hello.get("caps"))
        if not self.server.batching:
            caps = caps - {CAP_ACTIVATION_BATCH}
        self.batching = CAP_ACTIVATION_BATCH in caps
        self.send(
            {
                "type": "welcome",
                "version": PROTOCOL_VERSION,
                "caps": sorted(caps),
                "server": {
                    "shards": self.server.core.shard_count,
                    "durable": self.server.durable is not None,
                    "loops": self.server.loops,
                },
            }
        )

    async def _cleanup(self) -> None:
        self._detach_subscriber()
        self._flush_batch()
        # Flush what is already queued (bounded by the send buffer), then
        # close the transport.  A dead peer just errors the writer loop out.
        try:
            self._out.put_nowait(None)
        except asyncio.QueueFull:
            if self._writer_task is not None:
                self._writer_task.cancel()
        if self._writer_task is not None:
            try:
                await asyncio.wait_for(self._writer_task, timeout=5)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                self._writer_task.cancel()
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self.runtime.connections.discard(self)

    def _detach_subscriber(self) -> None:
        if self.subscriber is not None:
            self.server.core.unsubscribe(self.subscriber)

    # ------------------------------------------------------------------ dispatch

    async def _dispatch(self, message: dict) -> None:
        mtype = message["type"]
        if mtype == "submit":
            await self._handle_submit(message)
        elif mtype == "ddl":
            await self._handle_ddl(message)
        elif mtype == "subscribe":
            await self._handle_subscribe(message)
        elif mtype == "ack":
            self._handle_ack(message)
        elif mtype == "stats":
            self._handle_stats(message)
        elif mtype == "ping":
            self.send({"type": "pong", "id": self._request_id(message)})
        else:
            raise ProtocolError(f"unknown message type {mtype!r}")

    @staticmethod
    def _request_id(message: dict) -> int:
        msg_id = message.get("id")
        if not isinstance(msg_id, int):
            raise ProtocolError(f"{message['type']!r} message needs an integer 'id'")
        return msg_id

    async def _handle_submit(self, message: dict) -> None:
        msg_id = self._request_id(message)
        wire_statements = message.get("statements")
        if not isinstance(wire_statements, list) or not wire_statements:
            self.send_error(msg_id, "bad-statement",
                            "'statements' must be a non-empty list")
            return
        try:
            statements = [statement_from_wire(record) for record in wire_statements]
        except ProtocolError as error:
            self.send_error(msg_id, "bad-statement", str(error))
            return
        tickets: list[Ticket] = []
        try:
            # Submitted in arrival order from worker threads: a full shard
            # queue blocks this connection's dispatch (its backpressure),
            # never the shared event loop.
            for statement in statements:
                tickets.append(
                    await asyncio.to_thread(self.server.core.submit, statement)
                )
        except ServingError as error:
            # Statements already queued will resolve through the aggregator
            # path on a later submit; the client sees this request fail.
            self.send_error(msg_id, "state", str(error))
            return
        except Exception as error:  # noqa: BLE001 - routing errors etc.
            self.send_error(msg_id, "execution", str(error))
            return
        self.runtime.counters["statements_submitted"] += len(statements)
        _SubmitAggregator(self, msg_id, tickets)

    async def _handle_ddl(self, message: dict) -> None:
        msg_id = self._request_id(message)
        op = message.get("op")
        core = self.server.core
        try:
            if op == "create_trigger":
                source = message.get("source")
                if not isinstance(source, str):
                    raise ProtocolError("create_trigger needs a 'source' string")
                spec = await asyncio.to_thread(core.create_trigger, source)
                names = [spec.name]
            elif op == "register_triggers_bulk":
                sources = message.get("sources")
                if (not isinstance(sources, list)
                        or not all(isinstance(s, str) for s in sources)):
                    raise ProtocolError(
                        "register_triggers_bulk needs a 'sources' string list"
                    )
                specs = await asyncio.to_thread(core.register_triggers_bulk, sources)
                names = [spec.name for spec in specs]
            elif op in ("drop_trigger", "drop_view"):
                name = message.get("name")
                if not isinstance(name, str):
                    raise ProtocolError(f"{op} needs a 'name' string")
                target = core.drop_trigger if op == "drop_trigger" else core.drop_view
                await asyncio.to_thread(target, name)
                names = [name]
            else:
                raise ProtocolError(f"unknown ddl op {op!r}")
        except ProtocolError as error:
            self.send_error(msg_id, "bad-statement", str(error))
            return
        except Exception as error:  # noqa: BLE001 - trigger/translation errors
            self.send_error(msg_id, "execution", str(error))
            return
        self.send({"type": "ddl_ok", "id": msg_id, "names": names})

    async def _handle_subscribe(self, message: dict) -> None:
        msg_id = self._request_id(message)
        if self.subscriber is not None and not self.subscriber.paused \
                and not self.subscriber.closed:
            self.send_error(msg_id, "state",
                            "this connection already has an active subscription")
            return
        name = message.get("name")
        view = message.get("view")
        path = message.get("path")
        cursor = message.get("cursor")
        if name is not None and not isinstance(name, str):
            self.send_error(msg_id, "bad-statement", "'name' must be a string or None")
            return
        if path is not None and not isinstance(path, (list, tuple)):
            self.send_error(msg_id, "bad-statement", "'path' must be a step list")
            return
        durable = self.server.durable
        resumable = durable is not None and name is not None
        if cursor is not None and not resumable:
            # Cursors need the durable outbox AND a stable name; refusing is
            # the no-silent-fallback contract — an ignored cursor would turn
            # at-least-once into silently-lossy.
            self.send_error(
                msg_id, "unsupported",
                "cursors require a durable server and a named subscription",
            )
            return
        limit = self.server.send_buffer
        subscriber = LoopSubscriber(
            name or f"net-anon-{id(self)}",
            limit=limit,
            hub=self.runtime.wake_hub,
            deliver=self._deliver_activation,
            overflow=self._pause_subscription,
            accept=subscription_filter(view, path),
            run_end=self._flush_batch if self.server.batch_eager_flush else None,
        )
        self.subscriber = subscriber
        self._sent_watermark = {}
        try:
            if resumable:
                def attach() -> None:
                    if cursor is not None:
                        durable.fast_forward(name, cursor)
                    durable.subscribe(name, subscriber=subscriber)

                await asyncio.to_thread(attach)
            else:
                self.server.core.attach_subscriber(subscriber)
        except Exception as error:  # noqa: BLE001 - persistence/serving errors
            self.subscriber = None
            self.send_error(msg_id, "execution", str(error))
            return
        self.runtime.counters["subscriptions_opened"] += 1
        self.send(
            {
                "type": "subscribed",
                "id": msg_id,
                "name": subscriber.name,
                "durable": resumable,
            }
        )

    def _handle_ack(self, message: dict) -> None:
        shard = message.get("shard")
        sequence = message.get("seq")
        if not isinstance(shard, int) or not isinstance(sequence, int):
            raise ProtocolError("ack needs integer 'shard' and 'seq'")
        if self.subscriber is None:
            raise ProtocolError("ack without a subscription")
        # Valid after a pause too: acking what arrived before the pause is
        # exactly what advances the durable cursor for the resume.
        self.subscriber.ack_position(shard, sequence)

    def _handle_stats(self, message: dict) -> None:
        msg_id = self._request_id(message)
        core = self.server.core
        reply = {
            "type": "stats_reply",
            "id": msg_id,
            "evaluation": {
                str(k): int(v) for k, v in core.evaluation_report().items()
            },
            "shards": [stats.as_dict() for stats in core.stats],
            "queues": core.queue_depths,
            "activations_published": core.activations_published,
            "net": self.server.net_report(),
        }
        if self.server.durable is not None:
            reply["durability"] = self.server.durable.durability_report()
        self.send(reply)

    # ------------------------------------------------------------------ fan-out

    def _deliver_activation(self, activation: Activation) -> None:  # loop thread
        subscriber = self.subscriber
        watermark = self._sent_watermark
        if activation.sequence > watermark.get(activation.shard, 0):
            watermark[activation.shard] = activation.sequence
        self.runtime.counters["activations_sent"] += 1
        if not self.batching:
            # Pre-framed once per activation, shared by every subscribed
            # connection on every loop — at fan-out scale the encode would
            # otherwise dominate.
            frame, hit = self.server.frame_cache.single_frame(activation)
            self._count_cache(hit)
            release = subscriber.release if subscriber is not None else None
            self.send(frame, after=release)
            return
        # Batching: the byte budget is checked *before* appending so one
        # flush never exceeds it (and therefore never exceeds max_frame);
        # the count budget is checked after.
        size = self.server.frame_cache.frame_size(activation)
        if self._pending_batch and (
            self._pending_bytes + size > self.server.batch_max_bytes
        ):
            self._flush_batch()
        self._pending_batch.append(activation)
        self._pending_bytes += size
        if len(self._pending_batch) >= self.server.batch_max_count:
            self._flush_batch()
        elif self._linger_handle is None:
            self._linger_handle = self._loop.call_later(
                self.server.batch_linger, self._flush_batch
            )

    def _count_cache(self, hit: bool) -> None:
        key = "shared_encode_hits" if hit else "shared_encode_misses"
        self.runtime.counters[key] += 1

    def _flush_batch(self) -> None:  # loop thread
        if self._linger_handle is not None:
            self._linger_handle.cancel()
            self._linger_handle = None
        pending = self._pending_batch
        if not pending:
            return
        self._pending_batch = []
        self._pending_bytes = 0
        subscriber = self.subscriber
        if len(pending) == 1:
            frame, hit = self.server.frame_cache.single_frame(pending[0])
            release = subscriber.release if subscriber is not None else None
            self.send(frame, after=release)
        else:
            frame, hit = self.server.frame_cache.batch_frame(tuple(pending))
            count = len(pending)
            release = (
                (lambda: subscriber.release(count))
                if subscriber is not None else None
            )
            self.runtime.counters["activation_batches_sent"] += 1
            self.runtime.counters["batched_activations_sent"] += count
            self.send(frame, after=release)
        self._count_cache(hit)

    def _pause_subscription(self) -> None:  # loop thread
        subscriber = self.subscriber
        if subscriber is None:
            return
        self.runtime.counters["subscriptions_paused"] += 1
        # Detach first so shard workers stop offering; everything already
        # buffered — the pending batch included — still flushes (FIFO),
        # then the pause notice arrives.
        self._detach_subscriber()
        self._flush_batch()
        self.send(
            {
                "type": "paused",
                "reason": "slow-consumer",
                "sent": {shard: seq for shard, seq in self._sent_watermark.items()},
            }
        )
