"""Cross-loop cache of encoded activation frames.

One fired activation fans out to every subscribed connection; at fan-out
scale the dominant cost is not the socket write but the *encode* (codec +
CRC) if it happens once per connection.  PR 8 cached the encoded frame per
activation on the single event loop; with the front end sharded across
loops (:mod:`repro.serving.net.netserver`) the cache must be shared across
threads, so :class:`SharedFrameCache` guards it with a plain lock — one
encode per activation (or per batch shape) process-wide, every loop reuses
the bytes.

Two frame shapes are cached:

* **single** — ``activation {payload}``, sent to every subscriber that did
  not negotiate the batching capability, and for batches of one;
* **batch** — ``activation_batch {payloads: [...]}``, keyed by the identity
  tuple of its activations, so connections whose linger windows coalesce
  the same run of activations (the common hot-subscription case) share one
  encode.

Entries pin their activation objects, which keeps the ``id()`` keys stable
while cached; eviction is FIFO-bounded, sized so a fan-out burst stays
resident.  All methods are thread-safe and callable from any loop thread.
"""

from __future__ import annotations

import threading

from repro.serving.net.protocol import activation_to_wire, encode_frame
from repro.serving.subscribers import Activation

__all__ = ["SharedFrameCache"]


class SharedFrameCache:
    """Encode each activation (and batch shape) once, share it everywhere."""

    def __init__(self, capacity: int = 2048) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        # id(activation) -> (activation, wire record, single frame bytes)
        self._singles: dict[int, tuple[Activation, dict, bytes]] = {}
        # tuple of ids -> (activations, batch frame bytes)
        self._batches: dict[tuple, tuple[tuple[Activation, ...], bytes]] = {}

    def _single_entry(self, activation: Activation) -> tuple[tuple, bool]:
        # lock held by the caller
        entry = self._singles.get(id(activation))
        if entry is not None and entry[0] is activation:
            return entry, True
        record = activation_to_wire(activation)
        frame = encode_frame({"type": "activation", "payload": record})
        entry = (activation, record, frame)
        self._singles[id(activation)] = entry
        self._trim(self._singles)
        return entry, False

    def _trim(self, cache: dict) -> None:
        while len(cache) > self.capacity:
            cache.pop(next(iter(cache)))

    def single_frame(self, activation: Activation) -> tuple[bytes, bool]:
        """The ``activation`` frame for one activation; returns (bytes, hit)."""
        with self._lock:
            entry, hit = self._single_entry(activation)
            return entry[2], hit

    def frame_size(self, activation: Activation) -> int:
        """Encoded size of one activation's single frame (batch byte budget).

        A batch frame carrying the same record is slightly smaller per
        activation (one shared header), so budgeting with the single-frame
        size errs on the safe side of every frame cap.
        """
        with self._lock:
            entry, _hit = self._single_entry(activation)
            return len(entry[2])

    def batch_frame(
        self, activations: tuple[Activation, ...]
    ) -> tuple[bytes, bool]:
        """The ``activation_batch`` frame for a run; returns (bytes, hit)."""
        key = tuple(id(a) for a in activations)
        with self._lock:
            entry = self._batches.get(key)
            if entry is not None and all(
                cached is live for cached, live in zip(entry[0], activations)
            ):
                return entry[1], True
            records = [self._single_entry(a)[0][1] for a in activations]
            frame = encode_frame(
                {"type": "activation_batch", "payloads": records}
            )
            self._batches[key] = (tuple(activations), frame)
            self._trim(self._batches)
            return frame, False
