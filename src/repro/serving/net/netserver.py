"""Asyncio network front end over the sharded serving layer.

:class:`NetworkServer` puts a socket on an
:class:`~repro.serving.server.ActiveViewServer` (or a
:class:`~repro.persist.durable.DurableServer`): clients connect over TCP,
speak the framed protocol of :mod:`repro.serving.net.protocol`, and get the
full serving surface — DML submission (single and batch, with ticket-style
``result`` replies), trigger DDL including bulk registration, activation
subscriptions with resumable cursors, and server statistics.

The front end is a **loop group**: ``loops`` asyncio event loops, each on
its own daemon thread, each owning its connections' reader/writer/
subscription state outright — no state is shared between loops except the
:class:`~repro.serving.net.frames.SharedFrameCache` (one activation encode,
every loop reuses the bytes) and the serving core underneath.  Each
connection costs a reader coroutine and a writer coroutine, not a thread,
which is what makes connection-scale fan-out (10k+ subscribers) reachable;
sharding the loops lets encode+drain work use more than one core
(``benchmarks/bench_net_fanout.py`` drives the sweep).

Two accept strategies, chosen automatically:

* **SO_REUSEPORT** (default where the platform supports it and
  ``loops > 1``) — every loop binds its own listener on the same address
  and the kernel load-balances accepted connections across them; no accept
  hot spot, no cross-thread hand-off.
* **accept-and-hand-off** (fallback; force with ``reuse_port=False``) —
  loop 0 owns the single listener and deals accepted sockets round-robin to
  the loop group; the target loop adopts the raw socket into its own
  streams.  Slightly more cross-thread traffic per *accept*, but delivery
  still runs entirely on the owning loop.

Bridging the thread world and the loops, backpressured both ways (the
details live in :mod:`repro.serving.net.connection`):

* **DML inbound** — a connection's statements are submitted to the shard
  queues via worker threads (``asyncio.to_thread``) in arrival order; a
  full shard queue blocks only that connection's dispatch loop, never an
  event loop.
* **Activations outbound** — each subscription's ``_offer`` never blocks
  the shard worker: it reserves a slot of the connection's bounded send
  buffer and hands the activation to the owning loop.  Clients that
  negotiated the ``activation_batch`` capability get pending activations
  coalesced into one frame (count budget ``batch_max_count``, byte budget
  ``batch_max_bytes``, linger deadline ``batch_linger``); slots release
  only after the frame drains.  A slow consumer still **pauses** exactly as
  before: detach, flush (pending batch included), terminal ``paused``
  frame, durable resume via the persisted cursor.

``docs/networking.md`` is the protocol reference (the "scaling the front
end" section covers loop-count and batching tuning);
``tests/serving/test_net_protocol_fuzz.py`` pins the no-crash guarantee and
``tests/property/test_property_net_equivalence.py`` pins delivery
equivalence against the in-process subscriber oracle across loop counts and
batching modes.
"""

from __future__ import annotations

import asyncio
import socket
import threading

from repro.errors import NetworkError
from repro.persist.durable import DurableServer
from repro.serving.net.connection import WakeHub, _Connection
from repro.serving.net.frames import SharedFrameCache
from repro.serving.net.protocol import DEFAULT_MAX_FRAME
from repro.serving.server import ActiveViewServer

__all__ = ["NetworkServer"]

#: Listen backlog per listener socket.
_BACKLOG = 512


def _new_counters() -> dict[str, int]:
    """One loop's wire counters (aggregated by ``NetworkServer.counters``)."""
    return {
        "connections_opened": 0,
        "frames_received": 0,
        "frames_sent": 0,
        "bytes_sent": 0,
        "statements_submitted": 0,
        "subscriptions_opened": 0,
        "subscriptions_paused": 0,
        "activations_sent": 0,
        "activation_batches_sent": 0,
        "batched_activations_sent": 0,
        "shared_encode_hits": 0,
        "shared_encode_misses": 0,
        "protocol_errors": 0,
        "overflow_closes": 0,
        "handoffs": 0,
    }


class _LoopRuntime:
    """One event loop of the group: a daemon thread owning its connections.

    All of a runtime's mutable state — its ``connections`` set and its
    ``counters`` — is touched only from its own loop thread (reads from
    other threads are reporting-only), so the loops never contend on locks
    in the delivery path.
    """

    def __init__(self, server: "NetworkServer", index: int) -> None:
        self.server = server
        self.index = index
        self.listen_sock: socket.socket | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        #: Set together with ``loop``; coalesces producer wakeups targeting
        #: this loop into one ``call_soon_threadsafe`` per burst.
        self.wake_hub: WakeHub | None = None
        self.thread: threading.Thread | None = None
        self.connections: set[_Connection] = set()
        self.counters = _new_counters()
        self._started = threading.Event()
        self._shutdown: asyncio.Event | None = None
        self._accept_task: asyncio.Task | None = None
        self._conn_tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> None:
        self.thread = threading.Thread(
            target=self._run, name=f"net-loop-{self.index}", daemon=True
        )
        self.thread.start()
        if not self._started.wait(timeout=30):
            raise NetworkError(
                f"network loop {self.index} failed to start within 30s"
            )

    def request_stop(self) -> None:
        loop = self.loop
        if loop is None:
            return
        try:
            loop.call_soon_threadsafe(self._signal_shutdown)
        except RuntimeError:
            pass

    def _signal_shutdown(self) -> None:  # loop thread
        if self._shutdown is not None:
            self._shutdown.set()

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self.wake_hub = WakeHub(loop)
        self.loop = loop
        try:
            loop.run_until_complete(self._serve())
        finally:
            asyncio.set_event_loop(None)
            loop.close()

    async def _serve(self) -> None:
        self._shutdown = asyncio.Event()
        if self.listen_sock is not None:
            self._accept_task = asyncio.ensure_future(self._accept_loop())
        self._started.set()
        try:
            await self._shutdown.wait()
        finally:
            if self._accept_task is not None:
                self._accept_task.cancel()
                try:
                    await self._accept_task
                except (asyncio.CancelledError, OSError):
                    pass
            if self.listen_sock is not None:
                self.listen_sock.close()
            for connection in list(self.connections):
                try:
                    connection.writer.close()
                except (ConnectionError, OSError):  # pragma: no cover - defensive
                    pass
            # Reader loops observe their closed transports and clean up
            # (detaching subscribers); give them a beat to finish.
            for _ in range(100):
                if not self.connections:
                    break
                await asyncio.sleep(0.02)

    # ------------------------------------------------------------------ accepting

    async def _accept_loop(self) -> None:
        loop = asyncio.get_running_loop()
        assert self.listen_sock is not None
        while True:
            try:
                conn, _addr = await loop.sock_accept(self.listen_sock)
            except asyncio.CancelledError:
                raise
            except OSError:
                return
            target = self.server._route_connection(self)
            if target is self:
                self._spawn(conn)
            else:
                self.counters["handoffs"] += 1
                target.adopt(conn)

    def adopt(self, conn: socket.socket) -> None:
        """Take ownership of an accepted socket (called from another loop)."""
        loop = self.loop
        if loop is None:
            conn.close()
            return
        try:
            loop.call_soon_threadsafe(self._spawn, conn)
        except RuntimeError:
            conn.close()

    def _spawn(self, conn: socket.socket) -> None:  # loop thread
        task = asyncio.ensure_future(self._run_connection(conn))
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)

    async def _run_connection(self, conn: socket.socket) -> None:
        try:
            reader, writer = await asyncio.open_connection(sock=conn)
        except OSError:
            conn.close()
            return
        connection = _Connection(self, reader, writer)
        self.connections.add(connection)
        await connection.run()


class NetworkServer:
    """TCP front end for an :class:`ActiveViewServer` / :class:`DurableServer`.

    Parameters
    ----------
    server:
        The serving stack to expose.  A :class:`DurableServer` additionally
        enables named subscriptions with resumable cursors (the durable
        outbox is the replay substrate); on a plain server, subscriptions
        are live-only.
    host, port:
        Bind address.  ``port=0`` (default) picks an ephemeral port; read
        :attr:`address` after :meth:`start`.
    loops:
        Event loops in the acceptor group, one daemon thread each.  ``1``
        (default) reproduces the single-loop front end exactly.
    reuse_port:
        ``None`` (default) uses SO_REUSEPORT listeners when ``loops > 1``
        and the platform supports the option, falling back to the
        accept-and-hand-off strategy otherwise; ``False`` forces the
        hand-off fallback (deterministic round-robin placement — tests use
        this).
    max_frame:
        Per-frame payload cap, enforced before any payload is read —
        configurable on both endpoints (the client's cap is what bounds a
        batched frame it is willing to decode).
    send_buffer:
        Per-subscription bound on activations buffered toward one client
        (frames handed to the loop but not yet drained).  Crossing it
        pauses the subscription — see the module docstring's slow-consumer
        policy.
    batching, batch_max_count, batch_max_bytes, batch_linger:
        Activation frame batching for clients that negotiated the
        ``activation_batch`` capability: a hot subscription's pending
        activations coalesce into one frame, flushed when ``batch_max_count``
        activations or ``batch_max_bytes`` encoded bytes accumulate, or
        ``batch_linger`` seconds after the first pending activation —
        whichever comes first.  ``batching=False`` disables the capability
        server-wide (every client gets single frames).
    batch_eager_flush:
        Flush the pending batch as soon as a delivery run (the burst of
        activations handed to the connection in one loop wakeup) ends —
        the default, pairing burst-sized batches with zero added latency.
        ``False`` holds the batch for the full linger/count/byte budgets
        instead: slightly better coalescing for workloads that trickle
        activations just under the linger apart, at the linger's latency
        cost.

    The server owns ``loops`` daemon threads, each running a private
    asyncio loop; every public method is callable from ordinary threads.
    Lifecycle composes with the serving stack's: start the inner server
    first, stop the network front end first (``with`` blocks nest
    naturally).
    """

    def __init__(
        self,
        server: ActiveViewServer | DurableServer,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        loops: int = 1,
        reuse_port: bool | None = None,
        max_frame: int = DEFAULT_MAX_FRAME,
        send_buffer: int = 256,
        write_buffer_limit: int | None = None,
        batching: bool = True,
        batch_max_count: int = 128,
        batch_max_bytes: int = 256 * 1024,
        batch_linger: float = 0.002,
        batch_eager_flush: bool = True,
    ) -> None:
        if isinstance(server, DurableServer):
            self.durable: DurableServer | None = server
            self.core: ActiveViewServer = server.server
        else:
            self.durable = None
            self.core = server
        if send_buffer < 1:
            raise NetworkError("send_buffer must be at least 1")
        if loops < 1:
            raise NetworkError("loops must be at least 1")
        if batch_max_count < 1:
            raise NetworkError("batch_max_count must be at least 1")
        if batch_max_bytes < 1:
            raise NetworkError("batch_max_bytes must be at least 1")
        if batch_linger < 0:
            raise NetworkError("batch_linger must be >= 0")
        self.host = host
        self.port = port
        self.loops = loops
        self.reuse_port = reuse_port
        self.max_frame = max_frame
        self.send_buffer = send_buffer
        #: Optional transport high-water mark (bytes).  ``drain()`` then
        #: waits for the actual socket instead of a large default buffer,
        #: which makes slow-consumer detection prompt; tests set it low.
        self.write_buffer_limit = write_buffer_limit
        self.batching = batching
        self.batch_max_count = batch_max_count
        # The byte budget must leave headroom under max_frame: a flush can
        # not produce a frame the peer's read limit would reject.
        self.batch_max_bytes = min(batch_max_bytes, max(1, max_frame // 2))
        self.batch_linger = batch_linger
        self.batch_eager_flush = batch_eager_flush
        #: ``(host, port)`` actually bound (set by :meth:`start`).
        self.address: tuple[str, int] | None = None
        #: One encode per activation (or batch shape), shared by every loop.
        self.frame_cache = SharedFrameCache()
        self._runtimes: list[_LoopRuntime] = []
        self._counter_base = _new_counters()
        self._reuse_port_active = False
        self._next_handoff = 0

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> "NetworkServer":
        """Bind the listener(s) and start serving; returns ``self``."""
        if self._runtimes:
            return self
        want_reuse = self.loops > 1 and self.reuse_port is not False
        use_reuse = want_reuse and hasattr(socket, "SO_REUSEPORT")
        listeners: list[socket.socket] = []
        try:
            first = self._make_listener(self.port, reuse_port=use_reuse)
            listeners.append(first)
            if use_reuse:
                bound_port = first.getsockname()[1]
                for _ in range(self.loops - 1):
                    listeners.append(
                        self._make_listener(bound_port, reuse_port=True)
                    )
        except OSError as error:
            for sock in listeners:
                sock.close()
            raise NetworkError(
                f"network server failed to bind: {error}"
            ) from error
        sockname = first.getsockname()
        self.address = (sockname[0], sockname[1])
        self._reuse_port_active = use_reuse
        self._next_handoff = 0
        self._runtimes = [_LoopRuntime(self, index) for index in range(self.loops)]
        for index, runtime in enumerate(self._runtimes):
            runtime.listen_sock = listeners[index] if index < len(listeners) else None
        try:
            for runtime in self._runtimes:
                runtime.start()
        except BaseException:
            self.stop()
            raise
        return self

    def stop(self) -> None:
        """Close every listener and connection; join the loop threads."""
        runtimes, self._runtimes = self._runtimes, []
        if not runtimes:
            return
        for runtime in runtimes:
            runtime.request_stop()
        for runtime in runtimes:
            if runtime.thread is not None:
                runtime.thread.join(timeout=30)
            for key, value in runtime.counters.items():
                self._counter_base[key] = self._counter_base.get(key, 0) + value
        self.address = None

    def __enter__(self) -> "NetworkServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def _make_listener(self, port: int, *, reuse_port: bool) -> socket.socket:
        family = socket.AF_INET6 if ":" in self.host else socket.AF_INET
        sock = socket.socket(family, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            if reuse_port:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((self.host, port))
            sock.listen(_BACKLOG)
            sock.setblocking(False)
        except OSError:
            sock.close()
            raise
        return sock

    def _route_connection(self, acceptor: _LoopRuntime) -> _LoopRuntime:
        """Pick the owning loop for a freshly accepted connection.

        With SO_REUSEPORT the kernel already balanced the accept onto
        ``acceptor``; with the hand-off fallback, the single acceptor deals
        round-robin across the group.  Called only from the acceptor's own
        loop thread, so the rotation needs no lock.
        """
        if self._reuse_port_active or self.loops == 1:
            return acceptor
        target = self._runtimes[self._next_handoff % len(self._runtimes)]
        self._next_handoff += 1
        return target

    # ------------------------------------------------------------------ reporting

    @property
    def counters(self) -> dict[str, int]:
        """Aggregate wire counters across the loop group (plus past runs)."""
        total = dict(self._counter_base)
        for runtime in self._runtimes:
            for key, value in runtime.counters.items():
                total[key] = total.get(key, 0) + value
        return total

    @property
    def connection_count(self) -> int:
        """Currently open connections across all loops."""
        return sum(len(runtime.connections) for runtime in self._runtimes)

    def net_report(self) -> dict:
        """Wire-encodable counters + per-loop and per-subscription detail."""
        per_loop = []
        subscriptions = []
        for runtime in self._runtimes:
            loop_subscriptions = 0
            for connection in list(runtime.connections):
                subscriber = connection.subscriber
                if subscriber is None:
                    continue
                loop_subscriptions += 1
                subscriptions.append(
                    {
                        "loop": runtime.index,
                        "name": subscriber.name,
                        "buffered": subscriber.inflight,
                        "limit": subscriber.limit,
                        "paused": subscriber.paused,
                        "delivered": subscriber.delivered,
                        "refused": subscriber.refused,
                        "filtered": subscriber.filtered,
                    }
                )
            hub = runtime.wake_hub
            per_loop.append(
                {
                    "loop": runtime.index,
                    "connections": len(runtime.connections),
                    "subscriptions": loop_subscriptions,
                    "wake_posts": hub.posts if hub is not None else 0,
                    "wake_wakeups": hub.wakeups if hub is not None else 0,
                    **dict(runtime.counters),
                }
            )
        return {
            **self.counters,
            "connections_active": self.connection_count,
            "loops": self.loops,
            "reuse_port": self._reuse_port_active,
            "per_loop": per_loop,
            "subscriptions": subscriptions,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "running" if self._runtimes else "stopped"
        return (
            f"NetworkServer({state}, address={self.address}, loops={self.loops})"
        )
