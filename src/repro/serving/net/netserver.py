"""Asyncio network front end over the sharded serving layer.

:class:`NetworkServer` puts a socket on an
:class:`~repro.serving.server.ActiveViewServer` (or a
:class:`~repro.persist.durable.DurableServer`): clients connect over TCP,
speak the framed protocol of :mod:`repro.serving.net.protocol`, and get the
full serving surface — DML submission (single and batch, with ticket-style
``result`` replies), trigger DDL including bulk registration, activation
subscriptions with resumable cursors, and server statistics.  One process
thread runs a private asyncio event loop; each connection costs a reader
coroutine and a writer coroutine, not a thread, which is what makes
connection-scale fan-out (10k+ subscribers) reachable where thread-per-
subscriber would not be (``benchmarks/bench_net_fanout.py`` drives it).

Bridging the thread world and the loop, backpressured both ways:

* **DML inbound** — a connection's statements are submitted to the shard
  queues via worker threads (``asyncio.to_thread``) in arrival order; a full
  shard queue blocks only that connection's dispatch loop (its own producer
  backpressure), never the event loop.  Completion comes back through
  :meth:`~repro.serving.server.Ticket.add_done_callback` +
  ``loop.call_soon_threadsafe`` — no thread is parked per in-flight
  statement.
* **Activations outbound** — each subscription is a :class:`_NetSubscriber`
  whose ``_offer`` *never blocks the shard worker*: it reserves one slot of
  the connection's bounded send buffer and hands the activation to the loop
  with ``call_soon_threadsafe``; the slot is released only after the frame
  is written *and drained* past the transport's high-water mark, so kernel
  buffering is bounded too.  When a slow consumer's buffer fills, the
  subscription **pauses**: the subscriber detaches (shard workers and other
  connections are unaffected), everything already buffered is flushed, and
  a ``paused`` frame tells the client — never unbounded growth, never a
  silent drop.  On a durable server the client resumes by re-subscribing
  with its name: the persisted ack cursor replays every unacknowledged
  activation from the durable outbox, so a bounded buffer pages an
  arbitrarily large backlog through repeated resume rounds.

``docs/networking.md`` is the protocol reference;
``tests/serving/test_net_protocol_fuzz.py`` pins the no-crash guarantee and
``tests/property/test_property_net_equivalence.py`` pins delivery
equivalence against the in-process subscriber oracle.
"""

from __future__ import annotations

import asyncio
import socket
import threading
from typing import Any, Callable

from repro.errors import NetworkError, ProtocolError, ServingError
from repro.persist.durable import DurableServer
from repro.serving.net.protocol import (
    DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
    activation_to_wire,
    encode_frame,
    read_frame,
    result_to_wire,
    statement_from_wire,
)
from repro.serving.server import ActiveViewServer, Ticket
from repro.serving.subscribers import Activation, Subscriber

__all__ = ["NetworkServer"]


class _NetSubscriber(Subscriber):
    """A subscriber whose delivery hands off to a connection's event loop.

    ``_offer`` runs on the producing shard worker's thread and must never
    block it (the in-process :class:`Subscriber` blocks on a full queue —
    correct for one consumer thread, fatal for one slow socket among
    thousands).  Instead it reserves a slot of the connection's bounded
    send buffer under a lock and schedules delivery on the loop; when the
    buffer is full it flips to *paused* and schedules the overflow policy
    instead.  ``release`` is called by the connection after the frame has
    been written and drained.
    """

    def __init__(
        self,
        name: str,
        *,
        limit: int,
        loop: asyncio.AbstractEventLoop,
        deliver: Callable[[Activation], None],
        overflow: Callable[[], None],
        accept: Callable[[Activation], bool] | None = None,
    ) -> None:
        super().__init__(name, capacity=max(1, limit))
        self.limit = limit
        self._loop = loop
        self._deliver = deliver
        self._overflow = overflow
        self._accept = accept
        self._flight_lock = threading.Lock()
        #: Activations handed to the loop whose frames are not yet drained —
        #: the bounded send buffer (<= ``limit`` by construction; the
        #: slow-consumer regression test asserts it).
        self.inflight = 0
        #: True once the buffer overflowed; no further deliveries happen.
        self.paused = False
        #: Activations skipped by the subscription's view/path filter.
        self.filtered = 0
        #: Activations refused because the subscription was paused (or its
        #: connection closed) — redeliverable from a durable outbox, and
        #: never silently lost: the client was told via the ``paused`` frame.
        self.refused = 0

    def _offer(self, activation: Activation, give_up: Callable[[], bool]) -> bool:
        if self._accept is not None and not self._accept(activation):
            self.filtered += 1
            return True
        if self.closed or self.paused:
            self.refused += 1
            return False
        with self._flight_lock:
            if self.inflight >= self.limit:
                self.paused = True
                self.refused += 1
                self._schedule(self._overflow)
                return False
            self.inflight += 1
        self.delivered += 1
        self._schedule(self._deliver, activation)
        return True

    def _schedule(self, fn: Callable, *args: Any) -> None:
        try:
            self._loop.call_soon_threadsafe(fn, *args)
        except RuntimeError:
            # The loop is gone (server stopped mid-delivery); the slot can
            # never drain, so stop accepting instead of leaking reservations.
            self.close()

    def release(self) -> None:
        """Return one send-buffer slot (frame written and drained)."""
        with self._flight_lock:
            self.inflight -= 1


def _subscription_filter(
    view: str | None, path: list | None
) -> Callable[[Activation], bool] | None:
    """Build the optional view/path acceptance predicate for SUBSCRIBE."""
    if view is None and path is None:
        return None
    prefix = tuple(path) if path is not None else None

    def accept(activation: Activation) -> bool:
        if view is not None and activation.view != view:
            return False
        if prefix is not None and activation.path[: len(prefix)] != prefix:
            return False
        return True

    return accept


class _SubmitAggregator:
    """Collects one submit request's tickets and replies once all resolve.

    Done-callbacks run on shard worker threads; the last one hands the
    fully-resolved set back to the connection's loop.  No thread blocks
    waiting — the resolution *is* the notification.
    """

    def __init__(self, connection: "_Connection", msg_id: int, tickets: list[Ticket]):
        self._connection = connection
        self._msg_id = msg_id
        self._tickets = tickets
        self._lock = threading.Lock()
        self._remaining = len(tickets)
        for ticket in tickets:
            ticket.add_done_callback(self._one_done)

    def _one_done(self, _ticket: Ticket) -> None:
        with self._lock:
            self._remaining -= 1
            if self._remaining:
                return
        self._connection.schedule(self._reply)

    def _reply(self) -> None:  # loop thread
        results: list[list[dict]] = []
        for ticket in self._tickets:
            try:
                outcome = ticket.result(timeout=0)
            except Exception as error:  # noqa: BLE001 - forwarded to the client
                self._connection.send_error(self._msg_id, "execution", str(error))
                return
            parts = outcome if isinstance(outcome, list) else [outcome]
            results.append([result_to_wire(part) for part in parts])
        self._connection.send(
            {"type": "result", "id": self._msg_id, "results": results}
        )


class _Connection:
    """One client connection: framed reader loop + serialized writer loop."""

    def __init__(
        self,
        server: "NetworkServer",
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.server = server
        self.reader = reader
        self.writer = writer
        # Bounded: activations respect the subscriber's inflight cap, and a
        # well-behaved client has at most a handful of replies outstanding.
        # Overflow means the peer pipelines requests without reading replies
        # — the connection is cut rather than buffering without limit.
        self._out: asyncio.Queue = asyncio.Queue(
            maxsize=server.send_buffer + 64
        )
        self._writer_task: asyncio.Task | None = None
        self.subscriber: _NetSubscriber | None = None
        self._sent_watermark: dict[int, int] = {}
        self._loop = asyncio.get_running_loop()

    # ------------------------------------------------------------------ sending

    def send(
        self, message: dict | bytes, after: Callable[[], None] | None = None
    ) -> None:
        """Queue a frame (loop thread only); ``after`` runs once it drained.

        ``message`` is a message dict, or pre-encoded frame bytes (the
        shared-fan-out path).
        """
        try:
            self._out.put_nowait((message, after))
        except asyncio.QueueFull:
            self.server.counters["overflow_closes"] += 1
            if after is not None:
                after()
            try:
                self.writer.close()
            except (ConnectionError, OSError):  # pragma: no cover - defensive
                pass

    def send_error(self, msg_id: int | None, code: str, message: str) -> None:
        self.send({"type": "error", "id": msg_id, "code": code, "message": message})

    def schedule(self, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` on the loop from any thread (no-op if loop died)."""
        try:
            self._loop.call_soon_threadsafe(fn, *args)
        except RuntimeError:
            pass

    async def _writer_loop(self) -> None:
        while True:
            item = await self._out.get()
            if item is None:
                return
            message, after = item
            try:
                self.writer.write(
                    message if isinstance(message, bytes) else encode_frame(message)
                )
                await self.writer.drain()
                self.server.counters["frames_sent"] += 1
            except (ConnectionError, OSError):
                # Peer went away mid-write: stop writing, let the reader
                # loop observe the broken transport and run the cleanup.
                return
            finally:
                if after is not None:
                    after()

    # ------------------------------------------------------------------ lifecycle

    async def run(self) -> None:
        self.server.counters["connections_opened"] += 1
        if self.server.write_buffer_limit is not None:
            # A small high-water mark — transport *and* kernel send buffer —
            # makes ``drain()`` (and therefore the inflight accounting)
            # track the consumer's real pace instead of buffering depth;
            # tests pin the pause policy with this.
            limit = self.server.write_buffer_limit
            self.writer.transport.set_write_buffer_limits(high=limit)
            raw = self.writer.get_extra_info("socket")
            if raw is not None:
                raw.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, limit)
        self._writer_task = asyncio.ensure_future(self._writer_loop())
        try:
            await self._handshake()
            while True:
                try:
                    message = await read_frame(
                        self.reader, max_frame=self.server.max_frame
                    )
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    break  # closed (possibly mid-frame) — a clean goodbye
                self.server.counters["frames_received"] += 1
                await self._dispatch(message)
        except ProtocolError as error:
            self.server.counters["protocol_errors"] += 1
            self.send_error(None, "protocol", str(error))
        except (ConnectionError, OSError):
            pass
        finally:
            await self._cleanup()

    async def _handshake(self) -> None:
        try:
            hello = await read_frame(self.reader, max_frame=self.server.max_frame)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            raise ProtocolError("connection closed before the hello frame")
        if hello["type"] != "hello":
            raise ProtocolError(f"expected a hello frame, got {hello['type']!r}")
        if hello.get("version") != PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol version mismatch: client {hello.get('version')!r}, "
                f"server {PROTOCOL_VERSION}"
            )
        self.send(
            {
                "type": "welcome",
                "version": PROTOCOL_VERSION,
                "server": {
                    "shards": self.server.core.shard_count,
                    "durable": self.server.durable is not None,
                },
            }
        )

    async def _cleanup(self) -> None:
        self._detach_subscriber()
        # Flush what is already queued (bounded by the send buffer), then
        # close the transport.  A dead peer just errors the writer loop out.
        try:
            self._out.put_nowait(None)
        except asyncio.QueueFull:
            if self._writer_task is not None:
                self._writer_task.cancel()
        if self._writer_task is not None:
            try:
                await asyncio.wait_for(self._writer_task, timeout=5)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                self._writer_task.cancel()
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self.server._connections.discard(self)

    def _detach_subscriber(self) -> None:
        if self.subscriber is not None:
            self.server.core.unsubscribe(self.subscriber)

    # ------------------------------------------------------------------ dispatch

    async def _dispatch(self, message: dict) -> None:
        mtype = message["type"]
        if mtype == "submit":
            await self._handle_submit(message)
        elif mtype == "ddl":
            await self._handle_ddl(message)
        elif mtype == "subscribe":
            await self._handle_subscribe(message)
        elif mtype == "ack":
            self._handle_ack(message)
        elif mtype == "stats":
            self._handle_stats(message)
        elif mtype == "ping":
            self.send({"type": "pong", "id": self._request_id(message)})
        else:
            raise ProtocolError(f"unknown message type {mtype!r}")

    @staticmethod
    def _request_id(message: dict) -> int:
        msg_id = message.get("id")
        if not isinstance(msg_id, int):
            raise ProtocolError(f"{message['type']!r} message needs an integer 'id'")
        return msg_id

    async def _handle_submit(self, message: dict) -> None:
        msg_id = self._request_id(message)
        wire_statements = message.get("statements")
        if not isinstance(wire_statements, list) or not wire_statements:
            self.send_error(msg_id, "bad-statement",
                            "'statements' must be a non-empty list")
            return
        try:
            statements = [statement_from_wire(record) for record in wire_statements]
        except ProtocolError as error:
            self.send_error(msg_id, "bad-statement", str(error))
            return
        tickets: list[Ticket] = []
        try:
            # Submitted in arrival order from worker threads: a full shard
            # queue blocks this connection's dispatch (its backpressure),
            # never the shared event loop.
            for statement in statements:
                tickets.append(
                    await asyncio.to_thread(self.server.core.submit, statement)
                )
        except ServingError as error:
            # Statements already queued will resolve through the aggregator
            # path on a later submit; the client sees this request fail.
            self.send_error(msg_id, "state", str(error))
            return
        except Exception as error:  # noqa: BLE001 - routing errors etc.
            self.send_error(msg_id, "execution", str(error))
            return
        self.server.counters["statements_submitted"] += len(statements)
        _SubmitAggregator(self, msg_id, tickets)

    async def _handle_ddl(self, message: dict) -> None:
        msg_id = self._request_id(message)
        op = message.get("op")
        core = self.server.core
        try:
            if op == "create_trigger":
                source = message.get("source")
                if not isinstance(source, str):
                    raise ProtocolError("create_trigger needs a 'source' string")
                spec = await asyncio.to_thread(core.create_trigger, source)
                names = [spec.name]
            elif op == "register_triggers_bulk":
                sources = message.get("sources")
                if (not isinstance(sources, list)
                        or not all(isinstance(s, str) for s in sources)):
                    raise ProtocolError(
                        "register_triggers_bulk needs a 'sources' string list"
                    )
                specs = await asyncio.to_thread(core.register_triggers_bulk, sources)
                names = [spec.name for spec in specs]
            elif op in ("drop_trigger", "drop_view"):
                name = message.get("name")
                if not isinstance(name, str):
                    raise ProtocolError(f"{op} needs a 'name' string")
                target = core.drop_trigger if op == "drop_trigger" else core.drop_view
                await asyncio.to_thread(target, name)
                names = [name]
            else:
                raise ProtocolError(f"unknown ddl op {op!r}")
        except ProtocolError as error:
            self.send_error(msg_id, "bad-statement", str(error))
            return
        except Exception as error:  # noqa: BLE001 - trigger/translation errors
            self.send_error(msg_id, "execution", str(error))
            return
        self.send({"type": "ddl_ok", "id": msg_id, "names": names})

    async def _handle_subscribe(self, message: dict) -> None:
        msg_id = self._request_id(message)
        if self.subscriber is not None and not self.subscriber.paused \
                and not self.subscriber.closed:
            self.send_error(msg_id, "state",
                            "this connection already has an active subscription")
            return
        name = message.get("name")
        view = message.get("view")
        path = message.get("path")
        cursor = message.get("cursor")
        if name is not None and not isinstance(name, str):
            self.send_error(msg_id, "bad-statement", "'name' must be a string or None")
            return
        if path is not None and not isinstance(path, (list, tuple)):
            self.send_error(msg_id, "bad-statement", "'path' must be a step list")
            return
        durable = self.server.durable
        resumable = durable is not None and name is not None
        if cursor is not None and not resumable:
            # Cursors need the durable outbox AND a stable name; refusing is
            # the no-silent-fallback contract — an ignored cursor would turn
            # at-least-once into silently-lossy.
            self.send_error(
                msg_id, "unsupported",
                "cursors require a durable server and a named subscription",
            )
            return
        limit = self.server.send_buffer
        subscriber = _NetSubscriber(
            name or f"net-anon-{id(self)}",
            limit=limit,
            loop=self._loop,
            deliver=self._deliver_activation,
            overflow=self._pause_subscription,
            accept=_subscription_filter(view, path),
        )
        self.subscriber = subscriber
        self._sent_watermark = {}
        try:
            if resumable:
                def attach() -> None:
                    if cursor is not None:
                        for shard, sequence in cursor.items():
                            durable._on_ack(name, int(shard), int(sequence))
                    durable.subscribe(name, subscriber=subscriber)

                await asyncio.to_thread(attach)
            else:
                self.server.core.attach_subscriber(subscriber)
        except Exception as error:  # noqa: BLE001 - persistence/serving errors
            self.subscriber = None
            self.send_error(msg_id, "execution", str(error))
            return
        self.server.counters["subscriptions_opened"] += 1
        self.send(
            {
                "type": "subscribed",
                "id": msg_id,
                "name": subscriber.name,
                "durable": resumable,
            }
        )

    def _handle_ack(self, message: dict) -> None:
        shard = message.get("shard")
        sequence = message.get("seq")
        if not isinstance(shard, int) or not isinstance(sequence, int):
            raise ProtocolError("ack needs integer 'shard' and 'seq'")
        if self.subscriber is None:
            raise ProtocolError("ack without a subscription")
        # Valid after a pause too: acking what arrived before the pause is
        # exactly what advances the durable cursor for the resume.
        self.subscriber.ack_position(shard, sequence)

    def _handle_stats(self, message: dict) -> None:
        msg_id = self._request_id(message)
        core = self.server.core
        self.send(
            {
                "type": "stats_reply",
                "id": msg_id,
                "evaluation": {
                    str(k): int(v) for k, v in core.evaluation_report().items()
                },
                "shards": [stats.as_dict() for stats in core.stats],
                "activations_published": core.activations_published,
                "net": self.server.net_report(),
            }
        )

    # ------------------------------------------------------------------ fan-out

    def _deliver_activation(self, activation: Activation) -> None:  # loop thread
        subscriber = self.subscriber
        release = subscriber.release if subscriber is not None else None
        watermark = self._sent_watermark
        if activation.sequence > watermark.get(activation.shard, 0):
            watermark[activation.shard] = activation.sequence
        self.server.counters["activations_sent"] += 1
        # Pre-framed once per activation, shared by every subscribed
        # connection — at fan-out scale the encode would otherwise dominate.
        self.send(self.server._activation_frame(activation), after=release)

    def _pause_subscription(self) -> None:  # loop thread
        subscriber = self.subscriber
        if subscriber is None:
            return
        self.server.counters["subscriptions_paused"] += 1
        # Detach first so shard workers stop offering; everything already
        # buffered still flushes (FIFO), then the pause notice arrives.
        self._detach_subscriber()
        self.send(
            {
                "type": "paused",
                "reason": "slow-consumer",
                "sent": {shard: seq for shard, seq in self._sent_watermark.items()},
            }
        )


class NetworkServer:
    """TCP front end for an :class:`ActiveViewServer` / :class:`DurableServer`.

    Parameters
    ----------
    server:
        The serving stack to expose.  A :class:`DurableServer` additionally
        enables named subscriptions with resumable cursors (the durable
        outbox is the replay substrate); on a plain server, subscriptions
        are live-only.
    host, port:
        Bind address.  ``port=0`` (default) picks an ephemeral port; read
        :attr:`address` after :meth:`start`.
    max_frame:
        Per-frame payload cap, enforced before any payload is read.
    send_buffer:
        Per-subscription bound on activations buffered toward one client
        (frames handed to the loop but not yet drained).  Crossing it
        pauses the subscription — see the module docstring's slow-consumer
        policy.

    The server owns one daemon thread running a private asyncio loop; every
    public method is callable from ordinary threads.  Lifecycle composes
    with the serving stack's: start the inner server first, stop the
    network front end first (``with`` blocks nest naturally).
    """

    def __init__(
        self,
        server: ActiveViewServer | DurableServer,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame: int = DEFAULT_MAX_FRAME,
        send_buffer: int = 256,
        write_buffer_limit: int | None = None,
    ) -> None:
        if isinstance(server, DurableServer):
            self.durable: DurableServer | None = server
            self.core: ActiveViewServer = server.server
        else:
            self.durable = None
            self.core = server
        if send_buffer < 1:
            raise NetworkError("send_buffer must be at least 1")
        self.host = host
        self.port = port
        self.max_frame = max_frame
        self.send_buffer = send_buffer
        #: Optional transport high-water mark (bytes).  ``drain()`` then
        #: waits for the actual socket instead of a large default buffer,
        #: which makes slow-consumer detection prompt; tests set it low.
        self.write_buffer_limit = write_buffer_limit
        #: ``(host, port)`` actually bound (set by :meth:`start`).
        self.address: tuple[str, int] | None = None
        self.counters: dict[str, int] = {
            "connections_opened": 0,
            "frames_received": 0,
            "frames_sent": 0,
            "statements_submitted": 0,
            "subscriptions_opened": 0,
            "subscriptions_paused": 0,
            "activations_sent": 0,
            "protocol_errors": 0,
            "overflow_closes": 0,
        }
        self._connections: set[_Connection] = set()
        # (loop thread only) activation -> pre-encoded frame, FIFO-bounded.
        # Keeping the activation in the value pins its id while cached.
        self._frame_cache: dict[int, tuple[Activation, bytes]] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._shutdown: asyncio.Event | None = None

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> "NetworkServer":
        """Bind the socket and start serving; returns ``self`` for chaining."""
        if self._thread is not None:
            return self
        self._started.clear()
        self._startup_error = None
        self._thread = threading.Thread(
            target=self._run_loop, name="net-server-loop", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise NetworkError("network server failed to start within 30s")
        if self._startup_error is not None:
            self._thread.join()
            self._thread = None
            raise NetworkError(
                f"network server failed to bind: {self._startup_error}"
            ) from self._startup_error
        return self

    def stop(self) -> None:
        """Close the listener and every connection; join the loop thread."""
        thread, loop = self._thread, self._loop
        if thread is None or loop is None:
            return
        try:
            loop.call_soon_threadsafe(self._request_shutdown)
        except RuntimeError:
            pass
        thread.join(timeout=30)
        self._thread = None
        self._loop = None
        self.address = None

    def __enter__(self) -> "NetworkServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def _request_shutdown(self) -> None:  # loop thread
        if self._shutdown is not None:
            self._shutdown.set()

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._serve())
        finally:
            asyncio.set_event_loop(None)
            loop.close()

    async def _serve(self) -> None:
        self._shutdown = asyncio.Event()
        try:
            listener = await asyncio.start_server(
                self._on_connection, self.host, self.port
            )
        except OSError as error:
            self._startup_error = error
            self._started.set()
            return
        sockname = listener.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        self._started.set()
        try:
            await self._shutdown.wait()
        finally:
            listener.close()
            await listener.wait_closed()
            for connection in list(self._connections):
                try:
                    connection.writer.close()
                except (ConnectionError, OSError):  # pragma: no cover - defensive
                    pass
            # Reader loops observe their closed transports and clean up
            # (detaching subscribers); give them a beat to finish.
            for _ in range(100):
                if not self._connections:
                    break
                await asyncio.sleep(0.02)

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(self, reader, writer)
        self._connections.add(connection)
        await connection.run()

    def _activation_frame(self, activation: Activation) -> bytes:
        """Encode an activation frame once and share it across connections.

        Loop thread only.  One activation object fans out to every
        subscribed connection; framing it per connection would make encode
        cost scale with subscriber count.
        """
        cached = self._frame_cache.get(id(activation))
        if cached is not None and cached[0] is activation:
            return cached[1]
        frame = encode_frame(
            {"type": "activation", "payload": activation_to_wire(activation)}
        )
        self._frame_cache[id(activation)] = (activation, frame)
        while len(self._frame_cache) > 1024:
            self._frame_cache.pop(next(iter(self._frame_cache)))
        return frame

    # ------------------------------------------------------------------ reporting

    @property
    def connection_count(self) -> int:
        """Currently open connections."""
        return len(self._connections)

    def net_report(self) -> dict:
        """Wire-encodable counters + per-subscription buffer accounting."""
        subscriptions = []
        for connection in list(self._connections):
            subscriber = connection.subscriber
            if subscriber is None:
                continue
            subscriptions.append(
                {
                    "name": subscriber.name,
                    "buffered": subscriber.inflight,
                    "limit": subscriber.limit,
                    "paused": subscriber.paused,
                    "delivered": subscriber.delivered,
                    "refused": subscriber.refused,
                    "filtered": subscriber.filtered,
                }
            )
        return {
            **self.counters,
            "connections_active": len(self._connections),
            "subscriptions": subscriptions,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "running" if self._thread is not None else "stopped"
        return f"NetworkServer({state}, address={self.address})"
