"""The framed wire protocol spoken between :mod:`repro.serving.net` endpoints.

One frame carries one message::

    ┌────────────┬────────────┬─────────────────────────┐
    │ length: u32│ crc32: u32 │ payload (length bytes)  │
    │ big-endian │ of payload │ codec-encoded dict      │
    └────────────┴────────────┴─────────────────────────┘

The framing (and the payload encoding) is the durability layer's
(:mod:`repro.persist.wal` / :mod:`repro.persist.codec`): length- and
CRC-guarded frames around self-describing tag-encoded values, so a frame can
be inspected with a hex dump and decoding never executes code.  The payload
of every frame is a dict with a ``"type"`` key; ``docs/networking.md`` holds
the full message catalog.

Hardening rules enforced by :func:`read_frame` (pinned by
``tests/serving/test_net_protocol_fuzz.py``):

* a declared length of zero, or beyond ``max_frame``, is a
  :class:`~repro.errors.ProtocolError` *before* any payload is read —
  a hostile header cannot make the peer allocate unbounded memory;
* a CRC mismatch, an undecodable payload, or a payload that is not a
  ``{"type": str, ...}`` dict is a :class:`~repro.errors.ProtocolError`;
* a connection torn mid-frame surfaces as ``asyncio.IncompleteReadError``
  (a clean close between frames as an empty read) — never a crash.

DML statements cross the wire as constant records only
(:func:`statement_to_wire`): INSERT rows, UPDATE constant assignments, and
primary-key target lists are all expressible; Python callables (predicate
``where=`` / computed ``assignments=``) are *code* and are rejected
client-side rather than pickled.  Activations reuse the durable outbox
record vocabulary (:mod:`repro.persist.records`), so what a network
subscriber receives is byte-for-byte what a crash-recovery redelivery would
replay.
"""

from __future__ import annotations

import asyncio
import struct
import zlib
from typing import Any, Mapping

from repro.errors import ProtocolError
from repro.persist.codec import decode_value, encode_value
from repro.persist.records import activation_from_record, activation_to_record
from repro.relational.dml import (
    DeleteStatement,
    InsertStatement,
    Statement,
    StatementResult,
    UpdateStatement,
)
from repro.serving.subscribers import Activation

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_FRAME",
    "HEADER",
    "CAP_ACTIVATION_BATCH",
    "SUPPORTED_CAPS",
    "MAX_BATCH_ACTIVATIONS",
    "negotiate_caps",
    "encode_frame",
    "read_frame",
    "read_frame_payload",
    "decode_payload",
    "statement_to_wire",
    "statement_from_wire",
    "result_to_wire",
    "activation_to_wire",
    "activation_from_wire",
    "batch_payloads",
]

#: Bumped on any frame- or message-level incompatibility; the ``hello`` /
#: ``welcome`` handshake rejects mismatched peers explicitly.  Capabilities
#: (below) extend the protocol *within* a version: a peer that does not
#: announce a capability simply never receives its frames.
PROTOCOL_VERSION = 1

#: Default cap on one frame's payload (bytes).  Large enough for a bulk
#: trigger registration or a fat activation node, small enough that a
#: hostile length header cannot balloon the peer's memory.
DEFAULT_MAX_FRAME = 8 * 1024 * 1024

#: ``(length, crc32)`` — the same header the WAL's record frames use.
HEADER = struct.Struct(">II")

#: Capability: the client understands ``activation_batch`` frames (several
#: activations coalesced into one length+CRC frame).  A client that does not
#: announce it keeps receiving one ``activation`` frame per activation — the
#: upgrade is opt-in per connection, never a silent behavior change.
CAP_ACTIVATION_BATCH = "activation_batch"

#: Every capability this endpoint implementation knows how to speak.
SUPPORTED_CAPS = frozenset({CAP_ACTIVATION_BATCH})

#: Hard cap on activations in one ``activation_batch`` frame.  The byte
#: budget usually flushes far earlier; this bounds what a hostile or buggy
#: peer can make the decoder materialize from a single frame.
MAX_BATCH_ACTIVATIONS = 4096


def negotiate_caps(announced: Any) -> frozenset[str]:
    """Validate a ``hello``/``welcome`` ``caps`` field and intersect it.

    ``None`` (field absent — an old peer) negotiates no capabilities.
    Unknown capability names are ignored, not rejected: a newer peer may
    announce things we do not speak, and the intersection is the contract.
    Anything that is not a list of strings is a :class:`ProtocolError`.
    """
    if announced is None:
        return frozenset()
    if not isinstance(announced, (list, tuple)) or not all(
        isinstance(cap, str) for cap in announced
    ):
        raise ProtocolError("'caps' must be a list of capability name strings")
    return SUPPORTED_CAPS.intersection(announced)


# ------------------------------------------------------------------ framing


def encode_frame(message: Mapping[str, Any]) -> bytes:
    """Encode one message dict into its length+CRC framed wire form."""
    if not isinstance(message, Mapping) or not isinstance(message.get("type"), str):
        raise ProtocolError("a wire message must be a dict with a str 'type'")
    payload = encode_value(dict(message))
    return HEADER.pack(len(payload), zlib.crc32(payload)) + payload


async def read_frame_payload(
    reader: asyncio.StreamReader, *, max_frame: int = DEFAULT_MAX_FRAME
) -> bytes:
    """Read one frame and return its CRC-verified payload bytes.

    Raises :class:`~repro.errors.ProtocolError` for bad lengths and CRC
    mismatches and lets ``asyncio.IncompleteReadError`` / connection errors
    propagate for torn transports.  Callers that want to memoize decoding
    of identical frames (fan-out consumers) key on the returned bytes;
    everyone else goes through :func:`read_frame`.
    """
    header = await reader.readexactly(HEADER.size)
    length, crc = HEADER.unpack(header)
    if length == 0:
        raise ProtocolError("zero-length frame (a message is never empty)")
    if length > max_frame:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {max_frame}-byte limit"
        )
    payload = await reader.readexactly(length)
    if zlib.crc32(payload) != crc:
        raise ProtocolError("frame CRC mismatch (corrupt or torn payload)")
    return payload


def decode_payload(payload: bytes) -> dict:
    """Decode a CRC-verified frame payload into its message dict."""
    try:
        message = decode_value(payload)
    except Exception as error:  # codec raises PersistenceError subclasses
        raise ProtocolError(f"undecodable frame payload: {error}") from error
    if not isinstance(message, dict) or not isinstance(message.get("type"), str):
        raise ProtocolError("frame payload is not a message dict with a 'type'")
    return message


async def read_frame(
    reader: asyncio.StreamReader, *, max_frame: int = DEFAULT_MAX_FRAME
) -> dict:
    """Read and validate one frame; returns the decoded message dict.

    Raises :class:`~repro.errors.ProtocolError` for every in-protocol
    malformation (bad length, CRC mismatch, undecodable or non-message
    payload) and lets ``asyncio.IncompleteReadError`` / connection errors
    propagate for torn transports — the caller decides whether a torn tail
    is an error (mid-conversation) or a normal close (between frames).
    """
    return decode_payload(await read_frame_payload(reader, max_frame=max_frame))


# ------------------------------------------------------------------ statements


def _keys_to_wire(statement: UpdateStatement | DeleteStatement) -> list | None:
    key_set = statement.key_set()
    if key_set is None:
        return None
    return [list(key) for key in sorted(key_set, key=repr)]


def statement_to_wire(statement: Statement) -> dict:
    """Encode one DML statement as a constant wire record.

    Only constant statements are expressible: INSERT rows, UPDATE with a
    mapping of constant assignments, DELETE — each optionally restricted to
    a primary-key target list.  Callable predicates and computed
    assignments raise :class:`~repro.errors.ProtocolError` (code does not
    cross the wire); re-express them as key-targeted constant statements.
    """
    if isinstance(statement, InsertStatement):
        rows = [
            dict(row) if isinstance(row, Mapping) else list(row)
            for row in statement.rows
        ]
        return {"kind": "insert", "table": statement.table, "rows": rows}
    if isinstance(statement, UpdateStatement):
        if callable(statement.assignments):
            raise ProtocolError(
                "computed assignments are code and cannot cross the wire; "
                "send a constant assignment mapping instead"
            )
        if statement.where is not None:
            raise ProtocolError(
                "predicate WHERE callables cannot cross the wire; restrict "
                "the statement with keys=[...] instead"
            )
        return {
            "kind": "update",
            "table": statement.table,
            "set": dict(statement.assignments),
            "keys": _keys_to_wire(statement),
        }
    if isinstance(statement, DeleteStatement):
        if statement.where is not None:
            raise ProtocolError(
                "predicate WHERE callables cannot cross the wire; restrict "
                "the statement with keys=[...] instead"
            )
        return {
            "kind": "delete",
            "table": statement.table,
            "keys": _keys_to_wire(statement),
        }
    raise ProtocolError(f"unsupported statement type {type(statement).__name__}")


def statement_from_wire(record: Any) -> Statement:
    """Decode a wire record back into a DML statement (strictly validated)."""
    if not isinstance(record, dict):
        raise ProtocolError("statement record must be a dict")
    kind = record.get("kind")
    table = record.get("table")
    if not isinstance(table, str) or not table:
        raise ProtocolError("statement record needs a non-empty 'table'")
    if kind == "insert":
        rows = record.get("rows")
        if not isinstance(rows, list) or not rows:
            raise ProtocolError("insert record needs a non-empty 'rows' list")
        return InsertStatement(table, rows)
    if kind in ("update", "delete"):
        raw_keys = record.get("keys")
        keys: list[tuple] | None
        if raw_keys is None:
            keys = None
        elif isinstance(raw_keys, list):
            keys = [
                tuple(key) if isinstance(key, (list, tuple)) else (key,)
                for key in raw_keys
            ]
        else:
            raise ProtocolError("'keys' must be a list of key value lists, or None")
        if kind == "delete":
            return DeleteStatement(table, keys=keys)
        assignments = record.get("set")
        if not isinstance(assignments, dict) or not assignments:
            raise ProtocolError("update record needs a non-empty 'set' mapping")
        return UpdateStatement(table, assignments, keys=keys)
    raise ProtocolError(f"unknown statement kind {kind!r}")


def result_to_wire(result: StatementResult) -> dict:
    """Summarize one execution result for the submitting client.

    Transition tables stay server-side (they can reference the whole touched
    row set); the client receives the accounting a SQL driver would: target
    table, event, row count, and which XML triggers fired.
    """
    return {
        "table": result.table,
        "event": result.event,
        "rowcount": result.rowcount,
        "fired": [str(name) for name in result.fired_xml_triggers],
    }


# ------------------------------------------------------------------ activations


def activation_to_wire(activation: Activation) -> dict:
    """Encode an activation exactly as the durable outbox records it."""
    return activation_to_record(activation)


#: Process-wide parsed-node memo for wire decode — the decode-side mirror
#: of the server's :class:`~repro.serving.net.frames.SharedFrameCache`.  A
#: many-client process (fan-out tests, benchmarks) would otherwise re-parse
#: the same serialized node once per client.  Bounded by
#: ``records.NODE_CACHE_LIMIT``; plain-dict operations keep it safe under
#: the GIL (the worst race costs one duplicate parse).
_WIRE_NODE_CACHE: dict[str, Any] = {}


def activation_from_wire(record: Any) -> Activation:
    """Decode an activation wire record (strictly validated)."""
    if not isinstance(record, dict):
        raise ProtocolError("activation record must be a dict")
    try:
        return activation_from_record(record, node_cache=_WIRE_NODE_CACHE)
    except ProtocolError:
        raise
    except Exception as error:
        raise ProtocolError(f"malformed activation record: {error}") from error


def batch_payloads(
    message: Mapping[str, Any], *, max_activations: int = MAX_BATCH_ACTIVATIONS
) -> list:
    """Validate an ``activation_batch`` message and return its payload list.

    The frame layer already bounded the bytes; this bounds and shapes the
    *contents*: ``payloads`` must be a non-empty list of at most
    ``max_activations`` records.  The records themselves are decoded one by
    one with :func:`activation_from_wire` by the caller, so a batch with one
    malformed record fails exactly like a malformed single frame.
    """
    payloads = message.get("payloads")
    if not isinstance(payloads, list) or not payloads:
        raise ProtocolError(
            "activation_batch needs a non-empty 'payloads' list"
        )
    if len(payloads) > max_activations:
        raise ProtocolError(
            f"activation_batch of {len(payloads)} activations exceeds the "
            f"{max_activations}-activation limit"
        )
    return payloads
