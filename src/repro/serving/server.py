"""ActiveViewServer — the concurrent sharded serving layer.

The paper's pipeline makes one update cheap (grouped, translated triggers);
the batch engine (PR 1) makes one *stream* cheap (set-at-a-time execution).
This module adds throughput **across** streams: an
:class:`ActiveViewServer` accepts DML from many concurrent clients, routes
each statement to the shard that owns its rows, and drives every shard with
a dedicated single-writer worker loop that **micro-batches under load** —
whatever has accumulated in the shard's queue (up to ``max_batch``) is
executed as one set-oriented batch through
:meth:`~repro.core.service.ActiveViewService.execute_batch`, so queueing
pressure automatically turns into per-statement cost amortization.

Architecture::

    clients ──submit()──► per-shard bounded queues ──► shard worker threads
                                                          │  execute_batch
                                                          ▼
                                       ActiveViewService (one per shard,
                                       shared thread-safe PlanCache)
                                                          │  activations
                                                          ▼
                              bounded Subscriber queues (at-least-once,
                              per-node-ordered — see repro.serving.subscribers)

Concurrency model, in one paragraph: all mutation of a shard's
:class:`~repro.relational.database.Database` happens on that shard's worker
thread (single-writer), so no table-level locking is needed beyond the
database's own serialization lock; the only cross-thread structures are the
submission queues, the shared :class:`~repro.core.service.PlanCache`
(trigger *compilation* only, never the hot path), and the subscriber queues.
Statements of one client that touch one node are executed and delivered in
submission order because a node's key always routes to the same shard.

Correctness is pinned by an equivalence property
(``tests/serving/test_concurrent_equivalence.py``): for conflict-free client
streams on a view-closed sharding, the *set* of activations the server
delivers equals the set a single sequential service produces for the same
statements.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.core.service import ActiveViewService, ExecutionMode, FiredTrigger, PlanCache
from repro.core.trigger import TriggerSpec
from repro.matching.predicates import MatchPlanCache
from repro.errors import ServerStoppedError, ServingError
from repro.relational.database import Database
from repro.relational.dml import Statement, StatementResult
from repro.relational.sharded import ShardedDatabase
from repro.serving.subscribers import Activation, Subscriber
from repro.xqgm.views import ViewDefinition

__all__ = ["ActiveViewServer", "Ticket", "ShardStats"]

#: Queue sentinel asking a shard worker to exit.
_STOP = object()


class Ticket:
    """Completion handle for one submitted statement.

    A broadcast statement (predicate-only WHERE, no key set) fans out to
    every shard; its ticket completes when *all* shards have executed it and
    :meth:`result` returns the list of per-shard results.  A routed
    statement's ticket returns the owning shard's single
    :class:`~repro.relational.dml.StatementResult`.
    """

    def __init__(self, parts: int = 1) -> None:
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._remaining = parts
        self._parts = parts
        self._results: list[StatementResult] = []
        self._error: BaseException | None = None
        self._callbacks: list[Callable[["Ticket"], None]] = []

    def _resolve(self, result: StatementResult) -> None:
        with self._lock:
            self._results.append(result)
            self._remaining -= 1
            done = self._remaining <= 0
            if done:
                self._event.set()
                callbacks, self._callbacks = self._callbacks, []
        if done:
            for callback in callbacks:
                callback(self)

    def _fail(self, error: BaseException) -> None:
        with self._lock:
            if self._error is None:
                self._error = error
            self._remaining -= 1
            done = self._remaining <= 0
            if done:
                self._event.set()
                callbacks, self._callbacks = self._callbacks, []
        if done:
            for callback in callbacks:
                callback(self)

    def add_done_callback(self, callback: Callable[["Ticket"], None]) -> None:
        """Invoke ``callback(ticket)`` once every part has finished.

        Runs on the resolving shard worker's thread (immediately on the
        caller's when already done), so callbacks must be cheap and
        non-blocking — the network front end uses one to hand completion
        back to its event loop without parking a thread per statement.
        """
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    @property
    def done(self) -> bool:
        """Whether every part of the statement has finished (or failed)."""
        return self._event.is_set()

    def result(
        self, timeout: float | None = None
    ) -> StatementResult | list[StatementResult]:
        """Block for completion; re-raise the execution error if one occurred."""
        if not self._event.wait(timeout):
            raise TimeoutError("statement still pending after timeout")
        if self._error is not None:
            raise self._error
        return self._results[0] if self._parts == 1 else list(self._results)


@dataclass
class _Submission:
    statement: Statement
    ticket: Ticket


@dataclass
class ShardStats:
    """Per-shard serving counters (read them after :meth:`ActiveViewServer.drain`)."""

    submitted: int = 0
    statements: int = 0
    batches: int = 0
    max_batch: int = 0
    errors: int = 0

    @property
    def mean_batch(self) -> float:
        """Average micro-batch size observed so far."""
        return self.statements / self.batches if self.batches else 0.0

    def as_dict(self) -> dict[str, int]:
        """Plain-scalar form (wire-encodable for the ``stats`` reply)."""
        return {
            "submitted": self.submitted,
            "statements": self.statements,
            "batches": self.batches,
            "max_batch": self.max_batch,
            "errors": self.errors,
        }


class ActiveViewServer:
    """Concurrent sharded front end over per-shard :class:`ActiveViewService`\\ s.

    Parameters
    ----------
    database:
        A :class:`~repro.relational.sharded.ShardedDatabase` (or a plain
        :class:`~repro.relational.database.Database`, served as one shard).
    mode:
        Execution mode for every shard service (default GROUPED_AGG).
    max_batch:
        Micro-batch cap: a shard worker drains at most this many queued
        statements into one ``execute_batch`` call.  Bounds both the latency
        of the first statement in a batch and the blast radius of a failing
        statement (a failure fails its whole micro-batch's tickets).
    queue_capacity:
        Per-shard submission-queue bound; :meth:`submit` blocks when the
        owning shard's queue is full (producer backpressure).
    service_options:
        Extra keyword arguments forwarded to every per-shard
        :class:`~repro.core.service.ActiveViewService` — e.g.
        ``{"use_columnar": True}`` switches every shard's trigger firing to
        the batch-oriented columnar engine (:mod:`repro.xqgm.columnar`); its
        ``columnar_*`` counters then aggregate across shards in
        :meth:`evaluation_report` like every other counter.

    Views, actions and triggers registered through the server are installed
    on every shard service; trigger compilation cost is shared through one
    thread-safe :class:`~repro.core.service.PlanCache`, so an N-shard server
    derives each distinct plan — including its lowered physical form
    (:mod:`repro.xqgm.physical`) — once, not N times.  The view-closure
    contract makes that sound: every shard exposes the same catalog, and a
    compiled plan references tables by name only.  What is *not* shared is
    the per-service result cache (cached subplan rows are one shard's data);
    see :meth:`evaluation_report`.
    """

    def __init__(
        self,
        database: ShardedDatabase | Database,
        mode: ExecutionMode = ExecutionMode.GROUPED_AGG,
        *,
        max_batch: int = 32,
        queue_capacity: int = 1024,
        service_options: dict[str, Any] | None = None,
    ) -> None:
        if isinstance(database, Database):
            database = ShardedDatabase.from_databases([database], name=database.name)
        if max_batch < 1:
            raise ServingError("max_batch must be at least 1")
        self.sharded = database
        self.max_batch = max_batch
        self.plan_cache = PlanCache()
        # Match-plan analyses are immutable and catalog-independent, so they
        # are shared across shard services exactly like compiled plans.
        self.match_plan_cache = MatchPlanCache()
        self.services: list[ActiveViewService] = [
            ActiveViewService(
                shard,
                mode=mode,
                plan_cache=self.plan_cache,
                match_plan_cache=self.match_plan_cache,
                **(service_options or {}),
            )
            for shard in database.shards
        ]
        self._queues: list[queue.Queue] = [
            queue.Queue(maxsize=queue_capacity) for _ in database.shards
        ]
        self.stats: list[ShardStats] = [ShardStats() for _ in database.shards]
        self._sequences: list[int] = [0] * database.shard_count
        # Activation hooks run on the producing shard's worker thread BEFORE
        # subscriber fan-out — the durable outbox appends here, so a delivery
        # can never precede its durable record (see repro.persist.outbox).
        self._activation_hooks: list[Callable[[Activation], None]] = []
        self._subscribers: list[Subscriber] = []
        self._subscribers_lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._running = False
        self._aborting = threading.Event()
        # submit() runs on arbitrary client threads; the submitted counters
        # are the one ShardStats field not confined to a worker thread.
        self._submit_lock = threading.Lock()
        for index, service in enumerate(self.services):
            service.add_activation_listener(self._make_listener(index))

    # ------------------------------------------------------------------ registration

    @property
    def shard_count(self) -> int:
        """Number of shards (== worker threads when running)."""
        return self.sharded.shard_count

    def register_view(self, view: ViewDefinition) -> None:
        """Register an XML view on every shard service."""
        for service in self.services:
            service.register_view(view)

    def register_action(self, name: str, function: Callable[..., Any]) -> None:
        """Register an external action function on every shard service.

        The function is invoked synchronously on the shard worker thread that
        fired the trigger, so actions of different shards overlap — blocking
        work in an action (a notification RPC, say) stalls only its own
        shard.  The function must therefore be thread-safe.
        """
        for service in self.services:
            service.register_action(name, function)

    def create_trigger(self, definition: str | TriggerSpec) -> TriggerSpec:
        """Create an XML trigger on every shard service (shared plan cache)."""
        spec: TriggerSpec | None = None
        for service in self.services:
            created = service.create_trigger(
                definition if spec is None else spec
            )
            spec = spec or created
        assert spec is not None
        return spec

    def register_triggers_bulk(
        self, definitions: Iterable[str | TriggerSpec]
    ) -> list[TriggerSpec]:
        """Create a batch of XML triggers on every shard service.

        The first shard parses each definition; the remaining shards reuse
        the parsed specs (and their cached expression analyses), and every
        shard builds its matching indexes once per touched group instead of
        once per trigger — see
        :meth:`~repro.core.service.ActiveViewService.register_triggers_bulk`.
        """
        materialized = list(definitions)
        specs: list[TriggerSpec] | None = None
        for service in self.services:
            created = service.register_triggers_bulk(
                materialized if specs is None else specs
            )
            specs = specs or created
        return specs if specs is not None else []

    def drop_trigger(self, name: str) -> None:
        """Drop an XML trigger from every shard service."""
        for service in self.services:
            service.drop_trigger(name)

    def drop_view(self, name: str) -> None:
        """Drop a view (and its triggers) from every shard service.

        The shared plan cache evicts the view's compiled plans once; see
        :meth:`~repro.core.service.ActiveViewService.drop_view`.
        """
        for service in self.services:
            service.drop_view(name)

    @property
    def triggers(self) -> list[TriggerSpec]:
        """The registered XML trigger specs (identical on every shard)."""
        return self.services[0].triggers

    # ------------------------------------------------------------------ subscriptions

    def subscribe(self, name: str | None = None, capacity: int = 256) -> Subscriber:
        """Attach a bounded activation subscriber (see :mod:`repro.serving.subscribers`)."""
        with self._subscribers_lock:
            # Name generation and append share one critical section so
            # concurrent anonymous subscribers never collide on a name.
            subscriber = Subscriber(name or f"subscriber{len(self._subscribers) + 1}", capacity)
            self._subscribers.append(subscriber)
            return subscriber

    def attach_subscriber(self, subscriber: Subscriber) -> Subscriber:
        """Attach an already-built subscriber to live delivery.

        Exists so a caller can pre-fill the subscriber's queue *before* live
        fan-out can interleave — the durable serving layer enqueues a
        recovered backlog first, preserving per-shard order across the
        attach (see :meth:`repro.persist.DurableServer.subscribe`).
        """
        with self._subscribers_lock:
            self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: Subscriber) -> None:
        """Close a subscriber and detach it from delivery."""
        subscriber.close()
        with self._subscribers_lock:
            if subscriber in self._subscribers:
                self._subscribers.remove(subscriber)

    def add_activation_hook(self, hook: Callable[[Activation], None]) -> None:
        """Register a hook invoked with every :class:`Activation` before fan-out.

        Hooks run synchronously on the producing shard's worker thread, after
        the trigger's action but before any subscriber receives the
        activation.  The persistence layer uses this ordering guarantee to
        append each activation to a durable outbox before delivery, making
        accepted-but-undelivered activations recoverable after a crash.
        """
        self._activation_hooks.append(hook)

    def remove_activation_hook(self, hook: Callable[[Activation], None]) -> None:
        """Remove a previously registered activation hook (idempotent)."""
        try:
            self._activation_hooks.remove(hook)
        except ValueError:
            pass

    def seed_sequences(self, sequences: Sequence[int]) -> None:
        """Restore per-shard activation sequence counters (recovery startup).

        A recovered server must continue numbering where the crashed process
        stopped, so that ``(shard, sequence)`` remains a total order per shard
        across restarts and durable subscriber cursors stay meaningful.  Only
        call this before :meth:`start`.
        """
        if len(sequences) != self.shard_count:
            raise ServingError(
                f"expected {self.shard_count} sequence seeds, got {len(sequences)}"
            )
        if self._running:
            raise ServingError("cannot seed sequences on a running server")
        self._sequences = [int(value) for value in sequences]

    def _make_listener(self, shard: int) -> Callable[[FiredTrigger], None]:
        def listener(fired: FiredTrigger) -> None:
            # Runs on the shard's (single) executing thread, inside the
            # shard database's lock — per-shard sequences need no extra lock.
            self._sequences[shard] += 1
            activation = Activation(
                shard=shard,
                sequence=self._sequences[shard],
                trigger=fired.trigger,
                view=fired.view,
                path=fired.path,
                event=fired.event,
                key=fired.key,
                old_node=fired.old_node,
                new_node=fired.new_node,
            )
            for hook in self._activation_hooks:
                hook(activation)
            with self._subscribers_lock:
                targets = [s for s in self._subscribers if not s.closed]
            for subscriber in targets:
                subscriber._offer(activation, give_up=self._aborting.is_set)

        return listener

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> "ActiveViewServer":
        """Spawn one worker thread per shard; returns ``self`` for chaining."""
        if self._running:
            return self
        self._aborting.clear()
        self._running = True
        self._threads = []
        for index in range(self.shard_count):
            thread = threading.Thread(
                target=self._worker_loop, args=(index,), name=f"shard-worker-{index}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()
        return self

    def drain(self) -> None:
        """Block until every queued statement has been executed."""
        for shard_queue in self._queues:
            shard_queue.join()

    def stop(self, *, drain: bool = True) -> None:
        """Stop the workers.

        With ``drain=True`` (default) queued statements finish first and
        every accepted activation is delivered.  With ``drain=False`` pending
        submissions fail with :class:`~repro.errors.ServerStoppedError` and
        publishers stop retrying full subscriber queues (deliveries abandoned
        this way are counted on each subscriber).
        """
        if not self._running:
            return
        self._running = False
        if drain:
            self.drain()
        else:
            self._aborting.set()
        for shard_queue in self._queues:
            shard_queue.put(_STOP)
        for thread in self._threads:
            thread.join()
        self._threads = []
        # submit() checks _running without a lock, so a racing client may
        # have enqueued behind the sentinel after the drain; sweep the queues
        # so no ticket is left hanging (and no stale sentinel can kill a
        # restarted worker).
        for shard_queue in self._queues:
            while True:
                try:
                    item = shard_queue.get_nowait()
                except queue.Empty:
                    break
                if item is not _STOP:
                    item.ticket._fail(ServerStoppedError("server stopped before execution"))
                shard_queue.task_done()

    def __enter__(self) -> "ActiveViewServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    # ------------------------------------------------------------------ submission

    def submit(self, statement: Statement) -> Ticket:
        """Enqueue one DML statement; returns a :class:`Ticket` immediately.

        Routed statements go to their owning shard's queue; broadcast
        statements (no key set to route by) are enqueued on every shard and
        complete when all shards have run them.  Blocks only when the target
        queue is full (backpressure).
        """
        if not self._running:
            raise ServerStoppedError("server is not running (call start())")
        shard = self.sharded.statement_shard(statement)
        if shard is None:
            ticket = Ticket(parts=self.shard_count)
            for index, shard_queue in enumerate(self._queues):
                with self._submit_lock:
                    self.stats[index].submitted += 1
                shard_queue.put(_Submission(statement, ticket))
        else:
            ticket = Ticket()
            with self._submit_lock:
                self.stats[shard].submitted += 1
            self._queues[shard].put(_Submission(statement, ticket))
        return ticket

    def execute(
        self, statement: Statement, timeout: float | None = 30.0
    ) -> StatementResult | list[StatementResult]:
        """Submit one statement and block for its result (closed-loop client)."""
        return self.submit(statement).result(timeout)

    def submit_many(self, statements: Iterable[Statement]) -> list[Ticket]:
        """Submit a stream of statements without waiting (open-loop client)."""
        return [self.submit(statement) for statement in statements]

    # ------------------------------------------------------------------ results

    @property
    def fired(self) -> list[FiredTrigger]:
        """All firings across shards (per-shard order preserved, shards concatenated)."""
        combined: list[FiredTrigger] = []
        for service in self.services:
            combined.extend(service.fired)
        return combined

    @property
    def activations_published(self) -> int:
        """Total activations produced across shards."""
        return sum(self._sequences)

    @property
    def sequences(self) -> list[int]:
        """Current per-shard activation sequence counters (copy)."""
        return list(self._sequences)

    @property
    def queue_depths(self) -> list[int]:
        """Statements waiting per shard queue (approximate — workers race).

        A persistently deep queue on one shard is the producer-side signal
        that routing is skewed; the network front end surfaces it through
        the ``stats`` frame next to the wire-side per-loop counters.
        """
        return [shard_queue.qsize() for shard_queue in self._queues]

    def clear_logs(self) -> None:
        """Forget recorded firings and action calls on every shard service."""
        for service in self.services:
            service.clear_logs()

    def evaluation_report(self) -> dict[str, int]:
        """Summed evaluation counters and result-cache stats across shards.

        Compiled physical plans are shared across shards through the server's
        :class:`~repro.core.service.PlanCache` (the view-closure contract
        guarantees every shard exposes the same catalog), but each shard
        service keeps its **own** version-stamped result cache — cached rows
        are data, and every shard holds different data.  This report merges
        the per-shard counters for a whole-server view.
        """
        combined: dict[str, int] = {}
        for service in self.services:
            for key, value in service.evaluation_report().items():
                combined[key] = combined.get(key, 0) + value
        return combined

    # ------------------------------------------------------------------ worker loop

    def _worker_loop(self, index: int) -> None:
        shard_queue = self._queues[index]
        service = self.services[index]
        stats = self.stats[index]
        while True:
            item = shard_queue.get()
            if item is _STOP:
                shard_queue.task_done()
                return
            if self._aborting.is_set():
                item.ticket._fail(ServerStoppedError("server stopped before execution"))
                shard_queue.task_done()
                continue
            # Micro-batch under load: drain whatever else is already queued,
            # up to the cap.  An idle server degenerates to per-statement
            # execution; a loaded one amortizes the trigger pipeline across
            # the whole chunk.
            chunk = [item]
            while len(chunk) < self.max_batch:
                try:
                    extra = shard_queue.get_nowait()
                except queue.Empty:
                    break
                if extra is _STOP:
                    shard_queue.task_done()  # settle the taken sentinel ...
                    shard_queue.put(extra)   # ... and requeue it for later
                    break
                chunk.append(extra)
            self._run_chunk(service, stats, chunk)
            for _ in chunk:
                shard_queue.task_done()

    def _run_chunk(
        self, service: ActiveViewService, stats: ShardStats, chunk: Sequence[_Submission]
    ) -> None:
        statements = [submission.statement for submission in chunk]
        try:
            batch = service.execute_batch(statements)
        except Exception as exc:  # noqa: BLE001 - forwarded to the submitters
            # execute_many semantics: the failing statement's predecessors are
            # applied, triggers have not fired.  The whole micro-batch's
            # tickets carry the error; max_batch bounds this blast radius.
            stats.errors += 1
            for submission in chunk:
                submission.ticket._fail(exc)
            return
        stats.batches += 1
        stats.statements += len(chunk)
        stats.max_batch = max(stats.max_batch, len(chunk))
        for submission, result in zip(chunk, batch.statements):
            submission.ticket._resolve(result)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "running" if self._running else "stopped"
        return (
            f"ActiveViewServer({state}, shards={self.shard_count}, "
            f"max_batch={self.max_batch}, activations={self.activations_published})"
        )
