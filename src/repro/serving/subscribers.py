"""Activation fan-out: bounded subscriber queues with at-least-once delivery.

When a shard worker of :class:`repro.serving.ActiveViewServer` fires XML
triggers, every registered :class:`Subscriber` receives an
:class:`Activation` record describing the firing.  Delivery semantics:

* **bounded** — each subscriber owns a bounded queue; a slow consumer exerts
  backpressure on the shard worker that produced the activation instead of
  growing memory without limit;
* **at-least-once** — the publisher retries a full queue until the
  activation is accepted (or the subscriber/server is closed), so no
  activation is silently dropped while a subscriber is open.  Only a forced
  (non-draining) server stop can abandon deliveries, and those are counted
  in :attr:`Subscriber.abandoned`;
* **per-node ordered** — a monitored node's key always routes to the same
  shard, that shard's worker publishes its firings in order, and the queue
  is FIFO; therefore two activations for the same node are always consumed
  in the order the transitions happened.  No ordering is promised *across*
  nodes living on different shards.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.relational.triggers import TriggerEvent
from repro.xmlmodel.node import XmlNode

__all__ = ["Activation", "Subscriber"]


@dataclass(frozen=True)
class Activation:
    """One XML-trigger firing as delivered to subscribers.

    ``sequence`` increases monotonically per shard, so
    ``(shard, sequence)`` totally orders the activations produced by one
    shard worker — and therefore all activations of any single node.
    """

    shard: int
    sequence: int
    trigger: str
    view: str
    path: tuple[str, ...]
    event: TriggerEvent
    key: tuple
    old_node: XmlNode | None
    new_node: XmlNode | None


class Subscriber:
    """A bounded FIFO of :class:`Activation` records owned by one consumer.

    Obtained from :meth:`repro.serving.ActiveViewServer.subscribe`.  Consume
    with :meth:`get` / :meth:`poll` / :meth:`drain`, or iterate (the iterator
    ends once the subscriber is closed *and* empty).  Closing a subscriber
    detaches it from the server: publishers stop delivering to it and any
    publisher currently blocked on its full queue gives up.
    """

    def __init__(self, name: str, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("subscriber capacity must be at least 1")
        self.name = name
        self.capacity = capacity
        self._queue: queue.Queue[Activation] = queue.Queue(maxsize=capacity)
        self._closed = threading.Event()
        #: Number of activations successfully handed to this subscriber.
        self.delivered = 0
        #: Deliveries abandoned because the subscriber (or the server) was
        #: closed while its queue was full — 0 in any graceful shutdown.
        self.abandoned = 0
        #: Highest acknowledged sequence per shard (see :meth:`ack`).
        self._acked: dict[int, int] = {}
        #: Optional hook ``(name, shard, sequence)`` invoked on each ack —
        #: set by the durable serving layer to persist the cursor.
        self.on_ack: Callable[[str, int, int], None] | None = None

    # ------------------------------------------------------------------ consumer

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed.is_set()

    def get(self, timeout: float | None = None) -> Activation:
        """Next activation, blocking up to ``timeout`` (raises ``queue.Empty``)."""
        return self._queue.get(timeout=timeout)

    def poll(self, timeout: float = 0.0) -> Activation | None:
        """Next activation or ``None`` if nothing arrives within ``timeout``."""
        try:
            return self._queue.get(timeout=timeout) if timeout > 0 else self._queue.get_nowait()
        except queue.Empty:
            return None

    def drain(self) -> list[Activation]:
        """Every activation currently queued (non-blocking)."""
        drained: list[Activation] = []
        while True:
            try:
                drained.append(self._queue.get_nowait())
            except queue.Empty:
                return drained

    def __iter__(self) -> Iterator[Activation]:
        """Yield activations until the subscriber is closed and empty."""
        while True:
            try:
                yield self._queue.get(timeout=0.05)
            except queue.Empty:
                if self.closed:
                    return

    def ack(self, activation: Activation) -> None:
        """Acknowledge an activation as fully processed.

        Acking advances this subscriber's per-shard cursor to the
        activation's sequence; because one shard's activations are consumed
        in sequence order, the cursor marks a *prefix* of that shard's stream
        as done.  Under a durable server the cursor is persisted (via
        :attr:`on_ack`), and after a restart only activations *beyond* it are
        redelivered — consume first, then ack, and the stream is
        at-least-once across crashes.  Without durability, ack is merely
        bookkeeping (:attr:`acked`).
        """
        self.ack_position(activation.shard, activation.sequence)

    def ack_position(self, shard: int, sequence: int) -> None:
        """Acknowledge by position — same semantics as :meth:`ack`.

        The network front end acknowledges with ``(shard, sequence)`` pairs
        from ``ACK`` frames, where no :class:`Activation` object exists
        server-side anymore; both entry points share this cursor update.
        """
        current = self._acked.get(shard, 0)
        if sequence > current:
            self._acked[shard] = sequence
        if self.on_ack is not None:
            self.on_ack(self.name, shard, sequence)

    @property
    def acked(self) -> dict[int, int]:
        """Highest acknowledged sequence per shard (copy)."""
        return dict(self._acked)

    def close(self) -> None:
        """Detach from the server; pending activations stay readable."""
        self._closed.set()

    # ------------------------------------------------------------------ producer

    def _offer(self, activation: Activation, give_up: Callable[[], bool]) -> bool:
        """Deliver with backpressure; called by shard workers only.

        Blocks in short waits while the queue is full, re-checking
        ``give_up()`` (server force-stopping) and :attr:`closed` between
        attempts — this loop is what makes delivery at-least-once rather than
        best-effort.  Returns True when the activation was enqueued.
        """
        while not self.closed:
            try:
                self._queue.put(activation, timeout=0.05)
            except queue.Full:
                if give_up():
                    self.abandoned += 1
                    return False
                continue
            self.delivered += 1
            return True
        # Closed (possibly while we were blocked on a full queue): the
        # delivery is lost, and the counter must say so.
        self.abandoned += 1
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self.closed else "open"
        return (
            f"Subscriber({self.name!r}, {state}, queued={self._queue.qsize()}, "
            f"delivered={self.delivered})"
        )
