"""Web front end for the serving layer: HTTP REST + WebSocket subscriptions.

The browser-grade packaging of the same surface the TCP front end
(:mod:`repro.serving.net`) exposes, built entirely on the standard library:
hand-rolled HTTP/1.1 (:mod:`repro.serving.web.http`), RFC 6455 WebSocket
framing (:mod:`repro.serving.web.wsproto`), the shared activation frame
cache (:mod:`repro.serving.web.webframes`), the gateway itself
(:mod:`repro.serving.web.gateway`), and asyncio clients
(:mod:`repro.serving.web.client`).  ``docs/networking.md`` ("Web gateway")
is the endpoint and message-schema reference.
"""

from repro.serving.web.client import (
    GatewayError,
    WebClient,
    WebSubscription,
    WsClient,
)
from repro.serving.web.gateway import WebGateway
from repro.serving.web.http import HttpError, HttpRequest, read_request
from repro.serving.web.webframes import JsonFrameCache
from repro.serving.web.wsproto import WsReader, accept_key

__all__ = [
    "GatewayError",
    "HttpError",
    "HttpRequest",
    "JsonFrameCache",
    "WebClient",
    "WebGateway",
    "WebSubscription",
    "WsClient",
    "WsReader",
    "accept_key",
    "read_request",
]
