"""Asyncio HTTP + WebSocket clients for the web gateway — stdlib only.

:class:`WebClient` is a keep-alive HTTP/1.1 client for the REST surface
(submit, DDL, stats); :class:`WsClient` performs the RFC 6455 upgrade and
speaks the JSON subscription protocol, exposing activations through
:class:`WebSubscription` exactly like the TCP client's stream object —
``get(timeout)``, a ``durable`` flag, and pause/resume via cursors.  Both
exist for the test suites, the example walkthrough, and the fan-out
benchmark; a browser or any off-the-shelf WebSocket library is an equally
valid peer (the wire format is documented in ``docs/networking.md``).
"""

from __future__ import annotations

import asyncio
import base64
import json
import os
from typing import Any

from repro.errors import NetworkError, ProtocolError
from repro.persist.records import activation_from_record
from repro.relational.dml import Statement
from repro.serving.net.protocol import statement_to_wire
from repro.serving.subscribers import Activation
from repro.serving.web import wsproto
from repro.serving.web.http import DEFAULT_MAX_HEADER

__all__ = ["GatewayError", "WebClient", "WsClient", "WebSubscription"]

#: Decoded XML nodes shared across every subscription in this process
#: (redeliveries and fan-out tests decode the same serialized node).
_NODE_CACHE: dict[str, Any] = {}

_STREAM_END = object()


class GatewayError(NetworkError):
    """A REST call the gateway answered with an error status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


async def _read_http_response(
    reader: asyncio.StreamReader,
) -> tuple[int, dict[str, str], bytes]:
    """Read one response: ``(status, lower-cased headers, body)``."""
    try:
        block = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-response")
    except asyncio.LimitOverrunError:
        raise ProtocolError("response header block too large")
    lines = block.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2 or not parts[1].isdigit():
        raise ProtocolError(f"malformed status line: {lines[0]!r}")
    status = int(parts[1])
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed response header: {line!r}")
        headers[name.lower().strip()] = value.strip()
    length = int(headers.get("content-length", "0"))
    body = await reader.readexactly(length) if length else b""
    return status, headers, body


class WebClient:
    """Keep-alive HTTP client for the gateway's REST endpoints."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
        host: str, port: int,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._host = host
        self._port = port

    @classmethod
    async def connect(cls, host: str, port: int) -> "WebClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=DEFAULT_MAX_HEADER + 1024
        )
        return cls(reader, writer, host, port)

    async def close(self) -> None:
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "WebClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    async def request(
        self, method: str, path: str, payload: object | None = None
    ) -> object:
        """One round trip; JSON-decoded body, :class:`GatewayError` on 4xx/5xx."""
        body = b""
        if payload is not None:
            body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self._host}:{self._port}\r\n"
            f"Content-Length: {len(body)}\r\n"
        )
        if body:
            head += "Content-Type: application/json\r\n"
        self._writer.write(head.encode("latin-1") + b"\r\n" + body)
        await self._writer.drain()
        status, _headers, raw = await _read_http_response(self._reader)
        decoded: object = None
        if raw:
            try:
                decoded = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as error:
                raise ProtocolError(f"response body is not JSON: {error}")
        if status >= 400:
            message = ""
            if isinstance(decoded, dict):
                message = decoded.get("error", {}).get("message", "")
            raise GatewayError(status, message or raw.decode("utf-8", "replace"))
        return decoded

    # ------------------------------------------------------------ the surface

    async def submit(self, statement: Statement) -> list[dict]:
        """Execute one statement; its per-part result records."""
        reply = await self.request(
            "POST", "/v1/submit", {"statement": statement_to_wire(statement)}
        )
        return reply["results"]

    async def submit_batch(
        self, statements: list[Statement]
    ) -> list[list[dict]]:
        """Execute statements in order; one result list per statement."""
        reply = await self.request(
            "POST", "/v1/submit-batch",
            {"statements": [statement_to_wire(s) for s in statements]},
        )
        return reply["results"]

    async def create_trigger(self, source: str) -> str:
        reply = await self.request("POST", "/v1/triggers", {"source": source})
        return reply["names"][0]

    async def register_triggers_bulk(self, sources: list[str]) -> list[str]:
        reply = await self.request("POST", "/v1/triggers", {"sources": sources})
        return reply["names"]

    async def drop_trigger(self, name: str) -> None:
        await self.request("DELETE", f"/v1/triggers/{name}")

    async def drop_view(self, name: str) -> None:
        await self.request("DELETE", f"/v1/views/{name}")

    async def stats(self) -> dict:
        reply = await self.request("GET", "/v1/stats")
        assert isinstance(reply, dict)
        return reply


class WebSubscription:
    """One WebSocket subscription's activation stream.

    ``get`` yields :class:`~repro.serving.subscribers.Activation` objects
    (nodes re-parsed from the JSON payload through a shared cache), or
    ``None`` once the stream ended.  After a ``paused`` message from the
    gateway, :attr:`paused` is set and :attr:`sent_watermark` holds the
    per-shard high-water mark of what the server framed before pausing —
    resume by re-subscribing with :attr:`cursor` (everything acked).
    """

    def __init__(self, name: str, durable: bool) -> None:
        self.name = name
        self.durable = durable
        self.paused = False
        #: Per-shard highest sequence the server reported framing.
        self.sent_watermark: dict[int, int] = {}
        #: Per-shard highest sequence acked through this subscription.
        self.cursor: dict[int, int] = {}
        self._queue: asyncio.Queue = asyncio.Queue()

    async def get(self, timeout: float | None = None) -> Activation | None:
        """Next activation, or ``None`` if the stream ended."""
        if timeout is None:
            item = await self._queue.get()
        else:
            item = await asyncio.wait_for(self._queue.get(), timeout)
        if item is _STREAM_END:
            # Leave the sentinel visible for any later get().
            self._queue.put_nowait(_STREAM_END)
            return None
        return item

    def _push(self, activation: Activation) -> None:
        self._queue.put_nowait(activation)

    def _end(self) -> None:
        self._queue.put_nowait(_STREAM_END)

    def _on_paused(self, sent: dict) -> None:
        self.paused = True
        self.sent_watermark = {int(k): int(v) for k, v in sent.items()}
        self._end()


class WsClient:
    """WebSocket client for the gateway's subscription endpoint."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
        *, max_message: int,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._ws = wsproto.WsReader(
            reader, require_mask=False, max_message=max_message
        )
        self._next_id = 0
        self._replies: dict[int, asyncio.Future] = {}
        self.subscription: WebSubscription | None = None
        self._pong_waiters: list[asyncio.Future] = []
        self._reader_task = asyncio.ensure_future(self._read_loop())
        self._closed = False

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        max_message: int = wsproto.DEFAULT_MAX_MESSAGE,
    ) -> "WsClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=DEFAULT_MAX_HEADER + 1024
        )
        key = base64.b64encode(os.urandom(16)).decode("ascii")
        writer.write(
            (
                f"GET /ws HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                f"Upgrade: websocket\r\n"
                f"Connection: Upgrade\r\n"
                f"Sec-WebSocket-Key: {key}\r\n"
                f"Sec-WebSocket-Version: 13\r\n"
                f"\r\n"
            ).encode("latin-1")
        )
        await writer.drain()
        status, headers, _body = await _read_http_response(reader)
        if status != 101:
            writer.close()
            raise NetworkError(f"gateway refused the upgrade: HTTP {status}")
        expected = wsproto.accept_key(key)
        if headers.get("sec-websocket-accept") != expected:
            writer.close()
            raise ProtocolError("bad Sec-WebSocket-Accept in the handshake")
        return cls(reader, writer, max_message=max_message)

    async def __aenter__(self) -> "WsClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # ---------------------------------------------------------------- sending

    def _send_json(self, message: dict) -> None:
        body = json.dumps(message, separators=(",", ":")).encode("utf-8")
        self._writer.write(
            wsproto.encode_frame(wsproto.OP_TEXT, body, mask=True)
        )

    async def subscribe(
        self,
        name: str | None = None,
        *,
        view: str | None = None,
        path: list | None = None,
        cursor: dict[int, int] | None = None,
    ) -> WebSubscription:
        """Open this connection's subscription stream.

        Install the stream before the request goes out so a backlog
        redelivery racing the reply is never dropped.
        """
        self._next_id += 1
        msg_id = self._next_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._replies[msg_id] = future
        subscription = WebSubscription(name or "", durable=False)
        self.subscription = subscription
        message: dict = {"type": "subscribe", "id": msg_id}
        if name is not None:
            message["name"] = name
        if view is not None:
            message["view"] = view
        if path is not None:
            message["path"] = list(path)
        if cursor is not None:
            message["cursor"] = {str(k): int(v) for k, v in cursor.items()}
        self._send_json(message)
        await self._writer.drain()
        reply = await future
        subscription.name = reply.get("name", subscription.name)
        subscription.durable = bool(reply.get("durable"))
        return subscription

    async def ack(self, activation: Activation) -> None:
        await self.ack_position(activation.shard, activation.sequence)

    async def ack_position(self, shard: int, sequence: int) -> None:
        self._send_json({"type": "ack", "shard": shard, "seq": sequence})
        await self._writer.drain()
        subscription = self.subscription
        if subscription is not None \
                and sequence > subscription.cursor.get(shard, 0):
            subscription.cursor[shard] = sequence

    async def ping(self) -> None:
        """JSON-level round trip — returns once the gateway answered."""
        self._next_id += 1
        msg_id = self._next_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._replies[msg_id] = future
        self._send_json({"type": "ping", "id": msg_id})
        await self._writer.drain()
        await future

    async def ws_ping(self, payload: bytes = b"") -> bytes:
        """Protocol-level ping; resolves with the pong payload."""
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pong_waiters.append(future)
        self._writer.write(
            wsproto.encode_frame(wsproto.OP_PING, payload, mask=True)
        )
        await self._writer.drain()
        return await future

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._writer.write(wsproto.encode_close(mask=True))
            await self._writer.drain()
        except (ConnectionError, OSError):
            pass
        # The reader loop exits on the close reply (or EOF) and closes the
        # transport; bound the wait so a dead peer can't hang us.
        try:
            await asyncio.wait_for(self._reader_task, timeout=5)
        except (asyncio.TimeoutError, asyncio.CancelledError):
            self._reader_task.cancel()
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    # ---------------------------------------------------------------- receiving

    async def _read_loop(self) -> None:
        try:
            while True:
                opcode, payload = await self._ws.next_message()
                if opcode == wsproto.OP_CLOSE:
                    if not self._closed:
                        try:
                            self._writer.write(
                                wsproto.encode_close(mask=True)
                            )
                            await self._writer.drain()
                        except (ConnectionError, OSError):
                            pass
                    break
                if opcode == wsproto.OP_PING:
                    self._writer.write(
                        wsproto.encode_frame(
                            wsproto.OP_PONG, payload, mask=True
                        )
                    )
                    continue
                if opcode == wsproto.OP_PONG:
                    while self._pong_waiters:
                        waiter = self._pong_waiters.pop(0)
                        if not waiter.done():
                            waiter.set_result(payload)
                    continue
                self._dispatch(json.loads(payload.decode("utf-8")))
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            OSError,
            ProtocolError,
            ValueError,
        ):
            pass
        finally:
            self._finish()

    def _dispatch(self, message: dict) -> None:
        mtype = message.get("type")
        if mtype == "activation":
            if self.subscription is not None:
                self.subscription._push(
                    activation_from_record(
                        message["payload"], node_cache=_NODE_CACHE
                    )
                )
            return
        if mtype == "paused":
            if self.subscription is not None:
                self.subscription._on_paused(message.get("sent", {}))
            return
        if mtype in ("subscribed", "pong", "error"):
            future = self._replies.pop(message.get("id"), None)
            if future is not None and not future.done():
                if mtype == "error":
                    future.set_exception(
                        NetworkError(
                            f"{message.get('code')}: {message.get('message')}"
                        )
                    )
                else:
                    future.set_result(message)
            return
        # Unknown server message: ignore (forward compatibility).

    def _finish(self) -> None:
        if self.subscription is not None:
            self.subscription._end()
        for future in self._replies.values():
            if not future.done():
                future.set_exception(NetworkError("connection closed"))
        self._replies.clear()
        for waiter in self._pong_waiters:
            if not waiter.done():
                waiter.set_exception(NetworkError("connection closed"))
        self._pong_waiters.clear()
        try:
            self._writer.close()
        except (ConnectionError, OSError):
            pass
