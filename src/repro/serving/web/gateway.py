"""HTTP + WebSocket gateway over the serving layer — stdlib only.

:class:`WebGateway` packages the same surface as the TCP front end
(:mod:`repro.serving.net`) for web-native consumers: REST endpoints for DML
submission (single and batch, with per-statement results), trigger DDL
including bulk registration, and server statistics; and WebSocket
subscription streams carrying JSON-encoded activations with server-side
view/path filters, client acks, and durable resumable cursors.

The delivery semantics are *the same machinery*, not a re-implementation:
WebSocket sessions attach a :class:`~repro.serving.net.connection.LoopSubscriber`
through the same :class:`~repro.serving.net.connection.WakeHub`, so the
PR 8/9 discipline holds verbatim — shard workers never block, each
subscription buffers at most ``send_buffer`` undrained activations, a slow
consumer is **paused** (detach → flush → terminal ``paused`` message with
per-shard sent watermarks) rather than blocked or silently dropped, and a
durable resume fast-forwards the persisted cursor
(:meth:`~repro.persist.durable.DurableServer.fast_forward`) before
re-subscribing.  Cursors on a non-durable backend are refused outright —
an ignored cursor would silently turn at-least-once into lossy.

One activation is JSON-encoded (and WebSocket-framed) **once** process-wide
via :class:`~repro.serving.web.webframes.JsonFrameCache`; server→client
frames are unmasked per RFC 6455, which is exactly what makes the bytes
shareable across subscribers.

Endpoints (all request/response bodies JSON):

========  ======================  =============================================
method    path                    action
========  ======================  =============================================
POST      ``/v1/submit``          one statement → its per-part results
POST      ``/v1/submit-batch``    statement list → per-statement result lists
POST      ``/v1/triggers``        ``source`` (one) or ``sources`` (bulk DDL)
DELETE    ``/v1/triggers/<name>`` drop a trigger
DELETE    ``/v1/views/<name>``    drop a view
GET       ``/v1/stats``           evaluation/shard/queue/web/durability stats
GET       ``/ws``                 WebSocket upgrade → subscription session
========  ======================  =============================================

``docs/networking.md`` ("Web gateway") documents the JSON message schema
and the cursor-semantics parity with the TCP path.
"""

from __future__ import annotations

import asyncio
import base64
import json
import socket
import threading
from typing import Any, Callable

from repro.errors import NetworkError, ProtocolError
from repro.persist.durable import DurableServer
from repro.serving.net.connection import (
    LoopSubscriber,
    WakeHub,
    subscription_filter,
)
from repro.serving.net.protocol import result_to_wire, statement_from_wire
from repro.serving.server import ActiveViewServer
from repro.serving.subscribers import Activation
from repro.serving.web import wsproto
from repro.serving.web.http import (
    DEFAULT_MAX_BODY,
    DEFAULT_MAX_HEADER,
    HttpError,
    HttpRequest,
    error_response,
    json_response,
    read_request,
    response_bytes,
)
from repro.serving.web.webframes import JsonFrameCache

__all__ = ["WebGateway"]

#: How long a REST submit waits for its tickets before giving up (seconds).
_SUBMIT_TIMEOUT = 60.0


def _new_counters() -> dict[str, int]:
    return {
        "connections_opened": 0,
        "requests_received": 0,
        "responses_sent": 0,
        "ws_upgrades": 0,
        "ws_messages_received": 0,
        "ws_frames_sent": 0,
        "ws_bytes_sent": 0,
        "statements_submitted": 0,
        "subscriptions_opened": 0,
        "subscriptions_paused": 0,
        "activations_sent": 0,
        "acks_received": 0,
        "protocol_errors": 0,
        "overflow_closes": 0,
    }


class _WsSession:
    """One WebSocket subscription session on the gateway's loop.

    Mirrors the TCP :class:`~repro.serving.net.connection._Connection`
    delivery state: a bounded out-queue drained by a serialized writer
    task, a :class:`LoopSubscriber` handing activations over from shard
    workers, and the pause-don't-block-don't-drop overflow policy.  The
    out-queue is sized ``send_buffer + 64``: activations respect the
    subscriber's inflight cap, so control traffic (pongs, replies, the
    terminal ``paused`` message) always finds a slot.
    """

    def __init__(
        self,
        gateway: "WebGateway",
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.gateway = gateway
        self.reader = reader
        self.writer = writer
        self._out: asyncio.Queue = asyncio.Queue(
            maxsize=gateway.send_buffer + 64
        )
        self._writer_task: asyncio.Task | None = None
        self.subscriber: LoopSubscriber | None = None
        self._sent_watermark: dict[int, int] = {}
        self._loop = asyncio.get_running_loop()
        self._closing = False

    # ---------------------------------------------------------------- sending

    def send_bytes(
        self, frame: bytes, after: Callable[[], None] | None = None
    ) -> None:
        """Queue one encoded frame (loop thread only)."""
        try:
            self._out.put_nowait((frame, after))
        except asyncio.QueueFull:
            self.gateway.counters["overflow_closes"] += 1
            if after is not None:
                after()
            try:
                self.writer.close()
            except (ConnectionError, OSError):  # pragma: no cover - defensive
                pass

    def send_json(
        self, message: dict, after: Callable[[], None] | None = None
    ) -> None:
        body = json.dumps(message, separators=(",", ":")).encode("utf-8")
        self.send_bytes(wsproto.encode_frame(wsproto.OP_TEXT, body), after)

    def send_error(self, msg_id: Any, code: str, message: str) -> None:
        self.send_json(
            {"type": "error", "id": msg_id, "code": code, "message": message}
        )

    async def _writer_loop(self) -> None:
        counters = self.gateway.counters
        while True:
            item = await self._out.get()
            if item is None:
                return
            frame, after = item
            try:
                self.writer.write(frame)
                await self.writer.drain()
                counters["ws_frames_sent"] += 1
                counters["ws_bytes_sent"] += len(frame)
            except (ConnectionError, OSError):
                return
            finally:
                if after is not None:
                    after()

    # ---------------------------------------------------------------- lifecycle

    async def run(self) -> None:
        self.gateway.counters["ws_upgrades"] += 1
        self._writer_task = asyncio.ensure_future(self._writer_loop())
        ws_reader = wsproto.WsReader(
            self.reader,
            require_mask=True,
            max_message=self.gateway.max_ws_message,
        )
        try:
            while True:
                try:
                    opcode, payload = await ws_reader.next_message()
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    break  # peer vanished (possibly mid-frame): clean goodbye
                self.gateway.counters["ws_messages_received"] += 1
                if opcode == wsproto.OP_CLOSE:
                    # Echo the close and stop reading; anything the peer
                    # pipelined after its close frame is intentionally not
                    # processed (acks already handled above took effect).
                    if not self._closing:
                        self._closing = True
                        self.send_bytes(wsproto.encode_close())
                    break
                if opcode == wsproto.OP_PING:
                    self.send_bytes(
                        wsproto.encode_frame(wsproto.OP_PONG, payload)
                    )
                    continue
                if opcode == wsproto.OP_PONG:
                    continue
                await self._dispatch_text(opcode, payload)
        except ProtocolError as error:
            self.gateway.counters["protocol_errors"] += 1
            self._closing = True
            self.send_bytes(
                wsproto.encode_close(
                    wsproto.CLOSE_PROTOCOL_ERROR, str(error)[:80]
                )
            )
        except (ConnectionError, OSError):
            pass
        finally:
            await self._cleanup()

    async def _cleanup(self) -> None:
        self._detach_subscriber()
        try:
            self._out.put_nowait(None)
        except asyncio.QueueFull:
            if self._writer_task is not None:
                self._writer_task.cancel()
        if self._writer_task is not None:
            try:
                await asyncio.wait_for(self._writer_task, timeout=5)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                self._writer_task.cancel()
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self.gateway._sessions.discard(self)

    def _detach_subscriber(self) -> None:
        if self.subscriber is not None:
            self.gateway.core.unsubscribe(self.subscriber)

    # ---------------------------------------------------------------- dispatch

    async def _dispatch_text(self, opcode: int, payload: bytes) -> None:
        if opcode != wsproto.OP_TEXT:
            raise ProtocolError("subscription messages must be TEXT frames")
        try:
            message = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise ProtocolError(f"message is not JSON: {error}")
        if not isinstance(message, dict) or "type" not in message:
            raise ProtocolError("message must be an object with a 'type'")
        mtype = message["type"]
        if mtype == "subscribe":
            await self._handle_subscribe(message)
        elif mtype == "ack":
            self._handle_ack(message)
        elif mtype == "ping":
            self.send_json({"type": "pong", "id": message.get("id")})
        else:
            raise ProtocolError(f"unknown message type {mtype!r}")

    async def _handle_subscribe(self, message: dict) -> None:
        msg_id = message.get("id")
        if self.subscriber is not None and not self.subscriber.paused \
                and not self.subscriber.closed:
            self.send_error(msg_id, "state",
                            "this session already has an active subscription")
            return
        name = message.get("name")
        view = message.get("view")
        path = message.get("path")
        cursor = message.get("cursor")
        if name is not None and not isinstance(name, str):
            self.send_error(msg_id, "bad-request",
                            "'name' must be a string or null")
            return
        if path is not None and not isinstance(path, list):
            self.send_error(msg_id, "bad-request", "'path' must be a step list")
            return
        if cursor is not None and not (
            isinstance(cursor, dict)
            and all(
                isinstance(k, str) and k.lstrip("-").isdigit()
                and isinstance(v, int)
                for k, v in cursor.items()
            )
        ):
            self.send_error(
                msg_id, "bad-request",
                "'cursor' must map shard (stringified int) to sequence",
            )
            return
        durable = self.gateway.durable
        resumable = durable is not None and name is not None
        if cursor is not None and not resumable:
            # Same no-silent-fallback contract as the TCP path: an ignored
            # cursor would quietly break at-least-once.
            self.send_error(
                msg_id, "unsupported",
                "cursors require a durable server and a named subscription",
            )
            return
        subscriber = LoopSubscriber(
            name or f"web-anon-{id(self)}",
            limit=self.gateway.send_buffer,
            hub=self.gateway.wake_hub,
            deliver=self._deliver_activation,
            overflow=self._pause_subscription,
            accept=subscription_filter(view, path),
        )
        self.subscriber = subscriber
        self._sent_watermark = {}
        try:
            if resumable:
                def attach() -> None:
                    if cursor is not None:
                        durable.fast_forward(name, {
                            int(shard): sequence
                            for shard, sequence in cursor.items()
                        })
                    durable.subscribe(name, subscriber=subscriber)

                await asyncio.to_thread(attach)
            else:
                self.gateway.core.attach_subscriber(subscriber)
        except Exception as error:  # noqa: BLE001 - persistence/serving errors
            self.subscriber = None
            self.send_error(msg_id, "execution", str(error))
            return
        self.gateway.counters["subscriptions_opened"] += 1
        self.send_json(
            {
                "type": "subscribed",
                "id": msg_id,
                "name": subscriber.name,
                "durable": resumable,
            }
        )

    def _handle_ack(self, message: dict) -> None:
        shard = message.get("shard")
        sequence = message.get("seq")
        if not isinstance(shard, int) or not isinstance(sequence, int):
            raise ProtocolError("ack needs integer 'shard' and 'seq'")
        self.gateway.counters["acks_received"] += 1
        subscriber = self.subscriber
        if subscriber is None:
            # Ack-after-close tolerance: a client draining its receive
            # buffer may ack activations that raced the close of its
            # subscription.  There is no cursor to advance, but the ack is
            # not a protocol violation — ignore it rather than kill the
            # session (the durable outbox simply redelivers on resume).
            return
        # Valid after a pause too: acking what arrived before the pause is
        # exactly what advances the durable cursor for the resume.
        subscriber.ack_position(shard, sequence)

    # ---------------------------------------------------------------- fan-out

    def _deliver_activation(self, activation: Activation) -> None:  # loop thread
        subscriber = self.subscriber
        if activation.sequence > self._sent_watermark.get(activation.shard, 0):
            self._sent_watermark[activation.shard] = activation.sequence
        self.gateway.counters["activations_sent"] += 1
        frame = self.gateway.frame_cache.frame(activation)
        release = subscriber.release if subscriber is not None else None
        self.send_bytes(frame, after=release)

    def _pause_subscription(self) -> None:  # loop thread
        subscriber = self.subscriber
        if subscriber is None:
            return
        self.gateway.counters["subscriptions_paused"] += 1
        # Detach first so shard workers stop offering; everything already
        # buffered still flushes (the out-queue is FIFO), then the pause
        # notice arrives as the stream's terminal message.
        self._detach_subscriber()
        self.send_json(
            {
                "type": "paused",
                "reason": "slow-consumer",
                "sent": {
                    str(shard): seq
                    for shard, seq in self._sent_watermark.items()
                },
            }
        )


class WebGateway:
    """HTTP + WebSocket front end for an :class:`ActiveViewServer`.

    Parameters
    ----------
    server:
        The serving stack to expose.  A :class:`DurableServer` enables
        named WebSocket subscriptions with resumable cursors; on a plain
        server, subscriptions are live-only and cursors are refused.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read
        :attr:`address` after :meth:`start`).
    send_buffer:
        Per-subscription bound on activations buffered toward one client;
        crossing it pauses the subscription (never blocks a shard worker,
        never drops silently).
    max_header, max_body, max_ws_message:
        Hard caps on the HTTP header block, REST request bodies, and one
        reassembled WebSocket message, all enforced before buffering.
    write_buffer_limit:
        Optional transport high-water mark (bytes); a low value makes
        ``drain()`` track the consumer's real pace, so slow-consumer
        detection is prompt (tests use this).

    The gateway owns one daemon thread running a private asyncio loop;
    every public method is callable from ordinary threads.  Lifecycle
    composes with the serving stack's: start the inner server first, stop
    the gateway first.
    """

    def __init__(
        self,
        server: ActiveViewServer | DurableServer,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        send_buffer: int = 256,
        max_header: int = DEFAULT_MAX_HEADER,
        max_body: int = DEFAULT_MAX_BODY,
        max_ws_message: int = wsproto.DEFAULT_MAX_MESSAGE,
        write_buffer_limit: int | None = None,
    ) -> None:
        if isinstance(server, DurableServer):
            self.durable: DurableServer | None = server
            self.core: ActiveViewServer = server.server
        else:
            self.durable = None
            self.core = server
        if send_buffer < 1:
            raise NetworkError("send_buffer must be at least 1")
        self.host = host
        self.port = port
        self.send_buffer = send_buffer
        self.max_header = max_header
        self.max_body = max_body
        self.max_ws_message = max_ws_message
        self.write_buffer_limit = write_buffer_limit
        #: ``(host, port)`` actually bound (set by :meth:`start`).
        self.address: tuple[str, int] | None = None
        #: One JSON encode + WebSocket frame per activation, shared.
        self.frame_cache = JsonFrameCache()
        self.counters = _new_counters()
        self.wake_hub: WakeHub | None = None
        self._sessions: set[_WsSession] = set()
        self._client_tasks: set[asyncio.Task] = set()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._shutdown: asyncio.Event | None = None
        self._server: asyncio.Server | None = None

    # ---------------------------------------------------------------- lifecycle

    def start(self) -> "WebGateway":
        """Bind the listener and start serving; returns ``self``."""
        if self._thread is not None:
            return self
        self._startup_error = None
        self._started.clear()
        self._thread = threading.Thread(
            target=self._run, name="web-gateway", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise NetworkError("web gateway failed to start within 30s")
        if self._startup_error is not None:
            error = self._startup_error
            self._thread.join(timeout=5)
            self._thread = None
            raise NetworkError(f"web gateway failed to bind: {error}")
        return self

    def stop(self) -> None:
        """Close the listener and every session; join the loop thread."""
        thread = self._thread
        if thread is None:
            return
        loop = self._loop
        if loop is not None:
            try:
                loop.call_soon_threadsafe(self._signal_shutdown)
            except RuntimeError:
                pass
        thread.join(timeout=30)
        self._thread = None
        self._loop = None
        self.address = None

    def __enter__(self) -> "WebGateway":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def _signal_shutdown(self) -> None:  # loop thread
        if self._shutdown is not None:
            self._shutdown.set()

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self.wake_hub = WakeHub(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._serve())
        finally:
            asyncio.set_event_loop(None)
            loop.close()

    async def _serve(self) -> None:
        self._shutdown = asyncio.Event()
        try:
            # The stream limit bounds ``readuntil`` (the header block read);
            # frame payload reads use ``readexactly`` and budget themselves.
            self._server = await asyncio.start_server(
                self._handle_client,
                self.host,
                self.port,
                limit=self.max_header + 1024,
            )
        except OSError as error:
            self._startup_error = error
            self._started.set()
            return
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        self._started.set()
        try:
            await self._shutdown.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            for session in list(self._sessions):
                try:
                    session.writer.close()
                except (ConnectionError, OSError):  # pragma: no cover
                    pass
            for _ in range(100):
                if not self._sessions:
                    break
                await asyncio.sleep(0.02)
            # Idle keep-alive HTTP connections sit in read_request with no
            # session to close them; cancel their handler tasks so the loop
            # shuts down with nothing pending.
            for task in list(self._client_tasks):
                task.cancel()
            if self._client_tasks:
                await asyncio.gather(
                    *self._client_tasks, return_exceptions=True
                )

    # ---------------------------------------------------------------- serving

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.counters["connections_opened"] += 1
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks.add(task)
            task.add_done_callback(self._client_tasks.discard)
        if self.write_buffer_limit is not None:
            # Small high-water mark — transport *and* kernel send buffer —
            # so ``drain()`` (and the inflight accounting built on it)
            # tracks the consumer's real pace instead of buffering depth.
            writer.transport.set_write_buffer_limits(
                high=self.write_buffer_limit
            )
            raw = writer.get_extra_info("socket")
            if raw is not None:
                raw.setsockopt(
                    socket.SOL_SOCKET, socket.SO_SNDBUF,
                    self.write_buffer_limit,
                )
        try:
            while True:
                try:
                    request = await read_request(
                        reader,
                        max_header=self.max_header,
                        max_body=self.max_body,
                    )
                except HttpError as error:
                    self.counters["protocol_errors"] += 1
                    writer.write(error_response(error.status, str(error)))
                    await writer.drain()
                    return
                if request is None:
                    return
                self.counters["requests_received"] += 1
                if self._wants_upgrade(request):
                    await self._upgrade(request, reader, writer)
                    return  # the session consumed the connection
                response = await self._route(request)
                writer.write(response)
                await writer.drain()
                self.counters["responses_sent"] += 1
                if not request.keep_alive:
                    return
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # ---------------------------------------------------------------- upgrade

    @staticmethod
    def _wants_upgrade(request: HttpRequest) -> bool:
        return "upgrade" in request.header("connection").lower() \
            and request.header("upgrade").lower() == "websocket"

    async def _upgrade(
        self,
        request: HttpRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        def refuse(status: int, message: str) -> bytes:
            self.counters["protocol_errors"] += 1
            return error_response(status, message)

        if request.path != "/ws":
            writer.write(refuse(404, f"no WebSocket endpoint at {request.path}"))
            await writer.drain()
            return
        if request.method != "GET":
            writer.write(refuse(405, "WebSocket upgrade must be a GET"))
            await writer.drain()
            return
        key = request.header("sec-websocket-key")
        version = request.header("sec-websocket-version")
        if version != "13":
            writer.write(refuse(426, "only WebSocket version 13 is supported"))
            await writer.drain()
            return
        if not _valid_ws_key(key):
            writer.write(refuse(400, "missing or malformed Sec-WebSocket-Key"))
            await writer.drain()
            return
        writer.write(
            response_bytes(
                101,
                extra_headers={
                    "Upgrade": "websocket",
                    "Connection": "Upgrade",
                    "Sec-WebSocket-Accept": wsproto.accept_key(key),
                },
            )
        )
        await writer.drain()
        session = _WsSession(self, reader, writer)
        self._sessions.add(session)
        await session.run()

    # ---------------------------------------------------------------- routing

    async def _route(self, request: HttpRequest) -> bytes:
        try:
            handler = self._resolve(request)
            if handler is None:
                raise HttpError(404, f"no route for {request.method} "
                                     f"{request.path}")
            return await handler(request)
        except HttpError as error:
            self.counters["protocol_errors"] += 1
            return error_response(error.status, str(error), keep_alive=True)
        except Exception as error:  # noqa: BLE001 - surfaced, never a crash
            return error_response(500, str(error), keep_alive=True)

    def _resolve(self, request: HttpRequest):
        method, path = request.method, request.path
        if method == "POST" and path == "/v1/submit":
            return self._handle_submit
        if method == "POST" and path == "/v1/submit-batch":
            return self._handle_submit_batch
        if method == "POST" and path == "/v1/triggers":
            return self._handle_triggers
        if method == "DELETE" and path.startswith("/v1/triggers/"):
            return self._handle_drop_trigger
        if method == "DELETE" and path.startswith("/v1/views/"):
            return self._handle_drop_view
        if method == "GET" and path == "/v1/stats":
            return self._handle_stats
        return None

    @staticmethod
    def _json_object(request: HttpRequest) -> dict:
        payload = request.json()
        if not isinstance(payload, dict):
            raise HttpError(400, "request body must be a JSON object")
        return payload

    def _parse_statement(self, record: object):
        if not isinstance(record, dict):
            raise HttpError(400, "each statement must be a JSON object")
        try:
            return statement_from_wire(record)
        except ProtocolError as error:
            raise HttpError(400, str(error))

    async def _await_tickets(self, tickets: list) -> list[list[dict]]:
        def wait() -> list[list[dict]]:
            results = []
            for ticket in tickets:
                outcome = ticket.result(timeout=_SUBMIT_TIMEOUT)
                parts = outcome if isinstance(outcome, list) else [outcome]
                results.append([result_to_wire(part) for part in parts])
            return results

        return await asyncio.to_thread(wait)

    async def _handle_submit(self, request: HttpRequest) -> bytes:
        payload = self._json_object(request)
        statement = self._parse_statement(payload.get("statement"))
        ticket = await asyncio.to_thread(self.core.submit, statement)
        self.counters["statements_submitted"] += 1
        results = await self._await_tickets([ticket])
        return json_response({"results": results[0]})

    async def _handle_submit_batch(self, request: HttpRequest) -> bytes:
        payload = self._json_object(request)
        records = payload.get("statements")
        if not isinstance(records, list) or not records:
            raise HttpError(400, "'statements' must be a non-empty list")
        statements = [self._parse_statement(record) for record in records]
        tickets = []
        for statement in statements:
            # Arrival order via worker threads; a full shard queue blocks
            # this request's thread, never the gateway loop.
            tickets.append(await asyncio.to_thread(self.core.submit, statement))
        self.counters["statements_submitted"] += len(statements)
        results = await self._await_tickets(tickets)
        return json_response({"results": results})

    async def _handle_triggers(self, request: HttpRequest) -> bytes:
        payload = self._json_object(request)
        source = payload.get("source")
        sources = payload.get("sources")
        if (source is None) == (sources is None):
            raise HttpError(400,
                            "provide exactly one of 'source' or 'sources'")
        if source is not None:
            if not isinstance(source, str):
                raise HttpError(400, "'source' must be a string")
            spec = await asyncio.to_thread(self.core.create_trigger, source)
            names = [spec.name]
        else:
            if not isinstance(sources, list) \
                    or not all(isinstance(s, str) for s in sources):
                raise HttpError(400, "'sources' must be a string list")
            specs = await asyncio.to_thread(
                self.core.register_triggers_bulk, sources
            )
            names = [spec.name for spec in specs]
        return json_response({"names": names})

    async def _handle_drop_trigger(self, request: HttpRequest) -> bytes:
        name = request.path[len("/v1/triggers/"):]
        if not name:
            raise HttpError(400, "trigger name missing from path")
        await asyncio.to_thread(self.core.drop_trigger, name)
        return json_response({"names": [name]})

    async def _handle_drop_view(self, request: HttpRequest) -> bytes:
        name = request.path[len("/v1/views/"):]
        if not name:
            raise HttpError(400, "view name missing from path")
        await asyncio.to_thread(self.core.drop_view, name)
        return json_response({"names": [name]})

    async def _handle_stats(self, request: HttpRequest) -> bytes:
        core = self.core
        reply = {
            "evaluation": {
                str(k): int(v) for k, v in core.evaluation_report().items()
            },
            "shards": [stats.as_dict() for stats in core.stats],
            "queues": core.queue_depths,
            "activations_published": core.activations_published,
            "web": self.web_report(),
        }
        if self.durable is not None:
            reply["durability"] = self.durable.durability_report()
        return json_response(reply)

    # ---------------------------------------------------------------- reporting

    @property
    def connection_count(self) -> int:
        """Currently open WebSocket sessions."""
        return len(self._sessions)

    def web_report(self) -> dict:
        """Wire-encodable counters plus per-subscription detail."""
        subscriptions = []
        for session in list(self._sessions):
            subscriber = session.subscriber
            if subscriber is None:
                continue
            subscriptions.append(
                {
                    "name": subscriber.name,
                    "buffered": subscriber.inflight,
                    "limit": subscriber.limit,
                    "paused": subscriber.paused,
                    "delivered": subscriber.delivered,
                    "refused": subscriber.refused,
                    "filtered": subscriber.filtered,
                }
            )
        hub = self.wake_hub
        return {
            **dict(self.counters),
            "ws_sessions_active": len(self._sessions),
            "shared_encode_hits": self.frame_cache.hits,
            "shared_encode_misses": self.frame_cache.misses,
            "wake_posts": hub.posts if hub is not None else 0,
            "wake_wakeups": hub.wakeups if hub is not None else 0,
            "subscriptions": subscriptions,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "running" if self._thread is not None else "stopped"
        return f"WebGateway({state}, address={self.address})"


def _valid_ws_key(key: str) -> bool:
    if not key:
        return False
    try:
        return len(base64.b64decode(key, validate=True)) == 16
    except (ValueError, TypeError):
        return False
