"""Minimal, hardened HTTP/1.1 request parsing and response writing.

The web gateway speaks just enough HTTP to route REST calls and upgrade
WebSockets — hand-rolled on :mod:`asyncio` streams because the gateway's
contract is *no new runtime dependencies* and the stdlib's ``http.server``
is a threaded synchronous stack.  The parser is deliberately strict and
bounded: header block and body sizes are capped **before** the bytes are
read, malformed request lines and headers raise :class:`HttpError` with the
right status code, and nothing here ever buffers an attacker-chosen amount
of memory.  ``tests/serving/test_web_protocol_fuzz.py`` throws torn,
oversized, and garbage requests at it and asserts every outcome is a clean
HTTP error or connection close — never a crash or hang.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qs, urlsplit

from repro.errors import ProtocolError

__all__ = [
    "HttpError",
    "HttpRequest",
    "read_request",
    "response_bytes",
    "json_response",
    "error_response",
    "DEFAULT_MAX_HEADER",
    "DEFAULT_MAX_BODY",
]

#: Cap on the request line + header block, enforced while reading.
DEFAULT_MAX_HEADER = 16 * 1024
#: Cap on a request body (``Content-Length``), enforced before reading it.
DEFAULT_MAX_BODY = 4 * 1024 * 1024

_REASONS = {
    101: "Switching Protocols",
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    426: "Upgrade Required",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
}

_METHODS = frozenset(
    {"GET", "HEAD", "POST", "PUT", "DELETE", "OPTIONS", "PATCH"}
)


class HttpError(ProtocolError):
    """A request the gateway refuses, carrying the HTTP status to send."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """One parsed request: line, lower-cased headers, raw body."""

    method: str
    target: str
    path: str
    query: dict[str, list[str]]
    headers: dict[str, str]
    body: bytes = b""
    #: Whether the connection may carry another request after this one.
    keep_alive: bool = True
    _json: object = field(default=None, repr=False)

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    def json(self) -> object:
        """The body decoded as JSON (raises :class:`HttpError` 400 if not)."""
        if self._json is None:
            if not self.body:
                raise HttpError(400, "request body must be JSON")
            try:
                self._json = json.loads(self.body.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as error:
                raise HttpError(400, f"request body is not JSON: {error}")
        return self._json


async def _read_header_block(
    reader: asyncio.StreamReader, max_header: int
) -> bytes | None:
    """Read up to the blank line; None on clean EOF before any bytes."""
    try:
        block = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # peer closed between requests: a clean goodbye
        raise HttpError(400, "connection closed mid-request")
    except asyncio.LimitOverrunError:
        raise HttpError(431, f"header block exceeds {max_header} bytes")
    if len(block) > max_header:
        raise HttpError(431, f"header block exceeds {max_header} bytes")
    return block


def _parse_request_line(line: str) -> tuple[str, str]:
    parts = line.split(" ")
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line: {line!r}")
    method, target, version = parts
    if method not in _METHODS:
        raise HttpError(501, f"unsupported method {method!r}")
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(400, f"unsupported HTTP version {version!r}")
    if not target.startswith("/"):
        raise HttpError(400, f"request target must be origin-form: {target!r}")
    return method, target


def _parse_headers(lines: list[str]) -> dict[str, str]:
    headers: dict[str, str] = {}
    for line in lines:
        name, sep, value = line.partition(":")
        if not sep or not name or name != name.strip() or "\x00" in line:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.lower()] = value.strip()
    return headers


async def read_request(
    reader: asyncio.StreamReader,
    *,
    max_header: int = DEFAULT_MAX_HEADER,
    max_body: int = DEFAULT_MAX_BODY,
) -> HttpRequest | None:
    """Parse one request from the stream; ``None`` on clean end-of-stream.

    Raises :class:`HttpError` (a :class:`~repro.errors.ProtocolError`) for
    anything malformed, with the HTTP status the gateway should answer
    before closing.  Size caps are enforced *before* the offending bytes
    are buffered: the header block via the stream's read limit, the body
    via ``Content-Length`` inspection prior to the read.
    """
    block = await _read_header_block(reader, max_header)
    if block is None:
        return None
    try:
        text = block.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 decodes all bytes
        raise HttpError(400, "undecodable header block")
    lines = text.split("\r\n")
    method, target = _parse_request_line(lines[0])
    headers = _parse_headers([line for line in lines[1:] if line])
    if "transfer-encoding" in headers:
        # Chunked bodies are a smuggling surface the gateway does not need;
        # every documented endpoint takes small JSON bodies.
        raise HttpError(501, "Transfer-Encoding is not supported")
    raw_length = headers.get("content-length", "0")
    try:
        length = int(raw_length)
    except ValueError:
        raise HttpError(400, f"malformed Content-Length: {raw_length!r}")
    if length < 0:
        raise HttpError(400, f"malformed Content-Length: {raw_length!r}")
    if length > max_body:
        raise HttpError(413, f"body of {length} bytes exceeds {max_body}")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "connection closed mid-body")
    split = urlsplit(target)
    connection = headers.get("connection", "").lower()
    keep_alive = "close" not in connection
    return HttpRequest(
        method=method,
        target=target,
        path=split.path,
        query=parse_qs(split.query),
        headers=headers,
        body=body,
        keep_alive=keep_alive,
    )


def response_bytes(
    status: int,
    body: bytes = b"",
    *,
    content_type: str = "application/json",
    extra_headers: dict[str, str] | None = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialize one HTTP/1.1 response (always with ``Content-Length``)."""
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    if body:
        lines.append(f"Content-Type: {content_type}")
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body


def json_response(
    payload: object, *, status: int = 200, keep_alive: bool = True
) -> bytes:
    """A JSON-encoded 200 (or other status) response."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return response_bytes(status, body, keep_alive=keep_alive)


def error_response(
    status: int, message: str, *, keep_alive: bool = False
) -> bytes:
    """The gateway's uniform JSON error shape."""
    return json_response(
        {"error": {"status": status, "message": message}},
        status=status,
        keep_alive=keep_alive,
    )
