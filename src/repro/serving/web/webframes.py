"""Shared one-encode-per-activation cache of WebSocket activation frames.

The web twin of :class:`repro.serving.net.frames.SharedFrameCache`: at
fan-out scale the dominant per-subscriber cost is serializing the
activation, not writing the socket.  Server→client WebSocket frames are
unmasked (RFC 6455 masks only the client direction), so one encode — JSON
message body *and* the complete TEXT frame around it — is byte-identical
for every subscriber and can be cached once per activation process-wide.

Entries are keyed by activation identity (``id``) and pin the activation
object so the key stays stable while cached; eviction is FIFO-bounded like
the TCP cache.  Thread-safe: shard workers and the gateway loop both
touch it.
"""

from __future__ import annotations

import json
import threading

from repro.persist.records import activation_to_record
from repro.serving.subscribers import Activation
from repro.serving.web.wsproto import OP_TEXT, encode_frame

__all__ = ["JsonFrameCache"]


class JsonFrameCache:
    """Encode each activation's WebSocket TEXT frame once, share it."""

    def __init__(self, capacity: int = 2048) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        # id(activation) -> (activation, complete unmasked TEXT frame bytes)
        self._frames: dict[int, tuple[Activation, bytes]] = {}
        self.hits = 0
        self.misses = 0

    def frame(self, activation: Activation) -> bytes:
        """The complete ``{"type": "activation", ...}`` TEXT frame."""
        with self._lock:
            entry = self._frames.get(id(activation))
            if entry is not None and entry[0] is activation:
                self.hits += 1
                return entry[1]
            body = json.dumps(
                {"type": "activation",
                 "payload": activation_to_record(activation)},
                separators=(",", ":"),
            ).encode("utf-8")
            frame = encode_frame(OP_TEXT, body)
            self._frames[id(activation)] = (activation, frame)
            self.misses += 1
            while len(self._frames) > self.capacity:
                self._frames.pop(next(iter(self._frames)))
            return frame
