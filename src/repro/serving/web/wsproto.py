"""RFC 6455 WebSocket framing on asyncio streams — stdlib only.

Implements exactly the subset the gateway needs, strictly: the opening
handshake accept key, frame encode (server frames unmasked — which is what
lets one pre-encoded activation frame be shared byte-identically across
every subscriber, see :mod:`repro.serving.web.webframes` — client frames
masked per the RFC), and a :class:`WsReader` that reassembles fragmented
messages while enforcing every MUST in the spec's framing section:

* masking direction (server rejects unmasked client frames and vice versa);
* reserved bits clear (no extensions are negotiated);
* control frames (close/ping/pong) never fragmented, payload <= 125 bytes,
  and allowed to interleave *between* data fragments but not to carry
  continuation state;
* continuation opcodes only inside a fragmented message, data opcodes only
  outside one;
* total message size capped before buffering (frame header lengths are
  checked against the budget **before** the payload is read).

Violations raise :class:`~repro.errors.ProtocolError`; a peer that simply
disappears surfaces as ``asyncio.IncompleteReadError``.  The fuzz suite
(``tests/serving/test_web_protocol_fuzz.py``) drives hostile frames through
both ends.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import os
import struct

from repro.errors import ProtocolError

__all__ = [
    "GUID",
    "OP_CONT",
    "OP_TEXT",
    "OP_BINARY",
    "OP_CLOSE",
    "OP_PING",
    "OP_PONG",
    "CLOSE_NORMAL",
    "CLOSE_GOING_AWAY",
    "CLOSE_PROTOCOL_ERROR",
    "CLOSE_TOO_BIG",
    "accept_key",
    "encode_frame",
    "encode_close",
    "parse_close",
    "WsReader",
    "DEFAULT_MAX_MESSAGE",
]

#: The protocol-fixed handshake GUID (RFC 6455 section 1.3).
GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

_DATA_OPCODES = frozenset({OP_TEXT, OP_BINARY})
_CONTROL_OPCODES = frozenset({OP_CLOSE, OP_PING, OP_PONG})

CLOSE_NORMAL = 1000
CLOSE_GOING_AWAY = 1001
CLOSE_PROTOCOL_ERROR = 1002
CLOSE_TOO_BIG = 1009

#: Cap on one reassembled message (all fragments), checked before buffering.
DEFAULT_MAX_MESSAGE = 4 * 1024 * 1024


def accept_key(key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a handshake key."""
    digest = hashlib.sha1((key + GUID).encode("latin-1")).digest()
    return base64.b64encode(digest).decode("ascii")


def _mask_bytes(payload: bytes, mask: bytes) -> bytes:
    # int.from_bytes XOR is the fastest stdlib-only unmask for our sizes.
    if not payload:
        return payload
    repeated = mask * (len(payload) // 4 + 1)
    return (
        int.from_bytes(payload, "big")
        ^ int.from_bytes(repeated[: len(payload)], "big")
    ).to_bytes(len(payload), "big")


def encode_frame(
    opcode: int, payload: bytes, *, fin: bool = True, mask: bool = False
) -> bytes:
    """Serialize one frame; ``mask=True`` for client→server frames."""
    if opcode in _CONTROL_OPCODES:
        if len(payload) > 125:
            raise ProtocolError("control frame payload exceeds 125 bytes")
        if not fin:
            raise ProtocolError("control frames must not be fragmented")
    head = bytearray([(0x80 if fin else 0) | opcode])
    length = len(payload)
    mask_bit = 0x80 if mask else 0
    if length < 126:
        head.append(mask_bit | length)
    elif length < 1 << 16:
        head.append(mask_bit | 126)
        head += struct.pack(">H", length)
    else:
        head.append(mask_bit | 127)
        head += struct.pack(">Q", length)
    if mask:
        key = os.urandom(4)
        return bytes(head) + key + _mask_bytes(payload, key)
    return bytes(head) + payload


def encode_close(code: int = CLOSE_NORMAL, reason: str = "",
                 *, mask: bool = False) -> bytes:
    """A close frame with a status code and short reason."""
    payload = struct.pack(">H", code) + reason.encode("utf-8")[:123]
    return encode_frame(OP_CLOSE, payload, mask=mask)


def parse_close(payload: bytes) -> tuple[int, str]:
    """Split a close frame payload into ``(code, reason)``."""
    if not payload:
        return CLOSE_NORMAL, ""
    if len(payload) == 1:
        raise ProtocolError("close frame with a 1-byte payload")
    (code,) = struct.unpack(">H", payload[:2])
    try:
        reason = payload[2:].decode("utf-8")
    except UnicodeDecodeError:
        raise ProtocolError("close frame reason is not UTF-8")
    return code, reason


class WsReader:
    """Reads frames off a stream and reassembles messages, strictly.

    ``next_message()`` returns ``(opcode, payload)`` where the opcode is a
    data opcode (fragments already reassembled) or a control opcode
    (surfaced to the caller so it can pong pings and honor closes).
    ``require_mask=True`` is the server side of the connection (clients
    must mask), ``False`` the client side (servers must not).
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        *,
        require_mask: bool,
        max_message: int = DEFAULT_MAX_MESSAGE,
    ) -> None:
        self._reader = reader
        self._require_mask = require_mask
        self._max_message = max_message
        self._fragments: list[bytes] = []
        self._fragment_opcode: int | None = None
        self._fragment_size = 0

    async def _read_frame(self) -> tuple[bool, int, bytes]:
        head = await self._reader.readexactly(2)
        fin = bool(head[0] & 0x80)
        if head[0] & 0x70:
            raise ProtocolError("reserved frame bits set without an extension")
        opcode = head[0] & 0x0F
        masked = bool(head[1] & 0x80)
        if masked != self._require_mask:
            side = "client" if self._require_mask else "server"
            raise ProtocolError(
                f"{side} frames must be "
                f"{'masked' if self._require_mask else 'unmasked'}"
            )
        length = head[1] & 0x7F
        if length == 126:
            (length,) = struct.unpack(">H", await self._reader.readexactly(2))
        elif length == 127:
            (length,) = struct.unpack(">Q", await self._reader.readexactly(8))
        if opcode in _CONTROL_OPCODES:
            if length > 125:
                raise ProtocolError("control frame payload exceeds 125 bytes")
            if not fin:
                raise ProtocolError("fragmented control frame")
        # Budget check BEFORE the payload read: an attacker-declared length
        # never makes us buffer more than the cap.
        if self._fragment_size + length > self._max_message:
            raise ProtocolError(
                f"message exceeds {self._max_message} byte cap"
            )
        mask = await self._reader.readexactly(4) if masked else b""
        payload = await self._reader.readexactly(length) if length else b""
        if masked:
            payload = _mask_bytes(payload, mask)
        return fin, opcode, payload

    async def next_message(self) -> tuple[int, bytes]:
        """The next complete data message or control frame."""
        while True:
            fin, opcode, payload = await self._read_frame()
            if opcode in _CONTROL_OPCODES:
                return opcode, payload
            if opcode == OP_CONT:
                if self._fragment_opcode is None:
                    raise ProtocolError("continuation frame outside a message")
                self._fragments.append(payload)
                self._fragment_size += len(payload)
                if not fin:
                    continue
                opcode = self._fragment_opcode
                whole = b"".join(self._fragments)
                self._fragments = []
                self._fragment_opcode = None
                self._fragment_size = 0
                return opcode, whole
            if opcode not in _DATA_OPCODES:
                raise ProtocolError(f"unknown opcode 0x{opcode:x}")
            if self._fragment_opcode is not None:
                raise ProtocolError("new data frame inside a fragmented message")
            if fin:
                return opcode, payload
            self._fragments = [payload]
            self._fragment_opcode = opcode
            self._fragment_size = len(payload)
