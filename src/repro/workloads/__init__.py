"""Synthetic experimental workloads (Section 6.1, Table 2 of the paper —
"Triggers over XML Views of Relational Data", ICDE 2005).

The evaluation schema is a hierarchy of relational tables: for depth 2 it is
the product/vendor schema of the running example; deeper hierarchies add
"ancestor" tables above the product level, each child table carrying a
foreign key to its parent.  The XML view nests children inside parents, the
monitored element is the top-level one, and the ``count(...) >= 2`` predicate
sits on the lowest (vendor-like) level.

:class:`~repro.workloads.generator.HierarchyWorkload` builds the database,
the view, the structurally similar trigger population, and the update
workload for any point of Table 2's parameter space;
:class:`~repro.workloads.harness.ExperimentHarness` runs the paper's
experiments and produces the series behind each figure.
"""

from repro.workloads.parameters import PAPER_DEFAULTS, WorkloadParameters
from repro.workloads.generator import HierarchyWorkload
from repro.workloads.harness import (
    ConcurrentRunResult,
    ExperimentHarness,
    ExperimentPoint,
    run_concurrent_clients,
)

__all__ = [
    "PAPER_DEFAULTS",
    "ConcurrentRunResult",
    "ExperimentHarness",
    "ExperimentPoint",
    "HierarchyWorkload",
    "WorkloadParameters",
    "run_concurrent_clients",
]
