"""Generator for the hierarchical experimental workload (Section 6.1).

For a given :class:`~repro.workloads.parameters.WorkloadParameters` point the
generator produces:

* the relational schema and data: a ``top`` table, ``depth - 2`` intermediate
  tables, and a ``leaf`` table, each child carrying a foreign key to its
  parent (primary keys on every table, hash indexes on the foreign keys);
* the XML view: children nested inside parents, the monitored element at the
  top, and the ``count(leaf) >= 2`` predicate on the lowest nesting level;
* a population of structurally similar XML triggers that differ only in the
  constant of their ``OLD_NODE/@name = '...'`` condition, a controllable
  number of which are satisfied by updates to the designated target element;
* an update workload: independent UPDATE statements against the leaf table,
  each touching one leaf row under the target top-level element (the paper
  averages over 100 such updates).
"""

from __future__ import annotations

import random

from repro.relational.database import Database
from repro.relational.dml import DeleteStatement, InsertStatement, UpdateStatement
from repro.relational.sharded import ShardedDatabase
from repro.relational.schema import Column, ForeignKey, TableSchema
from repro.relational.types import DataType
from repro.xqgm.expressions import ColumnRef, Comparison, Constant
from repro.xqgm.views import ViewDefinition, ViewElementSpec
from repro.workloads.parameters import WorkloadParameters

__all__ = ["HierarchyWorkload"]

# Branching factor of the intermediate hierarchy levels; the leaf level's
# per-parent fanout is derived from it so that each top-level XML element
# contains exactly ``fanout`` leaf tuples.
_MID_BRANCHING = 2


class HierarchyWorkload:
    """Builds database, view, triggers, and updates for one parameter point."""

    def __init__(self, parameters: WorkloadParameters) -> None:
        self.parameters = parameters
        self._rng = random.Random(parameters.seed)

    # ------------------------------------------------------------------ structure

    @property
    def depth(self) -> int:
        """Hierarchy depth (number of levels / tables)."""
        return self.parameters.depth

    def level_table(self, level: int) -> str:
        """Table name for a level (0 = top)."""
        return self.parameters.table_name(level)

    def level_element(self, level: int) -> str:
        """Element name for a level (0 = top)."""
        return self.parameters.element_name(level)

    def nodes_per_level(self) -> list[int]:
        """Number of rows in each level's table (index 0 = top)."""
        params = self.parameters
        counts = [params.top_elements]
        for level in range(1, self.depth - 1):
            counts.append(counts[-1] * _MID_BRANCHING)
        leaves_per_lowest_parent = max(2, params.fanout // (_MID_BRANCHING ** (self.depth - 2)))
        counts.append(counts[-1] * leaves_per_lowest_parent)
        return counts

    @property
    def leaves_per_lowest_parent(self) -> int:
        """Leaf rows under each lowest-level parent (>= 2 so the predicate passes)."""
        return max(2, self.parameters.fanout // (_MID_BRANCHING ** (self.depth - 2)))

    # ------------------------------------------------------------------ database

    def build_database(self) -> Database:
        """Create the relational schema and load the synthetic data."""
        database = Database(name=f"hier_d{self.depth}")
        self._populate(database)
        return database

    def build_sharded_database(self, shard_count: int) -> ShardedDatabase:
        """Create the same schema and data partitioned across ``shard_count`` shards.

        Placement routes every row by its **top-level ancestor**
        (:meth:`routing_key_fn`), so each top element's whole subtree — and
        therefore each monitored XML node's entire join/grouping neighborhood
        — lives on one shard.  This satisfies the view-closure contract of
        :class:`~repro.relational.sharded.ShardedDatabase`: per-shard trigger
        activations union to exactly the unsharded system's activations.
        """
        sharded = ShardedDatabase(
            shard_count, name=f"hier_d{self.depth}", key_fn=self.routing_key_fn()
        )
        self._populate(sharded)
        return sharded

    def _populate(self, database: Database | ShardedDatabase) -> None:
        """Create schema, indexes and data on a database (or sharded database)."""
        params = self.parameters
        counts = self.nodes_per_level()

        # Top level
        database.create_table(
            TableSchema(
                self.level_table(0),
                [
                    Column("id", DataType.INTEGER, nullable=False),
                    Column("name", DataType.TEXT, nullable=False),
                    Column("mfr", DataType.TEXT),
                ],
                primary_key=["id"],
            )
        )
        # Intermediate levels
        for level in range(1, self.depth - 1):
            database.create_table(
                TableSchema(
                    self.level_table(level),
                    [
                        Column("id", DataType.INTEGER, nullable=False),
                        Column("parent_id", DataType.INTEGER, nullable=False),
                        Column("name", DataType.TEXT),
                    ],
                    primary_key=["id"],
                    foreign_keys=[
                        ForeignKey(("parent_id",), self.level_table(level - 1), ("id",))
                    ],
                )
            )
        # Leaf level
        database.create_table(
            TableSchema(
                self.level_table(self.depth - 1),
                [
                    Column("id", DataType.INTEGER, nullable=False),
                    Column("parent_id", DataType.INTEGER, nullable=False),
                    Column("price", DataType.REAL, nullable=False),
                    Column("code", DataType.TEXT),
                ],
                primary_key=["id"],
                foreign_keys=[
                    ForeignKey(("parent_id",), self.level_table(self.depth - 2), ("id",))
                ],
            )
        )

        # Foreign-key hash indexes ("indices on the key columns and other join
        # columns", Section 6.1).
        for level in range(1, self.depth):
            database.create_index(self.level_table(level), ["parent_id"])

        # Data: bulk loads bypass triggers.
        database.enforce_foreign_keys = False
        try:
            database.load_rows(
                self.level_table(0),
                (
                    {"id": i, "name": self.top_name(i), "mfr": f"maker_{i % 7}"}
                    for i in range(1, counts[0] + 1)
                ),
            )
            for level in range(1, self.depth - 1):
                parent_count = counts[level - 1]
                database.load_rows(
                    self.level_table(level),
                    (
                        {
                            "id": i,
                            "parent_id": ((i - 1) % parent_count) + 1,
                            "name": f"L{level}_{i}",
                        }
                        for i in range(1, counts[level] + 1)
                    ),
                )
            parent_count = counts[self.depth - 2]
            rng = random.Random(params.seed + 1)
            database.load_rows(
                self.level_table(self.depth - 1),
                (
                    {
                        "id": i,
                        "parent_id": ((i - 1) % parent_count) + 1,
                        "price": round(10.0 + rng.random() * 490.0, 2),
                        "code": f"sku{i}",
                    }
                    for i in range(1, counts[self.depth - 1] + 1)
                ),
            )
        finally:
            database.enforce_foreign_keys = True

    def top_name(self, top_id: int) -> str:
        """The ``name`` attribute value of a top-level element."""
        return f"name_{top_id}"

    def top_ancestor(self, level: int, row_id: int) -> int:
        """Top-level ancestor id of a row at hierarchy ``level``.

        Rows are assigned to parents round-robin, so ancestry is arithmetic:
        no table lookups are needed (the serving layer routes statements with
        this, and the stream generators enumerate subtrees with it).
        """
        counts = self.nodes_per_level()
        ancestor = row_id
        while level > 0:
            ancestor = ((ancestor - 1) % counts[level - 1]) + 1
            level -= 1
        return ancestor

    def routing_key_fn(self):
        """``(table, key) -> top ancestor id`` for shard placement and routing.

        Returns a :data:`repro.relational.sharded.RoutingKeyFunction` mapping
        every hierarchy row to the id of the top element whose subtree it
        belongs to, so a :class:`~repro.relational.sharded.ShardRouter` keeps
        whole subtrees (and thus whole XML nodes) on one shard.
        """
        levels = {self.level_table(level): level for level in range(self.depth)}

        def key_fn(table: str, key: tuple | None):
            level = levels.get(table)
            if level is None or key is None:
                return table
            return self.top_ancestor(level, key[0])

        return key_fn

    @property
    def target_top_id(self) -> int:
        """The top element whose subtree the update workload touches."""
        return 1

    @property
    def target_top_name(self) -> str:
        """The monitored name constant shared by the satisfied triggers."""
        return self.top_name(self.target_top_id)

    # ------------------------------------------------------------------ view

    def build_view(self) -> ViewDefinition:
        """The nested XML view over the hierarchy (predicate on the lowest level)."""
        leaf_level = self.depth - 1
        spec = ViewElementSpec(
            name=self.level_element(leaf_level),
            table=self.level_table(leaf_level),
            alias=f"L{leaf_level}",
            content=[
                ("price", f"L{leaf_level}.price"),
                ("code", f"L{leaf_level}.code"),
            ],
            link=[("parent_id", "id")],
        )
        for level in range(self.depth - 2, -1, -1):
            alias = f"L{level}"
            having = None
            if level == self.depth - 2:
                having = Comparison(
                    ">=", ColumnRef(f"count_{self.level_element(leaf_level)}"), Constant(2)
                )
            attributes = [("name", f"{alias}.name")] if level == 0 else [
                ("name", f"{alias}.name")
            ]
            spec = ViewElementSpec(
                name=self.level_element(level),
                table=self.level_table(level),
                alias=alias,
                attributes=attributes,
                children=[spec],
                having=having,
                link=[("parent_id", "id")] if level > 0 else (),
            )
        return ViewDefinition(self.parameters.view_name, "document", spec)

    # ------------------------------------------------------------------ triggers

    def trigger_definitions(self, action: str = "collect") -> list[str]:
        """The structurally similar XML trigger population.

        The first ``effective_satisfied`` triggers monitor the target top
        element's name (and therefore fire for the update workload); the
        remaining triggers use other names.
        """
        params = self.parameters
        total = params.effective_num_triggers
        satisfied = params.effective_satisfied
        top_count = params.top_elements
        definitions: list[str] = []
        for index in range(total):
            if index < satisfied:
                constant = self.target_top_name
            else:
                # Spread the remaining constants over the other top elements
                # (or synthetic never-matching names when there are few).
                other = 2 + (index % max(1, top_count - 1))
                if other > top_count:
                    constant = f"unmatched_{index}"
                else:
                    constant = self.top_name(other)
            definitions.append(
                f"CREATE TRIGGER t{index} AFTER UPDATE "
                f"ON view('{params.view_name}')/{self.level_element(0)} "
                f"WHERE OLD_NODE/@name = '{constant}' "
                f"DO {action}(NEW_NODE)"
            )
        return definitions

    # ------------------------------------------------------------------ updates

    def leaf_ids_under_target(self, database: Database) -> list[int]:
        """Leaf rows whose top-level ancestor is the target element."""
        counts = self.nodes_per_level()
        # Reconstruct ancestry arithmetically (ids are assigned round-robin).
        leaf_table = database.table(self.level_table(self.depth - 1))
        result = []
        for row in leaf_table:
            mapping = leaf_table.schema.row_to_mapping(row)
            parent = mapping["parent_id"]
            level = self.depth - 2
            while level > 0:
                parent_count = counts[level - 1]
                parent = ((parent - 1) % parent_count) + 1
                level -= 1
            if parent == self.target_top_id:
                result.append(mapping["id"])
        return sorted(result)

    def update_statements(
        self, count: int, database: Database, *, rows_per_statement: int = 1
    ) -> list[UpdateStatement]:
        """Independent leaf-price updates under the target element."""
        leaf_ids = self.leaf_ids_under_target(database)
        if not leaf_ids:
            raise ValueError("no leaf rows under the target element")
        statements: list[UpdateStatement] = []
        table = self.level_table(self.depth - 1)
        for i in range(count):
            chosen = [
                leaf_ids[(i * rows_per_statement + j) % len(leaf_ids)]
                for j in range(rows_per_statement)
            ]
            new_price = round(5.0 + ((i * 37) % 1000) + self._rng.random(), 2)
            statements.append(
                UpdateStatement(
                    table,
                    lambda row, price=new_price: {"price": price + (row["id"] % 10) * 0.01},
                    keys=[(leaf_id,) for leaf_id in chosen],
                )
            )
        return statements

    def leaf_ids_by_top(self) -> dict[int, list[int]]:
        """Leaf ids grouped by their top-level ancestor (arithmetic, no DB scan)."""
        counts = self.nodes_per_level()
        grouped: dict[int, list[int]] = {top: [] for top in range(1, counts[0] + 1)}
        for leaf_id in range(1, counts[-1] + 1):
            grouped[self.top_ancestor(self.depth - 1, leaf_id)].append(leaf_id)
        return grouped

    def client_streams(
        self,
        clients: int,
        updates_per_client: int,
        *,
        distinct_leaves: bool = True,
    ) -> list[list[UpdateStatement]]:
        """Conflict-free per-client update streams for the serving layer.

        The top elements are dealt round-robin to the ``clients`` streams, and
        each client's statements update leaf prices under *its own* tops only
        — so two streams never touch the same row, the same monitored XML
        node, or even the same subtree, which is the "conflict-free client
        streams" premise of the concurrent-vs-sequential equivalence property.

        With ``distinct_leaves=True`` (default) a client also never updates
        the same leaf twice, so every statement causes its own distinct node
        transition and activation payloads are comparable one-to-one against
        a sequential run; ``updates_per_client`` is then capped by the number
        of leaves a client owns.  With ``distinct_leaves=False`` the client
        cycles its leaves, exercising repeated transitions of one node (the
        per-node ordering tests rely on this).
        """
        if clients < 1:
            raise ValueError("clients must be at least 1")
        by_top = self.leaf_ids_by_top()
        tops = sorted(by_top)
        owned: list[list[list[int]]] = [[] for _ in range(clients)]
        for position, top in enumerate(tops):
            owned[position % clients].append(by_top[top])
        table = self.level_table(self.depth - 1)
        streams: list[list[UpdateStatement]] = []
        for client, top_groups in enumerate(owned):
            stream: list[UpdateStatement] = []
            if not top_groups:
                streams.append(stream)
                continue
            # Interleave the client's tops so consecutive statements touch
            # different subtrees: spread streams exercise many shards instead
            # of hammering one hot subtree (tops with many satisfied
            # triggers would otherwise serialize the whole run behind one
            # shard worker).
            leaves: list[int] = []
            round_index = 0
            while any(round_index < len(group) for group in top_groups):
                for group in top_groups:
                    if round_index < len(group):
                        leaves.append(group[round_index])
                round_index += 1
            count = min(updates_per_client, len(leaves)) if distinct_leaves else updates_per_client
            for i in range(count):
                leaf_id = leaves[i % len(leaves)]
                new_price = round(5.0 + ((client * 131 + i * 37) % 1000) + 0.25, 2)
                stream.append(
                    UpdateStatement(table, {"price": new_price}, keys=[(leaf_id,)])
                )
            streams.append(stream)
        return streams

    def insert_statements(self, count: int, database: Database) -> list[InsertStatement]:
        """INSERT statements adding new leaf rows under the target element."""
        counts = self.nodes_per_level()
        next_id = len(database.table(self.level_table(self.depth - 1))) + 1
        parent_count = counts[self.depth - 2]
        statements = []
        for i in range(count):
            statements.append(
                InsertStatement(
                    self.level_table(self.depth - 1),
                    [
                        {
                            "id": next_id + i,
                            "parent_id": ((self.target_top_id - 1) % parent_count) + 1,
                            "price": 99.0 + i,
                            "code": f"new{i}",
                        }
                    ],
                )
            )
        return statements

    def delete_statements(self, count: int, database: Database) -> list[DeleteStatement]:
        """DELETE statements removing leaf rows under the target element."""
        leaf_ids = self.leaf_ids_under_target(database)
        statements = []
        for i in range(min(count, len(leaf_ids))):
            statements.append(
                DeleteStatement(self.level_table(self.depth - 1), keys=[(leaf_ids[i],)])
            )
        return statements
