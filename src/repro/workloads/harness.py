"""Experiment harness regenerating the paper's evaluation (Section 6, App. G).

Each ``figure_*`` method sweeps one Table 2 parameter exactly as the paper
does, runs a number of independent updates against the leaf table, and
reports the average time per update for each execution strategy.  Updates can
be driven either one statement at a time (the paper's measurement) or through
the set-oriented batch engine (``measure(..., batch_size=N)`` /
:meth:`ExperimentHarness.batch_throughput`), where the trigger pipeline runs
once per batch instead of once per statement.  The benchmarks under
``benchmarks/`` wrap these methods with pytest-benchmark;
``python -m repro.workloads.harness`` prints the full set of series as text
tables (the data behind EXPERIMENTS.md).
"""

from __future__ import annotations

import statistics
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core.baseline import MaterializedBaseline
from repro.core.language import parse_trigger
from repro.core.service import ActiveViewService, ExecutionMode
from repro.relational.database import Database
from repro.relational.dml import Statement
from repro.serving.server import ActiveViewServer
from repro.workloads.generator import HierarchyWorkload
from repro.workloads.parameters import WorkloadParameters

__all__ = [
    "ExperimentPoint",
    "ExperimentSetup",
    "ExperimentHarness",
    "ConcurrentRunResult",
    "run_concurrent_clients",
]


@dataclass
class ExperimentPoint:
    """One measured point of one figure."""

    figure: str
    parameter: str
    value: object
    mode: str
    avg_ms: float
    updates: int
    fired_per_update: float
    #: Evaluation counters captured for this point (``index_probes`` /
    #: ``hash_joins`` / ``cache_hits`` / ``result_cache_*``), populated when
    #: the setup was built with ``collect_eval_stats=True``.
    stats: dict = field(default_factory=dict)

    def as_row(self) -> dict:
        """The point as a flat dictionary (for printing / CSV)."""
        row = {
            "figure": self.figure,
            self.parameter: self.value,
            "mode": self.mode,
            "avg_ms_per_update": round(self.avg_ms, 3),
            "fired_per_update": round(self.fired_per_update, 2),
        }
        for counter in ("index_probes", "hash_joins", "cache_hits"):
            if counter in self.stats:
                row[counter] = self.stats[counter]
        return row


@dataclass
class ExperimentSetup:
    """A fully wired system for one parameter point and one execution mode."""

    parameters: WorkloadParameters
    workload: HierarchyWorkload
    database: Database
    service: ActiveViewService | None
    baseline: MaterializedBaseline | None
    collected: list
    statements: list[Statement] = field(default_factory=list)
    #: Attached write-ahead log when the harness was built with durability on
    #: (``build_setup(..., durable_dir=...)``); ``None`` otherwise.
    wal: object | None = None

    def run_statement(self, statement: Statement) -> None:
        """Execute one workload statement through whichever system is wired."""
        if self.service is not None:
            self.service.execute(statement)
        elif self.baseline is not None:
            self.baseline.execute(statement)
        else:  # pragma: no cover - defensive
            self.database.execute(statement)

    def run_batch(self, statements: Sequence[Statement]) -> None:
        """Execute a group of workload statements as one set-oriented batch.

        The translated systems go through
        :meth:`~repro.core.service.ActiveViewService.execute_batch` (triggers
        fire once per (table, event) over the coalesced deltas); the
        MATERIALIZED baseline has no batch path — it re-materializes per
        statement regardless — so it simply loops.
        """
        if self.service is not None:
            self.service.execute_batch(statements)
        elif self.baseline is not None:
            for statement in statements:
                self.baseline.execute(statement)
        else:  # pragma: no cover - defensive
            self.database.execute_many(statements)

    @property
    def fired_count(self) -> int:
        """Total number of XML trigger firings recorded so far."""
        if self.service is not None:
            return len(self.service.fired)
        if self.baseline is not None:
            return len(self.baseline.fired)
        return 0

    def evaluation_report(self) -> dict:
        """Evaluation counters + result-cache stats of the wired service.

        Empty for the MATERIALIZED baseline (it has no generated plans).
        The ``index_probes`` / ``hash_joins`` / ``cache_hits`` counters
        accumulate only when the setup was built with
        ``collect_eval_stats=True``.
        """
        if self.service is not None:
            return self.service.evaluation_report()
        return {}


@dataclass
class ConcurrentRunResult:
    """Outcome of driving one server with concurrent closed-loop clients."""

    shards: int
    clients: int
    statements: int
    seconds: float
    activations: int
    errors: list[BaseException] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Aggregate statements per second across all clients."""
        return self.statements / self.seconds if self.seconds else 0.0


def run_concurrent_clients(
    server: ActiveViewServer,
    streams: Sequence[Sequence[Statement]],
    *,
    timeout: float = 120.0,
) -> ConcurrentRunResult:
    """Drive a started server with one closed-loop client thread per stream.

    Every client submits its statements in order, waiting for each result
    before sending the next (the classic request/response client).  The
    clients start together behind a barrier; the measured wall time spans
    from the barrier release until the last client finishes, so
    ``result.throughput`` is the server's *aggregate* serving rate under
    concurrent load — queue waiting, micro-batching, trigger processing and
    action latency included.
    """
    activations_before = server.activations_published
    errors: list[BaseException] = []
    errors_lock = threading.Lock()
    barrier = threading.Barrier(len(streams) + 1)

    def client(stream: Sequence[Statement]) -> None:
        barrier.wait()
        for statement in stream:
            try:
                server.execute(statement, timeout=timeout)
            except BaseException as exc:  # noqa: BLE001 - recorded for the caller
                with errors_lock:
                    errors.append(exc)
                return

    threads = [
        threading.Thread(target=client, args=(stream,), name=f"client-{index}", daemon=True)
        for index, stream in enumerate(streams)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    return ConcurrentRunResult(
        shards=server.shard_count,
        clients=len(streams),
        statements=sum(len(stream) for stream in streams),
        seconds=elapsed,
        activations=server.activations_published - activations_before,
        errors=errors,
    )


class ExperimentHarness:
    """Builds experiment setups and runs the per-figure sweeps."""

    MATERIALIZED = "materialized"

    def __init__(
        self,
        base_parameters: WorkloadParameters | None = None,
        updates: int = 20,
        *,
        collect_eval_stats: bool = False,
    ) -> None:
        self.base_parameters = base_parameters or WorkloadParameters()
        self.updates = updates
        # When enabled, sweep setups collect the evaluation counters
        # (index_probes / hash_joins / cache_hits) into each point's
        # ``stats``.  Off by default so timed figure sweeps measure the
        # bare hot path, exactly like the pre-existing baselines.
        self.collect_eval_stats = collect_eval_stats

    # ------------------------------------------------------------------ setup

    def build_setup(
        self,
        parameters: WorkloadParameters,
        mode: ExecutionMode | str,
        *,
        action: str = "collect",
        durable_dir: str | None = None,
        durability_sync: str = "flush",
        use_compiled_plans: bool = True,
        use_columnar: bool = False,
        collect_eval_stats: bool = False,
        backend: str | None = None,
        use_matching_indexes: bool = True,
    ) -> ExperimentSetup:
        """Create the database, view, triggers and chosen execution system.

        With ``durable_dir`` set, durability is switched **on**: the freshly
        populated database is captured as an initial snapshot in that
        directory and a :class:`~repro.persist.WriteAheadLog` is attached, so
        every measured update is also logged (``durability_sync`` picks the
        append policy).  The same workload therefore runs bit-identically
        with durability on or off — the toggle the WAL-overhead benchmark
        flips (``benchmarks/bench_wal_overhead.py``).

        ``use_compiled_plans`` toggles the compiled physical engine (on by
        default; off runs the interpreted oracle — the comparison the
        evaluation-hot-path benchmark draws), ``use_columnar`` switches
        trigger firing to the batch-oriented columnar engine
        (:mod:`repro.xqgm.columnar`; the row engines stay as fallbacks), and
        ``collect_eval_stats`` enables the evaluation counters surfaced by
        :meth:`ExperimentSetup.evaluation_report`.

        ``backend`` selects an execution backend by name (e.g. ``"sqlite"``)
        and wires it through :class:`ActiveViewService`; the generated
        trigger statements then run inside that engine against a mirrored
        copy of the workload's tables (``benchmarks/bench_backend_sqlite.py``
        compares all three engines this way).

        ``use_matching_indexes`` toggles the sublinear matching engine
        (:mod:`repro.matching`; off runs the linear constants-row oracle —
        the comparison ``benchmarks/bench_matching_scale.py`` draws).
        """
        workload = HierarchyWorkload(parameters)
        database = workload.build_database()
        view = workload.build_view()
        collected: list = []
        wal = None
        if durable_dir is not None:
            import pathlib

            from repro.persist import Snapshot, WriteAheadLog
            from repro.persist.recovery import SNAPSHOT_FILE, WAL_FILE

            path = pathlib.Path(durable_dir)
            path.mkdir(parents=True, exist_ok=True)
            wal = WriteAheadLog(path / WAL_FILE, sync=durability_sync)
            # This is a *fresh* setup: discard any records a previous run left
            # in the directory — a stale WAL tail would corrupt recovery of
            # the new snapshot (LSNs restart at 1 here).
            wal.truncate()
            Snapshot.capture(database, wal_lsn=0).write(path / SNAPSHOT_FILE)
            wal.attach(database)

        if isinstance(mode, str) and mode == self.MATERIALIZED:
            baseline = MaterializedBaseline(database)
            baseline.register_view(view)
            baseline.register_action(action, lambda node: collected.append(node))
            for definition in workload.trigger_definitions(action):
                baseline.create_trigger(parse_trigger(definition))
            return ExperimentSetup(parameters, workload, database, None, baseline,
                                   collected, wal=wal)

        mode = ExecutionMode(mode) if isinstance(mode, str) else mode
        service = ActiveViewService(
            database,
            mode=mode,
            use_compiled_plans=use_compiled_plans,
            use_columnar=use_columnar,
            collect_eval_stats=collect_eval_stats,
            backend=backend,
            use_matching_indexes=use_matching_indexes,
        )
        service.register_view(view)
        service.register_action(action, lambda node: collected.append(node))
        service.register_triggers_bulk(workload.trigger_definitions(action))
        return ExperimentSetup(parameters, workload, database, service, None,
                               collected, wal=wal)

    # ------------------------------------------------------------------ measurement

    def measure(
        self,
        setup: ExperimentSetup,
        statements: Sequence[Statement] | None = None,
        *,
        batch_size: int | None = None,
    ) -> tuple[float, float]:
        """Run the update workload; returns (avg seconds per update, fired/update).

        With ``batch_size`` set (> 1), statements are executed in chunks of
        that size through the set-oriented batch path; the reported average is
        still per *statement*, so per-statement and batched runs are directly
        comparable.
        """
        if statements is None:
            statements = setup.workload.update_statements(self.updates, setup.database)
        setup.statements = list(statements)
        fired_before = setup.fired_count
        durations: list[float] = []
        if batch_size is None or batch_size <= 1:
            for statement in setup.statements:
                started = time.perf_counter()
                setup.run_statement(statement)
                durations.append(time.perf_counter() - started)
            total_statements = len(setup.statements)
        else:
            total_statements = 0
            for start in range(0, len(setup.statements), batch_size):
                chunk = setup.statements[start:start + batch_size]
                started = time.perf_counter()
                setup.run_batch(chunk)
                elapsed = time.perf_counter() - started
                durations.extend([elapsed / len(chunk)] * len(chunk))
                total_statements += len(chunk)
        fired = setup.fired_count - fired_before
        avg = statistics.fmean(durations) if durations else 0.0
        return avg, fired / max(1, total_statements or len(setup.statements))

    def _sweep(
        self,
        figure: str,
        parameter: str,
        values: Iterable[object],
        modes: Sequence[ExecutionMode | str],
        make_parameters: Callable[[object], WorkloadParameters],
    ) -> list[ExperimentPoint]:
        points: list[ExperimentPoint] = []
        for value in values:
            parameters = make_parameters(value)
            for mode in modes:
                setup = self.build_setup(
                    parameters, mode, collect_eval_stats=self.collect_eval_stats
                )
                avg_seconds, fired = self.measure(setup)
                points.append(
                    ExperimentPoint(
                        figure=figure,
                        parameter=parameter,
                        value=value,
                        mode=str(mode) if isinstance(mode, str) else mode.value,
                        avg_ms=avg_seconds * 1000.0,
                        updates=len(setup.statements),
                        fired_per_update=fired,
                        stats=setup.evaluation_report(),
                    )
                )
        return points

    # ------------------------------------------------------------------ figures

    def figure17_num_triggers(
        self,
        trigger_counts: Sequence[int] = (1, 10, 100, 1000),
        modes: Sequence[ExecutionMode] = (
            ExecutionMode.UNGROUPED,
            ExecutionMode.GROUPED,
            ExecutionMode.GROUPED_AGG,
        ),
    ) -> list[ExperimentPoint]:
        """Figure 17: vary the number of (structurally similar) triggers."""
        def make(n: object) -> WorkloadParameters:
            n = int(n)
            base = self.base_parameters
            return base.with_(
                num_triggers=n,
                satisfied_triggers=min(base.satisfied_triggers, n),
            )

        return self._sweep("figure17", "num_triggers", trigger_counts, modes, make)

    def figure18_depth(
        self,
        depths: Sequence[int] = (2, 3, 4, 5),
        modes: Sequence[ExecutionMode] = (ExecutionMode.GROUPED, ExecutionMode.GROUPED_AGG),
    ) -> list[ExperimentPoint]:
        """Figure 18: vary the hierarchy depth."""
        return self._sweep(
            "figure18", "depth", depths, modes,
            lambda d: self.base_parameters.with_(depth=int(d)),
        )

    def figure22_fanout(
        self,
        fanouts: Sequence[int] = (16, 32, 64, 128, 256),
        modes: Sequence[ExecutionMode] = (ExecutionMode.GROUPED, ExecutionMode.GROUPED_AGG),
    ) -> list[ExperimentPoint]:
        """Figure 22: vary the number of leaf tuples per XML element."""
        return self._sweep(
            "figure22", "fanout", fanouts, modes,
            lambda f: self.base_parameters.with_(fanout=int(f)),
        )

    def figure23_data_size(
        self,
        leaf_tuples: Sequence[int] = (32_000, 64_000, 128_000, 256_000),
        modes: Sequence[ExecutionMode] = (ExecutionMode.GROUPED, ExecutionMode.GROUPED_AGG),
    ) -> list[ExperimentPoint]:
        """Figure 23: vary the database size (number of leaf tuples)."""
        return self._sweep(
            "figure23", "leaf_tuples", leaf_tuples, modes,
            lambda n: self.base_parameters.with_(leaf_tuples=int(n)),
        )

    def figure24_satisfied(
        self,
        satisfied: Sequence[int] = (1, 20, 40, 80, 100),
        modes: Sequence[ExecutionMode] = (ExecutionMode.GROUPED, ExecutionMode.GROUPED_AGG),
    ) -> list[ExperimentPoint]:
        """Figure 24: vary the number of satisfied triggers per update."""
        def make(n: object) -> WorkloadParameters:
            n = int(n)
            base = self.base_parameters
            return base.with_(
                satisfied_triggers=n,
                num_triggers=max(base.num_triggers, n),
            )

        return self._sweep("figure24", "satisfied_triggers", satisfied, modes, make)

    def ablation_materialized(
        self,
        trigger_counts: Sequence[int] = (1, 10, 100),
    ) -> list[ExperimentPoint]:
        """Extra ablation: translated triggers vs. the MATERIALIZED baseline."""
        return self._sweep(
            "ablation_materialized", "num_triggers", trigger_counts,
            (ExecutionMode.GROUPED_AGG, self.MATERIALIZED),
            lambda n: self.base_parameters.with_(num_triggers=int(n)),
        )

    def batch_throughput(
        self,
        batch_sizes: Sequence[int] = (1, 5, 20),
        modes: Sequence[ExecutionMode] = (ExecutionMode.GROUPED_AGG,),
    ) -> list[ExperimentPoint]:
        """Set-oriented batching ablation on the Figure 17 default workload.

        ``batch_size=1`` is the paper's per-statement execution; larger sizes
        run the same independent updates through ``execute_batch`` so each
        statement trigger fires once per batch with the coalesced deltas.
        Reported times stay per *statement* for direct comparison.
        """
        points: list[ExperimentPoint] = []
        for mode in modes:
            for size in batch_sizes:
                setup = self.build_setup(self.base_parameters, mode)
                avg_seconds, fired = self.measure(setup, batch_size=int(size))
                points.append(
                    ExperimentPoint(
                        figure="batch_throughput",
                        parameter="batch_size",
                        value=int(size),
                        mode=mode.value if isinstance(mode, ExecutionMode) else str(mode),
                        avg_ms=avg_seconds * 1000.0,
                        updates=len(setup.statements),
                        fired_per_update=fired,
                    )
                )
        return points

    def build_server(
        self,
        parameters: WorkloadParameters,
        shard_count: int,
        mode: ExecutionMode = ExecutionMode.GROUPED_AGG,
        *,
        action: str = "collect",
        action_latency: float = 0.0,
        max_batch: int = 32,
    ) -> tuple[ActiveViewServer, HierarchyWorkload]:
        """Wire a sharded :class:`~repro.serving.ActiveViewServer` for one point.

        The data is partitioned by top-element subtree
        (:meth:`HierarchyWorkload.build_sharded_database`) and the full
        trigger population is installed on every shard through the server.
        ``action_latency`` adds a synchronous ``time.sleep`` to the action
        function, modelling the downstream cost of *delivering* a
        notification (the paper's trigger actions notify external users);
        shard workers overlap that latency, which is where shard scaling
        comes from on I/O-bound actions.
        """
        workload = HierarchyWorkload(parameters)
        sharded = workload.build_sharded_database(shard_count)
        server = ActiveViewServer(sharded, mode=mode, max_batch=max_batch)
        server.register_view(workload.build_view())
        collected: list = []
        if action_latency > 0:
            def act(node, _latency=action_latency):
                time.sleep(_latency)
                collected.append(node)
        else:
            act = collected.append
        server.register_action(action, act)
        for definition in workload.trigger_definitions(action):
            server.create_trigger(definition)
        return server, workload

    def concurrent_throughput(
        self,
        shard_counts: Sequence[int] = (1, 2, 4, 8),
        clients: int = 8,
        updates_per_client: int = 32,
        mode: ExecutionMode = ExecutionMode.GROUPED_AGG,
        *,
        action_latency: float = 0.0,
        max_batch: int = 32,
    ) -> list[ExperimentPoint]:
        """Aggregate serving throughput vs. shard count (spread Figure 17 load).

        For each shard count the same conflict-free client streams (leaf
        updates spread over every top element) are replayed by concurrent
        closed-loop clients against a freshly built server; the reported
        ``avg_ms`` is wall time per statement, so throughput comparisons read
        directly off the points.
        """
        points: list[ExperimentPoint] = []
        for shard_count in shard_counts:
            server, workload = self.build_server(
                self.base_parameters, int(shard_count), mode,
                action_latency=action_latency, max_batch=max_batch,
            )
            streams = workload.client_streams(clients, updates_per_client)
            with server:
                result = run_concurrent_clients(server, streams)
            if result.errors:  # pragma: no cover - surfaced for debugging
                raise result.errors[0]
            points.append(
                ExperimentPoint(
                    figure="concurrent_throughput",
                    parameter="shards",
                    value=int(shard_count),
                    mode=mode.value,
                    avg_ms=result.seconds / max(1, result.statements) * 1000.0,
                    updates=result.statements,
                    fired_per_update=result.activations / max(1, result.statements),
                )
            )
        return points

    def compile_time(self, trigger_count: int = 50) -> dict:
        """Section 6 compile-time claim: time to translate one XML trigger."""
        parameters = self.base_parameters.with_(num_triggers=1, satisfied_triggers=1)
        workload = HierarchyWorkload(parameters)
        database = workload.build_database()
        view = workload.build_view()
        service = ActiveViewService(database, mode=ExecutionMode.GROUPED_AGG)
        service.register_view(view)
        service.register_action("collect", lambda node: None)
        definitions = HierarchyWorkload(
            parameters.with_(num_triggers=trigger_count)
        ).trigger_definitions()
        durations = []
        for definition in definitions[:trigger_count]:
            started = time.perf_counter()
            service.create_trigger(definition)
            durations.append(time.perf_counter() - started)
        return {
            "triggers_compiled": len(durations),
            "avg_compile_ms": statistics.fmean(durations) * 1000.0,
            "max_compile_ms": max(durations) * 1000.0,
            "first_compile_ms": durations[0] * 1000.0,
        }


def _print_points(points: Sequence[ExperimentPoint]) -> None:
    for point in points:
        row = point.as_row()
        print("  " + "  ".join(f"{key}={value}" for key, value in row.items()))


def main() -> None:  # pragma: no cover - CLI convenience
    """Run a scaled-down version of every experiment and print the series."""
    parameters = WorkloadParameters(leaf_tuples=8_000, fanout=32, num_triggers=200,
                                    satisfied_triggers=10, scale=1.0)
    # The CLI report is observational, so it surfaces the evaluation
    # counters alongside the timings (benchmarks keep them off).
    harness = ExperimentHarness(parameters, updates=10, collect_eval_stats=True)
    print("Figure 17 (number of triggers):")
    _print_points(harness.figure17_num_triggers((1, 10, 100, 1000)))
    print("Figure 18 (hierarchy depth):")
    _print_points(harness.figure18_depth((2, 3, 4)))
    print("Figure 22 (fanout):")
    _print_points(harness.figure22_fanout((16, 32, 64)))
    print("Figure 23 (data size):")
    _print_points(harness.figure23_data_size((4_000, 8_000, 16_000)))
    print("Figure 24 (satisfied triggers):")
    _print_points(harness.figure24_satisfied((1, 10, 20)))
    print("Batch throughput (set-oriented execute_batch vs per-statement):")
    _print_points(harness.batch_throughput((1, 5, 10)))
    print("Concurrent serving throughput (shards, 2 ms simulated delivery):")
    _print_points(harness.concurrent_throughput((1, 2, 4), clients=4,
                                                updates_per_client=8,
                                                action_latency=0.002))
    print("Compile time:")
    print(" ", harness.compile_time(20))


if __name__ == "__main__":  # pragma: no cover
    main()
