"""Experimental parameters (Table 2 of the paper).

=============================  ==========================================
Parameter                      Values (paper default in bold)
=============================  ==========================================
Hierarchy depth                2, 3, 4, 5                      (**2**)
Number of leaf tuples          32k … 1024k                     (**128k**)
Leaf tuples per XML element    16, 32, 64, 128, 256            (**64**)
Number of triggers             1 … 100,000                     (**10,000**)
Number of satisfied triggers   1, 20, 40, 80, 100              (**20**)
=============================  ==========================================

Because this reproduction runs inside a pure-Python engine rather than DB2 on
a 933 MHz Pentium III, the harness applies a configurable ``scale`` factor to
the data sizes and trigger counts so the full figure sweeps finish in
minutes; the *relative* comparisons the paper reports (grouped vs ungrouped,
scaling trends) are unaffected.  Pass ``scale=1.0`` to run the paper-sized
workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import WorkloadError

__all__ = ["WorkloadParameters", "PAPER_DEFAULTS"]


@dataclass(frozen=True)
class WorkloadParameters:
    """One point in Table 2's parameter space."""

    depth: int = 2
    leaf_tuples: int = 128_000
    fanout: int = 64  # leaf tuples per top-level XML element
    num_triggers: int = 10_000
    satisfied_triggers: int = 20
    seed: int = 42
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.depth < 2:
            raise WorkloadError("hierarchy depth must be at least 2")
        if self.fanout < 1:
            raise WorkloadError("fanout must be at least 1")
        if self.leaf_tuples < self.fanout:
            raise WorkloadError("leaf_tuples must be at least the fanout")
        if self.satisfied_triggers > max(1, self.num_triggers):
            raise WorkloadError("satisfied_triggers cannot exceed num_triggers")
        if not (0 < self.scale <= 1.0):
            raise WorkloadError("scale must be in (0, 1]")

    # -- effective (scaled) sizes -------------------------------------------------

    @property
    def effective_leaf_tuples(self) -> int:
        """Leaf-table cardinality after applying the scale factor."""
        return max(self.fanout, int(self.leaf_tuples * self.scale))

    @property
    def effective_num_triggers(self) -> int:
        """Trigger-population size after applying the scale factor."""
        return max(1, int(self.num_triggers * self.scale))

    @property
    def effective_satisfied(self) -> int:
        """Satisfied-trigger count (never scaled above the trigger population)."""
        return min(self.satisfied_triggers, self.effective_num_triggers)

    @property
    def top_elements(self) -> int:
        """Number of top-level XML elements produced by the view."""
        return max(1, self.effective_leaf_tuples // self.fanout)

    def with_(self, **overrides) -> "WorkloadParameters":
        """A copy with some parameters replaced."""
        return replace(self, **overrides)

    # -- naming -----------------------------------------------------------------

    def table_name(self, level: int) -> str:
        """Relational table name for hierarchy level ``level`` (0 = top)."""
        if level == self.depth - 1:
            return "leaf"
        if level == 0:
            return "top"
        return f"mid{level}"

    def element_name(self, level: int) -> str:
        """XML element name for hierarchy level ``level`` (0 = top)."""
        if level == self.depth - 1:
            return "leafelem"
        if level == 0:
            return "topelem"
        return f"midelem{level}"

    @property
    def view_name(self) -> str:
        """Name of the generated view."""
        return "hierarchy"


#: The bold column of Table 2.
PAPER_DEFAULTS = WorkloadParameters()
