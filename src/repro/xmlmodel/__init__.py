"""Lightweight XML data model, serializer, parser, and XPath subset.

XML views of relational data are *virtual* in this system (the whole point of
the paper is to avoid materializing them), but XML values still flow through
the pipeline in three places:

* XQGM ``Project`` / ``GroupBy`` operators construct XML elements and
  fragments (Section 2.1, the ``aggXMLFrag`` function);
* the constant-space tagger converts sorted outer-union rows into XML nodes
  that become ``OLD_NODE`` / ``NEW_NODE`` (Section 3.2);
* trigger Conditions and Action parameters are XPath/XQuery expressions over
  those nodes (Section 2.2).

This package supplies the XML node classes, a serializer, a small
well-formedness-checking parser, and the XPath-subset evaluator used for
conditions and action parameters (child / descendant / attribute / self axes
only, matching Appendix D).
"""

from repro.xmlmodel.node import (
    Attribute,
    Document,
    Element,
    Fragment,
    Text,
    XmlNode,
    element,
    fragment,
    text,
)
from repro.xmlmodel.serialize import serialize
from repro.xmlmodel.parse import parse_xml
from repro.xmlmodel.xpath import XPath, evaluate_xpath, parse_xpath

__all__ = [
    "Attribute",
    "Document",
    "Element",
    "Fragment",
    "Text",
    "XmlNode",
    "XPath",
    "element",
    "evaluate_xpath",
    "fragment",
    "parse_xml",
    "parse_xpath",
    "serialize",
    "text",
]
