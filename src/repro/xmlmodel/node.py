"""XML node classes used throughout the system.

The model is deliberately small: elements (with ordered attributes and
children), text nodes, and fragments (ordered sequences of nodes, the result
of the paper's ``aggXMLFrag`` aggregate).  Nodes compare by *value*
(deep equality), which is exactly the notion the paper needs when deciding
whether ``OLD_NODE ≠ NEW_NODE`` (Definition 2 and Appendix E.1: "implemented
as a string comparison in the tagger").
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.errors import XmlError

__all__ = [
    "XmlNode",
    "Element",
    "Text",
    "Fragment",
    "Attribute",
    "Document",
    "element",
    "text",
    "fragment",
    "as_node",
]


def _format_atomic(value: Any) -> str:
    """Render an atomic Python value as XML text content."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if value.is_integer():
            return f"{value:.1f}"
        return repr(value)
    return str(value)


class XmlNode:
    """Abstract base class for all XML nodes."""

    def string_value(self) -> str:
        """The concatenated text content of this node (XPath string-value)."""
        raise NotImplementedError

    def copy(self) -> "XmlNode":
        """Deep copy of this node."""
        raise NotImplementedError

    def iter_descendants(self) -> Iterator["XmlNode"]:
        """Yield this node and all descendants in document order."""
        yield self


class Attribute:
    """A name/value attribute pair attached to an element."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: Any) -> None:
        if not name:
            raise XmlError("attribute name must be non-empty")
        self.name = name
        self.value = _format_atomic(value)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Attribute):
            return NotImplemented
        return self.name == other.name and self.value == other.value

    def __hash__(self) -> int:
        return hash((self.name, self.value))

    def __str__(self) -> str:
        # Attribute values flow into trigger action arguments (e.g.
        # ``DO notify(NEW_NODE/@name)``); the natural string form is the value.
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Attribute({self.name}={self.value!r})"


class Text(XmlNode):
    """A text node."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = _format_atomic(value)

    def string_value(self) -> str:
        return self.value

    def copy(self) -> "Text":
        return Text(self.value)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Text):
            return NotImplemented
        return self.value == other.value

    def __hash__(self) -> int:
        return hash(("text", self.value))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Text({self.value!r})"


class Element(XmlNode):
    """An XML element with ordered attributes and children."""

    __slots__ = ("name", "attributes", "children")

    def __init__(
        self,
        name: str,
        attributes: dict[str, Any] | Sequence[Attribute] | None = None,
        children: Iterable[Any] = (),
    ) -> None:
        if not name:
            raise XmlError("element name must be non-empty")
        self.name = name
        if attributes is None:
            self.attributes: list[Attribute] = []
        elif isinstance(attributes, dict):
            self.attributes = [Attribute(k, v) for k, v in attributes.items()]
        else:
            self.attributes = list(attributes)
        self.children: list[XmlNode] = []
        for child in children:
            self.append(child)

    # -- construction ----------------------------------------------------------

    def append(self, child: Any) -> None:
        """Append a child; fragments are spliced, atomics become text nodes."""
        node = as_node(child)
        if node is None:
            return
        if isinstance(node, Fragment):
            for item in node.items:
                self.append(item)
        else:
            self.children.append(node)

    def set_attribute(self, name: str, value: Any) -> None:
        """Set (or replace) an attribute."""
        for i, attribute in enumerate(self.attributes):
            if attribute.name == name:
                self.attributes[i] = Attribute(name, value)
                return
        self.attributes.append(Attribute(name, value))

    # -- access ------------------------------------------------------------------

    def attribute(self, name: str) -> str | None:
        """Return the value of an attribute, or ``None``."""
        for attribute in self.attributes:
            if attribute.name == name:
                return attribute.value
        return None

    def child_elements(self, name: str | None = None) -> list["Element"]:
        """Child elements, optionally filtered by tag name (``None`` = all)."""
        return [
            child
            for child in self.children
            if isinstance(child, Element) and (name is None or child.name == name)
        ]

    def string_value(self) -> str:
        return "".join(child.string_value() for child in self.children)

    def iter_descendants(self) -> Iterator[XmlNode]:
        yield self
        for child in self.children:
            yield from child.iter_descendants()

    def copy(self) -> "Element":
        clone = Element(self.name)
        clone.attributes = [Attribute(a.name, a.value) for a in self.attributes]
        clone.children = [child.copy() for child in self.children]
        return clone

    # -- value equality -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Element):
            return NotImplemented
        return (
            self.name == other.name
            and self.attributes == other.attributes
            and self.children == other.children
        )

    def __hash__(self) -> int:
        return hash((self.name, tuple(self.attributes), tuple(self.children)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Element(<{self.name}> {len(self.children)} children)"


class Fragment(XmlNode):
    """An ordered sequence of nodes (the result of ``aggXMLFrag``)."""

    __slots__ = ("items",)

    def __init__(self, items: Iterable[Any] = ()) -> None:
        self.items: list[XmlNode] = []
        for item in items:
            node = as_node(item)
            if node is None:
                continue
            if isinstance(node, Fragment):
                self.items.extend(node.items)
            else:
                self.items.append(node)

    def string_value(self) -> str:
        return "".join(item.string_value() for item in self.items)

    def iter_descendants(self) -> Iterator[XmlNode]:
        for item in self.items:
            yield from item.iter_descendants()

    def copy(self) -> "Fragment":
        return Fragment([item.copy() for item in self.items])

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[XmlNode]:
        return iter(self.items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Fragment):
            return NotImplemented
        return self.items == other.items

    def __hash__(self) -> int:
        return hash(tuple(self.items))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Fragment({len(self.items)} items)"


class Document(XmlNode):
    """A document node wrapping a single root element."""

    __slots__ = ("root",)

    def __init__(self, root: Element) -> None:
        if not isinstance(root, Element):
            raise XmlError("document root must be an Element")
        self.root = root

    def string_value(self) -> str:
        return self.root.string_value()

    def iter_descendants(self) -> Iterator[XmlNode]:
        yield self
        yield from self.root.iter_descendants()

    def copy(self) -> "Document":
        return Document(self.root.copy())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Document):
            return NotImplemented
        return self.root == other.root

    def __hash__(self) -> int:
        return hash(("document", self.root))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Document({self.root!r})"


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------


def as_node(value: Any) -> XmlNode | None:
    """Convert an arbitrary value into an XML node (``None`` stays ``None``)."""
    if value is None:
        return None
    if isinstance(value, XmlNode):
        return value
    if isinstance(value, Attribute):
        raise XmlError("attributes cannot appear as children")
    return Text(value)


def element(name: str, attributes: dict[str, Any] | None = None, *children: Any) -> Element:
    """Shorthand constructor: ``element('product', {'name': 'CRT 15'}, child, ...)``."""
    return Element(name, attributes, children)


def text(value: Any) -> Text:
    """Shorthand text-node constructor."""
    return Text(value)


def fragment(*items: Any) -> Fragment:
    """Shorthand fragment constructor."""
    return Fragment(items)
