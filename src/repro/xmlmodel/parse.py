"""A small, dependency-free XML parser.

The system itself never parses XML documents from the wild (views are
virtual, nodes are constructed by the tagger), but tests, examples, and the
serializer round-trip property tests need to read XML text back into the node
model.  The parser supports the subset the serializer emits: elements,
attributes (double- or single-quoted), character data, entity references for
``& < > " '``, comments, and XML declarations/processing instructions (which
are skipped).  CDATA sections are also accepted.
"""

from __future__ import annotations

from repro.errors import XmlParseError
from repro.xmlmodel.node import Element, Fragment, Text, XmlNode

__all__ = ["parse_xml"]

_ENTITIES = {"amp": "&", "lt": "<", "gt": ">", "quot": '"', "apos": "'"}

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_CHARS = _NAME_START | set("0123456789.-")


class _Parser:
    """Recursive-descent parser over an XML string."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.length = len(source)

    # -- low-level helpers ------------------------------------------------------

    def _error(self, message: str) -> XmlParseError:
        line = self.source.count("\n", 0, self.pos) + 1
        return XmlParseError(f"{message} (offset {self.pos}, line {line})")

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < self.length else ""

    def _startswith(self, token: str) -> bool:
        return self.source.startswith(token, self.pos)

    def _expect(self, token: str) -> None:
        if not self._startswith(token):
            raise self._error(f"expected {token!r}")
        self.pos += len(token)

    def _skip_whitespace(self) -> None:
        while self.pos < self.length and self.source[self.pos] in " \t\r\n":
            self.pos += 1

    def _read_name(self) -> str:
        start = self.pos
        if self._peek() not in _NAME_START:
            raise self._error("expected a name")
        self.pos += 1
        while self._peek() in _NAME_CHARS:
            self.pos += 1
        return self.source[start : self.pos]

    def _decode_entities(self, value: str) -> str:
        if "&" not in value:
            return value
        out: list[str] = []
        i = 0
        while i < len(value):
            ch = value[i]
            if ch != "&":
                out.append(ch)
                i += 1
                continue
            end = value.find(";", i + 1)
            if end == -1:
                raise XmlParseError(f"unterminated entity reference in {value!r}")
            entity = value[i + 1 : end]
            if entity.startswith("#x") or entity.startswith("#X"):
                out.append(chr(int(entity[2:], 16)))
            elif entity.startswith("#"):
                out.append(chr(int(entity[1:])))
            elif entity in _ENTITIES:
                out.append(_ENTITIES[entity])
            else:
                raise XmlParseError(f"unknown entity &{entity};")
            i = end + 1
        return "".join(out)

    # -- grammar ---------------------------------------------------------------------

    def parse(self) -> XmlNode:
        nodes = self._parse_content(top_level=True)
        elements = [node for node in nodes if isinstance(node, Element)]
        if not elements:
            raise self._error("document contains no element")
        if len(elements) == 1 and all(
            isinstance(node, Element) or not node.string_value().strip() for node in nodes
        ):
            return elements[0]
        return Fragment([n for n in nodes if not (isinstance(n, Text) and not n.value.strip())])

    def _parse_content(self, top_level: bool = False) -> list[XmlNode]:
        nodes: list[XmlNode] = []
        text_start = self.pos
        while self.pos < self.length:
            if self._peek() == "<":
                if self.pos > text_start:
                    raw = self.source[text_start : self.pos]
                    if raw:
                        nodes.append(Text(self._decode_entities(raw)))
                if self._startswith("</"):
                    if top_level:
                        raise self._error("unexpected closing tag")
                    return nodes
                if self._startswith("<!--"):
                    self._skip_comment()
                elif self._startswith("<![CDATA["):
                    nodes.append(self._parse_cdata())
                elif self._startswith("<?"):
                    self._skip_processing_instruction()
                elif self._startswith("<!"):
                    self._skip_doctype()
                else:
                    nodes.append(self._parse_element())
                text_start = self.pos
            else:
                self.pos += 1
        if self.pos > text_start:
            raw = self.source[text_start : self.pos]
            if raw:
                nodes.append(Text(self._decode_entities(raw)))
        if not top_level:
            raise self._error("unexpected end of input inside an element")
        return nodes

    def _parse_element(self) -> Element:
        self._expect("<")
        name = self._read_name()
        attributes: dict[str, str] = {}
        while True:
            self._skip_whitespace()
            if self._startswith("/>"):
                self.pos += 2
                return Element(name, attributes)
            if self._peek() == ">":
                self.pos += 1
                break
            attr_name = self._read_name()
            self._skip_whitespace()
            self._expect("=")
            self._skip_whitespace()
            quote = self._peek()
            if quote not in ("'", '"'):
                raise self._error("attribute value must be quoted")
            self.pos += 1
            end = self.source.find(quote, self.pos)
            if end == -1:
                raise self._error("unterminated attribute value")
            attributes[attr_name] = self._decode_entities(self.source[self.pos : end])
            self.pos = end + 1

        children = self._parse_content()
        self._expect("</")
        closing = self._read_name()
        if closing != name:
            raise self._error(f"mismatched closing tag </{closing}> for <{name}>")
        self._skip_whitespace()
        self._expect(">")
        element = Element(name, attributes)
        for child in children:
            element.append(child)
        return element

    def _parse_cdata(self) -> Text:
        self._expect("<![CDATA[")
        end = self.source.find("]]>", self.pos)
        if end == -1:
            raise self._error("unterminated CDATA section")
        value = self.source[self.pos : end]
        self.pos = end + 3
        return Text(value)

    def _skip_comment(self) -> None:
        self._expect("<!--")
        end = self.source.find("-->", self.pos)
        if end == -1:
            raise self._error("unterminated comment")
        self.pos = end + 3

    def _skip_processing_instruction(self) -> None:
        self._expect("<?")
        end = self.source.find("?>", self.pos)
        if end == -1:
            raise self._error("unterminated processing instruction")
        self.pos = end + 2

    def _skip_doctype(self) -> None:
        self._expect("<!")
        depth = 1
        while self.pos < self.length and depth:
            ch = self.source[self.pos]
            if ch == "<":
                depth += 1
            elif ch == ">":
                depth -= 1
            self.pos += 1
        if depth:
            raise self._error("unterminated declaration")


def parse_xml(source: str) -> XmlNode:
    """Parse XML text into an :class:`Element` (or :class:`Fragment`)."""
    if not source or not source.strip():
        raise XmlParseError("empty document")
    return _Parser(source).parse()
