"""Serialization of XML nodes to text.

Used by examples, the baseline's node comparison, and tests.  The output is
deterministic (attribute order is the insertion order recorded on the
element), which is what makes the paper's "string comparison in the tagger"
(Appendix E.1) a sound way to detect ``OLD_NODE = NEW_NODE``.
"""

from __future__ import annotations

from repro.errors import XmlError
from repro.xmlmodel.node import Document, Element, Fragment, Text, XmlNode

__all__ = ["serialize", "escape_text", "escape_attribute"]

_TEXT_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ATTR_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}


def escape_text(value: str) -> str:
    """Escape character data."""
    return "".join(_TEXT_ESCAPES.get(ch, ch) for ch in value)


def escape_attribute(value: str) -> str:
    """Escape an attribute value (double-quoted)."""
    return "".join(_ATTR_ESCAPES.get(ch, ch) for ch in value)


def serialize(node: XmlNode | None, *, indent: int | None = None) -> str:
    """Serialize a node (element, text, fragment, or document) to a string.

    ``indent=None`` produces compact output; an integer pretty-prints with
    that many spaces per nesting level.
    """
    if node is None:
        return ""
    parts: list[str] = []
    _serialize(node, parts, indent, 0)
    return "".join(parts)


def _serialize(node: XmlNode, parts: list[str], indent: int | None, depth: int) -> None:
    if isinstance(node, Document):
        _serialize(node.root, parts, indent, depth)
        return
    if isinstance(node, Fragment):
        for i, item in enumerate(node.items):
            if indent is not None and i > 0:
                parts.append("\n")
            _serialize(item, parts, indent, depth)
        return
    if isinstance(node, Text):
        parts.append(escape_text(node.value))
        return
    if isinstance(node, Element):
        _serialize_element(node, parts, indent, depth)
        return
    raise XmlError(f"cannot serialize {type(node).__name__}")  # pragma: no cover


def _serialize_element(node: Element, parts: list[str], indent: int | None, depth: int) -> None:
    pad = "" if indent is None else " " * (indent * depth)
    parts.append(f"{pad}<{node.name}")
    for attribute in node.attributes:
        parts.append(f' {attribute.name}="{escape_attribute(attribute.value)}"')
    if not node.children:
        parts.append("/>")
        return
    parts.append(">")

    only_text = all(isinstance(child, Text) for child in node.children)
    if indent is None or only_text:
        for child in node.children:
            _serialize(child, parts, None, 0)
        parts.append(f"</{node.name}>")
        return

    for child in node.children:
        parts.append("\n")
        if isinstance(child, Text):
            parts.append(" " * (indent * (depth + 1)))
            parts.append(escape_text(child.value))
        else:
            _serialize(child, parts, indent, depth + 1)
    parts.append("\n")
    parts.append(f"{pad}</{node.name}>")
