"""XPath-subset parser and evaluator over materialized XML nodes.

Trigger ``Condition`` expressions and ``Action`` parameters are XQuery /
XPath expressions over the ``OLD_NODE`` and ``NEW_NODE`` variables
(Section 2.2), for example::

    OLD_NODE/@name = 'CRT 15'
    count(NEW_NODE/vendor[./price < 100]) >= 2

By the time a condition is evaluated, the affected-node graph has already
produced the (OLD_NODE, NEW_NODE) XML values, so conditions and action
parameters are evaluated directly over those nodes with this engine.  The
supported axes mirror Appendix D of the paper: ``child``, ``descendant``,
``descendant-or-self``, ``attribute``, and ``self`` (no parent or sibling
axes).

The same expression parser doubles as the shape under trigger *grouping*
(Section 5.1): :func:`split_constants` extracts literal constants from a
condition and replaces them with placeholder parameters, so structurally
similar conditions can share one constants table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import XPathError
from repro.xmlmodel.node import Attribute, Document, Element, Fragment, XmlNode

__all__ = [
    "XPath",
    "parse_xpath",
    "evaluate_xpath",
    "split_constants",
    "analyze_expression",
    "XPathExpr",
]


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


class XPathExpr:
    """Base class of XPath AST nodes."""

    def children(self) -> Sequence["XPathExpr"]:
        """Direct sub-expressions (used by constant splitting)."""
        return ()


@dataclass
class Literal(XPathExpr):
    """A string or numeric literal."""

    value: Any


@dataclass
class Parameter(XPathExpr):
    """A placeholder for a grouped constant (Section 5.1 constants table)."""

    index: int


@dataclass
class VariableRef(XPathExpr):
    """``$name`` or a bare OLD_NODE / NEW_NODE reference."""

    name: str


@dataclass
class ContextRef(XPathExpr):
    """``.`` — the context node."""


@dataclass
class Step(XPathExpr):
    """One location step: axis, node test, and predicates."""

    axis: str  # 'child' | 'descendant' | 'descendant-or-self' | 'attribute' | 'self'
    test: str  # element name, attribute name, or '*'
    predicates: tuple["XPathExpr", ...] = ()

    def children(self) -> Sequence[XPathExpr]:
        return self.predicates


@dataclass
class Path(XPathExpr):
    """A path: a start expression followed by location steps."""

    start: XPathExpr
    steps: tuple[Step, ...]

    def children(self) -> Sequence[XPathExpr]:
        return (self.start, *self.steps)


@dataclass
class FunctionCall(XPathExpr):
    """A call to one of the supported functions."""

    name: str
    args: tuple[XPathExpr, ...]

    def children(self) -> Sequence[XPathExpr]:
        return self.args


@dataclass
class Binary(XPathExpr):
    """Binary operator: comparison, arithmetic, and / or."""

    op: str
    left: XPathExpr
    right: XPathExpr

    def children(self) -> Sequence[XPathExpr]:
        return (self.left, self.right)


@dataclass
class Unary(XPathExpr):
    """Unary minus."""

    op: str
    operand: XPathExpr

    def children(self) -> Sequence[XPathExpr]:
        return (self.operand,)


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

_SYMBOLS = ["//", "!=", "<=", ">=", "::", "(", ")", "[", "]", "/", "@", "$", ",",
            "=", "<", ">", "+", "-", "*", "."]
_AXES = {"child", "descendant", "descendant-or-self", "attribute", "self"}
_FUNCTIONS = {
    "count", "not", "exists", "empty", "string", "number", "sum", "min", "max",
    "avg", "contains", "starts-with", "concat", "true", "false", "boolean",
}


@dataclass
class _Token:
    kind: str  # 'symbol' | 'name' | 'string' | 'number'
    value: Any
    pos: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if ch in "'\"":
            end = text.find(ch, i + 1)
            if end == -1:
                raise XPathError(f"unterminated string literal at offset {i}")
            tokens.append(_Token("string", text[i + 1 : end], i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            while j < n and (text[j].isdigit() or text[j] == "."):
                j += 1
            raw = text[i:j]
            value = float(raw) if "." in raw else int(raw)
            tokens.append(_Token("number", value, i))
            i = j
            continue
        matched = False
        for symbol in _SYMBOLS:
            if text.startswith(symbol, i):
                # '.' followed by a digit was handled above; a lone '.' is a symbol.
                tokens.append(_Token("symbol", symbol, i))
                i += len(symbol)
                matched = True
                break
        if matched:
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] in "_-"):
                j += 1
            tokens.append(_Token("name", text[i:j], i))
            i = j
            continue
        raise XPathError(f"unexpected character {ch!r} at offset {i}")
    return tokens


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: list[_Token], source: str) -> None:
        self.tokens = tokens
        self.source = source
        self.pos = 0

    def _peek(self, offset: int = 0) -> _Token | None:
        index = self.pos + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise XPathError(f"unexpected end of expression: {self.source!r}")
        self.pos += 1
        return token

    def _accept_symbol(self, symbol: str) -> bool:
        token = self._peek()
        if token and token.kind == "symbol" and token.value == symbol:
            self.pos += 1
            return True
        return False

    def _accept_name(self, name: str) -> bool:
        token = self._peek()
        if token and token.kind == "name" and token.value == name:
            self.pos += 1
            return True
        return False

    def _expect_symbol(self, symbol: str) -> None:
        if not self._accept_symbol(symbol):
            token = self._peek()
            raise XPathError(
                f"expected {symbol!r} at offset "
                f"{token.pos if token else len(self.source)} in {self.source!r}"
            )

    # -- grammar --------------------------------------------------------------

    def parse(self) -> XPathExpr:
        expr = self.parse_or()
        if self._peek() is not None:
            token = self._peek()
            raise XPathError(
                f"unexpected token {token.value!r} at offset {token.pos} in {self.source!r}"
            )
        return expr

    def parse_or(self) -> XPathExpr:
        left = self.parse_and()
        while self._accept_name("or"):
            right = self.parse_and()
            left = Binary("or", left, right)
        return left

    def parse_and(self) -> XPathExpr:
        left = self.parse_comparison()
        while self._accept_name("and"):
            right = self.parse_comparison()
            left = Binary("and", left, right)
        return left

    def parse_comparison(self) -> XPathExpr:
        left = self.parse_additive()
        token = self._peek()
        if token and token.kind == "symbol" and token.value in ("=", "!=", "<", "<=", ">", ">="):
            self.pos += 1
            right = self.parse_additive()
            return Binary(token.value, left, right)
        # XQuery general comparison keywords (eq, ne, lt, le, gt, ge)
        if token and token.kind == "name" and token.value in ("eq", "ne", "lt", "le", "gt", "ge"):
            mapping = {"eq": "=", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}
            self.pos += 1
            right = self.parse_additive()
            return Binary(mapping[token.value], left, right)
        return left

    def parse_additive(self) -> XPathExpr:
        left = self.parse_multiplicative()
        while True:
            token = self._peek()
            if token and token.kind == "symbol" and token.value in ("+", "-"):
                self.pos += 1
                right = self.parse_multiplicative()
                left = Binary(token.value, left, right)
            else:
                return left

    def parse_multiplicative(self) -> XPathExpr:
        left = self.parse_unary()
        while True:
            token = self._peek()
            if token and token.kind == "symbol" and token.value == "*":
                self.pos += 1
                left = Binary("*", left, self.parse_unary())
            elif token and token.kind == "name" and token.value in ("div", "mod"):
                self.pos += 1
                left = Binary(token.value, left, self.parse_unary())
            else:
                return left

    def parse_unary(self) -> XPathExpr:
        if self._accept_symbol("-"):
            return Unary("-", self.parse_unary())
        return self.parse_path()

    def parse_path(self) -> XPathExpr:
        start: XPathExpr
        token = self._peek()
        if token is None:
            raise XPathError(f"unexpected end of expression: {self.source!r}")

        if token.kind == "symbol" and token.value == ".":
            # '.' — the context node itself (possibly followed by steps).
            self.pos += 1
            start = ContextRef()
        elif token.kind == "symbol" and token.value in ("/", "//", "@"):
            # Relative/rooted path starting from the context node.
            start = ContextRef()
        else:
            start = self.parse_primary()

        steps: list[Step] = []
        while True:
            token = self._peek()
            if token is None or token.kind != "symbol":
                break
            if token.value == "/":
                self.pos += 1
                steps.append(self.parse_step(descendant=False))
            elif token.value == "//":
                self.pos += 1
                steps.append(self.parse_step(descendant=True))
            elif token.value == "@" and isinstance(start, ContextRef) and not steps:
                # A bare '@attr' path (relative attribute access).
                self.pos += 1
                steps.append(self.parse_attribute_step())
            elif token.value == "[" and (steps or isinstance(start, (VariableRef, ContextRef))):
                # Predicate applied directly to the start expression.
                self.pos += 1
                predicate = self.parse_or()
                self._expect_symbol("]")
                if steps:
                    last = steps[-1]
                    steps[-1] = Step(last.axis, last.test, last.predicates + (predicate,))
                else:
                    steps.append(Step("self", "*", (predicate,)))
            else:
                break
        if not steps:
            return start
        return Path(start, tuple(steps))

    def parse_step(self, descendant: bool) -> Step:
        if self._accept_symbol("@"):
            step = self.parse_attribute_step()
            if descendant:
                raise XPathError("'//@attr' is not supported")
            return step
        token = self._peek()
        if token and token.kind == "symbol" and token.value == "*":
            self.pos += 1
            axis, test = ("descendant" if descendant else "child"), "*"
        elif token and token.kind == "symbol" and token.value == ".":
            self.pos += 1
            axis, test = "self", "*"
        elif token and token.kind == "name":
            name = self._next().value
            if self._accept_symbol("::"):
                axis = name
                if axis not in _AXES:
                    raise XPathError(f"unsupported axis {axis!r} (Appendix D restriction)")
                if self._accept_symbol("@"):
                    test_token = self._next()
                    test = test_token.value
                    axis = "attribute"
                else:
                    token2 = self._next()
                    if token2.kind == "symbol" and token2.value == "*":
                        test = "*"
                    elif token2.kind == "name":
                        test = token2.value
                    else:
                        raise XPathError(f"invalid node test {token2.value!r}")
                if descendant:
                    raise XPathError("'//axis::' combination is not supported")
            else:
                axis, test = ("descendant" if descendant else "child"), name
        else:
            raise XPathError(f"expected a step at offset "
                             f"{token.pos if token else len(self.source)} in {self.source!r}")
        predicates: list[XPathExpr] = []
        while self._accept_symbol("["):
            predicates.append(self.parse_or())
            self._expect_symbol("]")
        return Step(axis, test, tuple(predicates))

    def parse_attribute_step(self) -> Step:
        token = self._next()
        if token.kind == "symbol" and token.value == "*":
            return Step("attribute", "*")
        if token.kind != "name":
            raise XPathError(f"expected an attribute name, got {token.value!r}")
        return Step("attribute", token.value)

    def parse_primary(self) -> XPathExpr:
        token = self._next()
        if token.kind == "string":
            return Literal(token.value)
        if token.kind == "number":
            return Literal(token.value)
        if token.kind == "symbol" and token.value == "(":
            inner = self.parse_or()
            self._expect_symbol(")")
            return inner
        if token.kind == "symbol" and token.value == "$":
            name_token = self._next()
            if name_token.kind != "name":
                raise XPathError("expected a variable name after '$'")
            return VariableRef(name_token.value)
        if token.kind == "name":
            name = token.value
            nxt = self._peek()
            if nxt and nxt.kind == "symbol" and nxt.value == "(":
                self.pos += 1
                args: list[XPathExpr] = []
                if not self._accept_symbol(")"):
                    args.append(self.parse_or())
                    while self._accept_symbol(","):
                        args.append(self.parse_or())
                    self._expect_symbol(")")
                lowered = name.lower()
                if lowered not in _FUNCTIONS:
                    raise XPathError(f"unsupported function {name!r}")
                return FunctionCall(lowered, tuple(args))
            # A bare name is a child step relative to the context node,
            # except for the conventional OLD_NODE / NEW_NODE variables.
            if name in ("OLD_NODE", "NEW_NODE") or name.isupper():
                return VariableRef(name)
            return Path(ContextRef(), (Step("child", name),))
        raise XPathError(f"unexpected token {token.value!r} at offset {token.pos}")


def parse_xpath(text: str) -> XPathExpr:
    """Parse an XPath/condition expression into an AST."""
    if not text or not text.strip():
        raise XPathError("empty expression")
    return _Parser(_tokenize(text), text).parse()


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------


def _as_nodeset(value: Any) -> list[Any]:
    if value is None:
        return []
    if isinstance(value, list):
        return value
    if isinstance(value, Fragment):
        return list(value.items)
    return [value]


def _string_of(item: Any) -> str:
    if item is None:
        return ""
    if isinstance(item, Attribute):
        return item.value
    if isinstance(item, XmlNode):
        return item.string_value()
    if isinstance(item, bool):
        return "true" if item else "false"
    if isinstance(item, float) and item.is_integer():
        return f"{item:.1f}"
    return str(item)


def _number_of(item: Any) -> float | None:
    try:
        return float(_string_of(item))
    except (TypeError, ValueError):
        return None


def _to_boolean(value: Any) -> bool:
    if isinstance(value, list):
        return bool(value)
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, str):
        return bool(value)
    if isinstance(value, Fragment):
        return bool(value.items)
    return value is not None


def _atomize(value: Any) -> list[Any]:
    """Flatten a value into a list of atomic items for comparison."""
    if isinstance(value, list):
        return value
    return [value]


def _compare_atoms(op: str, a: Any, b: Any) -> bool:
    sa, sb = _string_of(a), _string_of(b)
    na, nb = _number_of(a), _number_of(b)
    if na is not None and nb is not None:
        left, right = na, nb
    else:
        left, right = sa, sb
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise XPathError(f"unknown comparison operator {op!r}")  # pragma: no cover


class XPath:
    """A compiled XPath/condition expression."""

    def __init__(self, expression: str | XPathExpr) -> None:
        if isinstance(expression, str):
            self.source: str | None = expression
            self.ast = parse_xpath(expression)
        else:
            self.source = None
            self.ast = expression

    # -- public API -----------------------------------------------------------

    def evaluate(
        self,
        variables: dict[str, Any] | None = None,
        context: Any = None,
        parameters: Sequence[Any] = (),
    ) -> Any:
        """Evaluate and return the raw result (node list, string, number, bool)."""
        return _evaluate(self.ast, variables or {}, context, list(parameters))

    def as_boolean(
        self,
        variables: dict[str, Any] | None = None,
        context: Any = None,
        parameters: Sequence[Any] = (),
    ) -> bool:
        """Evaluate with boolean (effective boolean value) semantics."""
        return _to_boolean(self.evaluate(variables, context, parameters))

    def nodes(
        self,
        variables: dict[str, Any] | None = None,
        context: Any = None,
        parameters: Sequence[Any] = (),
    ) -> list[Any]:
        """Evaluate and return the result as a node list."""
        return _as_nodeset(self.evaluate(variables, context, parameters))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"XPath({self.source or self.ast!r})"


def evaluate_xpath(
    expression: str | XPathExpr | XPath,
    variables: dict[str, Any] | None = None,
    context: Any = None,
    parameters: Sequence[Any] = (),
) -> Any:
    """Convenience wrapper: compile (if needed) and evaluate an expression."""
    xpath = expression if isinstance(expression, XPath) else XPath(expression)
    return xpath.evaluate(variables, context, parameters)


def _evaluate(expr: XPathExpr, variables: dict[str, Any], context: Any, params: list[Any]) -> Any:
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Parameter):
        try:
            return params[expr.index]
        except IndexError:
            raise XPathError(
                f"no value bound for grouped constant #{expr.index}"
            ) from None
    if isinstance(expr, VariableRef):
        if expr.name not in variables:
            raise XPathError(f"unbound variable ${expr.name}")
        return variables[expr.name]
    if isinstance(expr, ContextRef):
        return context
    if isinstance(expr, Path):
        start = _evaluate(expr.start, variables, context, params)
        items = _as_nodeset(start)
        for step in expr.steps:
            items = _apply_step(step, items, variables, params)
        return items
    if isinstance(expr, FunctionCall):
        return _call_function(expr, variables, context, params)
    if isinstance(expr, Unary):
        value = _evaluate(expr.operand, variables, context, params)
        number = _number_of(value if not isinstance(value, list) else (value[0] if value else None))
        if number is None:
            raise XPathError("unary minus applied to a non-numeric value")
        return -number
    if isinstance(expr, Binary):
        return _evaluate_binary(expr, variables, context, params)
    raise XPathError(f"cannot evaluate {type(expr).__name__}")  # pragma: no cover


def _apply_step(step: Step, items: list[Any], variables: dict[str, Any], params: list[Any]) -> list[Any]:
    output: list[Any] = []
    for item in items:
        output.extend(_step_from(step, item))
    for predicate in step.predicates:
        output = [
            item
            for item in output
            if _to_boolean(_evaluate(predicate, variables, item, params))
        ]
    return output


def _step_from(step: Step, item: Any) -> list[Any]:
    if isinstance(item, Document):
        item = item.root
    if isinstance(item, Fragment):
        result: list[Any] = []
        for sub in item.items:
            result.extend(_step_from(step, sub))
        return result
    if not isinstance(item, Element):
        return []
    if step.axis == "self":
        if step.test in ("*", item.name):
            return [item]
        return []
    if step.axis == "attribute":
        if step.test == "*":
            return list(item.attributes)
        value = item.attribute(step.test)
        return [Attribute(step.test, value)] if value is not None else []
    if step.axis == "child":
        return [
            child
            for child in item.children
            if isinstance(child, Element) and (step.test == "*" or child.name == step.test)
        ]
    if step.axis in ("descendant", "descendant-or-self"):
        matches = []
        candidates = item.iter_descendants()
        for node in candidates:
            if node is item and step.axis == "descendant":
                continue
            if isinstance(node, Element) and (step.test == "*" or node.name == step.test):
                matches.append(node)
        return matches
    raise XPathError(f"unsupported axis {step.axis!r}")  # pragma: no cover


def _call_function(expr: FunctionCall, variables: dict[str, Any], context: Any, params: list[Any]) -> Any:
    name = expr.name
    args = [
        _evaluate(arg, variables, context, params) for arg in expr.args
    ]
    if name == "count":
        _require_args(name, args, 1)
        return float(len(_as_nodeset(args[0])))
    if name == "exists":
        _require_args(name, args, 1)
        return bool(_as_nodeset(args[0]))
    if name == "empty":
        _require_args(name, args, 1)
        return not _as_nodeset(args[0])
    if name == "not":
        _require_args(name, args, 1)
        return not _to_boolean(args[0])
    if name == "boolean":
        _require_args(name, args, 1)
        return _to_boolean(args[0])
    if name == "true":
        return True
    if name == "false":
        return False
    if name == "string":
        _require_args(name, args, 1)
        items = _as_nodeset(args[0])
        return _string_of(items[0]) if items else ""
    if name == "number":
        _require_args(name, args, 1)
        items = _as_nodeset(args[0])
        value = _number_of(items[0]) if items else None
        return float("nan") if value is None else value
    if name in ("sum", "min", "max", "avg"):
        _require_args(name, args, 1)
        numbers = [
            number
            for number in (_number_of(item) for item in _as_nodeset(args[0]))
            if number is not None
        ]
        if not numbers:
            return 0.0 if name == "sum" else None
        if name == "sum":
            return float(sum(numbers))
        if name == "min":
            return float(min(numbers))
        if name == "max":
            return float(max(numbers))
        return float(sum(numbers) / len(numbers))
    if name == "contains":
        _require_args(name, args, 2)
        return _string_of(_first(args[0])) .find(_string_of(_first(args[1]))) != -1
    if name == "starts-with":
        _require_args(name, args, 2)
        return _string_of(_first(args[0])).startswith(_string_of(_first(args[1])))
    if name == "concat":
        return "".join(_string_of(_first(arg)) for arg in args)
    raise XPathError(f"unsupported function {name!r}")  # pragma: no cover


def _first(value: Any) -> Any:
    items = _as_nodeset(value)
    return items[0] if items else None


def _require_args(name: str, args: list[Any], count: int) -> None:
    if len(args) != count:
        raise XPathError(f"{name}() expects {count} argument(s), got {len(args)}")


def _evaluate_binary(expr: Binary, variables: dict[str, Any], context: Any, params: list[Any]) -> Any:
    if expr.op == "and":
        return _to_boolean(_evaluate(expr.left, variables, context, params)) and _to_boolean(
            _evaluate(expr.right, variables, context, params)
        )
    if expr.op == "or":
        return _to_boolean(_evaluate(expr.left, variables, context, params)) or _to_boolean(
            _evaluate(expr.right, variables, context, params)
        )
    left = _evaluate(expr.left, variables, context, params)
    right = _evaluate(expr.right, variables, context, params)
    if expr.op in ("=", "!=", "<", "<=", ">", ">="):
        # Existential (node-set) comparison semantics.
        for a in _atomize(left):
            for b in _atomize(right):
                if _compare_atoms(expr.op, a, b):
                    return True
        return False
    # Arithmetic
    la = _number_of(_first(left))
    rb = _number_of(_first(right))
    if la is None or rb is None:
        raise XPathError(f"arithmetic on non-numeric operands: {expr.op}")
    if expr.op == "+":
        return la + rb
    if expr.op == "-":
        return la - rb
    if expr.op == "*":
        return la * rb
    if expr.op == "div":
        return la / rb
    if expr.op == "mod":
        return la % rb
    raise XPathError(f"unknown operator {expr.op!r}")  # pragma: no cover


# ---------------------------------------------------------------------------
# Constant splitting for trigger grouping (Section 5.1)
# ---------------------------------------------------------------------------


def split_constants(expression: str | XPathExpr) -> tuple[XPathExpr, list[Any]]:
    """Replace literal constants in an expression with :class:`Parameter` slots.

    Returns the parameterized AST plus the list of extracted constants, in
    order.  Two conditions that produce identical parameterized ASTs are
    *structurally similar* in the sense of Section 5.1 and can share a single
    grouped SQL trigger; their constants become rows of the constants table.
    """
    ast = parse_xpath(expression) if isinstance(expression, str) else expression
    constants: list[Any] = []

    def rewrite(node: XPathExpr) -> XPathExpr:
        if isinstance(node, Literal):
            constants.append(node.value)
            return Parameter(len(constants) - 1)
        if isinstance(node, Binary):
            return Binary(node.op, rewrite(node.left), rewrite(node.right))
        if isinstance(node, Unary):
            return Unary(node.op, rewrite(node.operand))
        if isinstance(node, FunctionCall):
            return FunctionCall(node.name, tuple(rewrite(arg) for arg in node.args))
        if isinstance(node, Path):
            return Path(rewrite(node.start), tuple(rewrite(step) for step in node.steps))
        if isinstance(node, Step):
            return Step(node.axis, node.test, tuple(rewrite(p) for p in node.predicates))
        return node

    return rewrite(ast), constants


def expression_shape(expression: str | XPathExpr) -> str:
    """A canonical string for the parameterized form of an expression.

    Used as the grouping key for structurally similar triggers.
    """
    parameterized, _ = split_constants(expression)
    return _shape(parameterized)


def analyze_expression(expression: str | XPathExpr) -> tuple[XPathExpr, list[Any], str]:
    """Parameterized AST, extracted constants, and canonical shape — one parse.

    Equivalent to ``split_constants`` followed by ``expression_shape`` but
    parses the source text only once; trigger registration calls this per
    expression so bulk registration of very large populations stays cheap.
    """
    parameterized, constants = split_constants(expression)
    return parameterized, constants, _shape(parameterized)


def _shape(node: XPathExpr) -> str:
    if isinstance(node, Parameter):
        return "?"
    if isinstance(node, Literal):  # pragma: no cover - literals already replaced
        return repr(node.value)
    if isinstance(node, VariableRef):
        return f"${node.name}"
    if isinstance(node, ContextRef):
        return "."
    if isinstance(node, Step):
        preds = "".join(f"[{_shape(p)}]" for p in node.predicates)
        return f"{node.axis}::{node.test}{preds}"
    if isinstance(node, Path):
        return "/".join([_shape(node.start)] + [_shape(step) for step in node.steps])
    if isinstance(node, FunctionCall):
        return f"{node.name}({','.join(_shape(a) for a in node.args)})"
    if isinstance(node, Binary):
        return f"({_shape(node.left)}{node.op}{_shape(node.right)})"
    if isinstance(node, Unary):
        return f"({node.op}{_shape(node.operand)})"
    raise XPathError(f"cannot canonicalize {type(node).__name__}")  # pragma: no cover
