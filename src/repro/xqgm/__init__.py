"""XQGM — the XML Query Graph Model (Section 2.1 of the paper).

XQGM is the intermediate representation used by XPERANTO/Quark to represent
XQuery views and queries: a DAG of operators (Table, Select, Project, Join,
GroupBy, Union, Unnest) whose tuples carry XML nodes and scalar values, with
XML-construction functions embedded in operators (Table 1 of the paper).

This package provides:

* the operator classes and tuple-level expression language
  (:mod:`repro.xqgm.operators`, :mod:`repro.xqgm.expressions`);
* canonical-key derivation per Appendix A / Table 3 (:mod:`repro.xqgm.keys`);
* an evaluator that runs an XQGM graph against the relational database,
  including the ``B_old`` / ``ΔB`` / ``∇B`` table variants the trigger
  translation needs (:mod:`repro.xqgm.evaluate`);
* a hierarchical view builder that constructs XQGM graphs like Figure 5 of
  the paper from a declarative nesting spec (:mod:`repro.xqgm.views`);
* graph utilities: cloning with shared-subgraph preservation, table-variant
  substitution, column propagation (:mod:`repro.xqgm.graph`);
* a one-time lowering of logical graphs into compiled physical plans — slot
  tuples, closure expressions, and a version-stamped shared-subgraph result
  cache (:mod:`repro.xqgm.physical`; see ``docs/performance.md``);
* a batch-oriented columnar lowering of the same graphs — column batches
  with shared selections, vectorized predicate masks, bulk hash joins and
  sort-clustered grouped aggregation (:mod:`repro.xqgm.columnar`), reusing
  the physical engine's stability classes and row-major result cache.
"""

from repro.xqgm.expressions import (
    AggregateSpec,
    Arithmetic,
    AttributeSpec,
    BooleanExpr,
    ColumnRef,
    Comparison,
    Constant,
    ElementConstructor,
    Expression,
    IsNull,
    Parameter,
)
from repro.xqgm.operators import (
    GroupByOp,
    JoinKind,
    JoinOp,
    Operator,
    ProjectOp,
    SelectOp,
    TableOp,
    TableVariant,
    UnionOp,
    UnnestOp,
)
from repro.xqgm.keys import derive_keys, operator_key
from repro.xqgm.graph import clone_graph, ensure_columns, replace_table_variant, walk
from repro.xqgm.evaluate import EvaluationContext, evaluate
from repro.xqgm.physical import PhysicalPlan, ResultCache, SlotLayout, compile_plan
from repro.xqgm.columnar import ColumnBatch, ColumnarPlan, compile_columnar_plan
from repro.xqgm.views import PathGraph, ViewDefinition, ViewElementSpec

__all__ = [
    "AggregateSpec",
    "Arithmetic",
    "AttributeSpec",
    "BooleanExpr",
    "ColumnBatch",
    "ColumnRef",
    "ColumnarPlan",
    "Comparison",
    "Constant",
    "ElementConstructor",
    "EvaluationContext",
    "Expression",
    "GroupByOp",
    "IsNull",
    "JoinKind",
    "JoinOp",
    "Operator",
    "Parameter",
    "PathGraph",
    "PhysicalPlan",
    "ProjectOp",
    "ResultCache",
    "SelectOp",
    "SlotLayout",
    "TableOp",
    "TableVariant",
    "UnionOp",
    "UnnestOp",
    "ViewDefinition",
    "ViewElementSpec",
    "clone_graph",
    "compile_columnar_plan",
    "compile_plan",
    "derive_keys",
    "ensure_columns",
    "evaluate",
    "operator_key",
    "replace_table_variant",
    "walk",
]
