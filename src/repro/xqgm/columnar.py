"""Batch-oriented columnar execution: column batches, masks, bulk joins.

The compiled row engine (:mod:`repro.xqgm.physical`) already removed the
interpreter's dictionary merging and per-row expression tree walks, but it
still drives every operator tuple-at-a-time: one Python-level function call
per row per predicate, one tuple allocation per row per join merge.  This
module lowers the same logical XQGM graphs a third way — into **columnar**
operators that exchange :class:`ColumnBatch` objects (parallel columns plus
an optional shared selection) so per-row interpreter overhead amortizes
across a whole batch:

* predicates compile to vectorized mask evaluators
  (:func:`repro.xqgm.expressions.compile_predicate_columns`) producing one
  boolean column per batch; a select then only narrows the selection — the
  data columns are shared, not copied;
* projections that merely rename/reorder compile to a column permutation
  (zero copying; the column objects themselves are shared);
* hash joins build their table over key columns and probe in bulk, gathering
  matching row indexes first and materializing the merged columns in one
  pass per column;
* grouped aggregation clusters row indexes per group (sorted runs for
  ``order_within_group``) and runs vectorized aggregate evaluators over
  gathered argument columns;
* XML construction (element/text constructors, ``aggXMLFrag``) consumes
  column slices: child and attribute expressions evaluate over the whole
  batch before the per-row node assembly loop.

Columns are **immutable once constructed** — operators may freely share
column objects across batches (that is where the zero-copy wins come from),
so no operator ever mutates a column it received.

Semantics mirror the row engines value-for-value; the differential fuzzer
(``tests/property/test_property_columnar_equivalence.py``) pins columnar ==
compiled == interpreted == oracle on randomized workloads.  The join driver
replays the compiled engine's adaptive input ordering, build-side selection
and index-probe profitability test over the same logical operator ids, so a
cache-free evaluation produces bit-identical row *order* as well.

The engine reuses the version-stamped :class:`~repro.xqgm.physical.ResultCache`
unchanged: cache entries stay **row-major** (``list[tuple]``), converted at
the boundary by :meth:`ColumnBatch.to_rows` / :meth:`ColumnBatch.from_rows`.
Logical subgraphs shared between plans running on different engines can
therefore serve each other's hits — and the cache never holds engine-specific
objects.

One deliberate classification difference: stability derivation here uses a
**precise** parameter-dependence test that honours a per-expression
``uses_parameters()`` hook (see
:meth:`repro.core.affected_nodes.NodesDiffer.uses_parameters`), where the row
compiler conservatively treats unknown expression types as
parameter-dependent.  The difference-check select at the root of UPDATE
translations is therefore CONTEXT-cacheable here — sibling trigger groups
fired by one statement hit at the root instead of re-filtering the joined
result per group, which is where the bulk of the columnar engine's headline
speedup on the ungrouped Figure 17 stress comes from.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import EvaluationError
from repro.relational.types import sort_key
from repro.xqgm.evaluate import (
    EvaluationContext,
    _PROBE_RATIO,
    _hashable,
    _input_cost_estimate,
    _pairs_for,
    _table_rows,
)
from repro.xqgm.expressions import (
    ColumnRef,
    compile_expr_columns,
    compile_predicate,
    compile_predicate_columns,
    expression_uses_parameters,
)
from repro.xqgm.operators import (
    ConstantsOp,
    GroupByOp,
    JoinKind,
    JoinOp,
    Operator,
    ProjectOp,
    SelectOp,
    TableOp,
    TableVariant,
    UnionOp,
    UnnestOp,
)
from repro.xqgm.physical import (
    CONTEXT,
    STABLE,
    VOLATILE,
    SlotLayout,
    _MergeSpec,
    _operator_uses_parameters,
)

__all__ = ["ColumnBatch", "ColumnarPlan", "compile_columnar_plan"]


class ColumnBatch:
    """A batch of rows stored column-wise, with an optional shared selection.

    ``columns`` holds one sequence per slot, each of ``length`` values.  When
    ``sel`` is set it lists the *kept* row positions in output order — the
    batch then logically contains ``len(sel)`` rows while the underlying
    columns are shared, unmaterialized, with whatever produced them (this is
    how a select narrows a batch without copying it).  :meth:`materialize`
    gathers the selection into dense columns on first use and memoizes the
    result.

    Columns are immutable once a batch is constructed; batches may share
    column objects freely.
    """

    __slots__ = ("columns", "length", "sel", "_dense")

    def __init__(
        self,
        columns: Sequence[Sequence[Any]],
        length: int,
        sel: Sequence[int] | None = None,
    ) -> None:
        self.columns = columns
        self.length = length
        self.sel = sel
        self._dense: ColumnBatch | None = None

    def __len__(self) -> int:
        """Visible row count (selection-aware) — also the join driver's
        exact-cardinality input to :func:`~repro.xqgm.evaluate._input_cost_estimate`."""
        return self.length if self.sel is None else len(self.sel)

    def materialize(self) -> "ColumnBatch":
        """Dense form: apply the selection (memoized; identity when dense)."""
        if self.sel is None:
            return self
        dense = self._dense
        if dense is None:
            sel = self.sel
            dense = ColumnBatch([[col[i] for i in sel] for col in self.columns], len(sel))
            self._dense = dense
        return dense

    def to_rows(self) -> list[tuple]:
        """Row-major form (the result cache's storage representation)."""
        dense = self.materialize()
        if not dense.columns:
            return [()] * dense.length
        return list(zip(*dense.columns))

    @staticmethod
    def from_rows(rows: Sequence[tuple], width: int) -> "ColumnBatch":
        """Rebuild a dense batch from row-major data (result-cache hits)."""
        if not rows:
            return ColumnBatch([[] for _ in range(width)], 0)
        if width == 0:
            return ColumnBatch([], len(rows))
        return ColumnBatch([list(column) for column in zip(*rows)], len(rows))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        suffix = "" if self.sel is None else f", sel={len(self.sel)}"
        return f"ColumnBatch({len(self.columns)}x{self.length}{suffix})"


#: Memo sentinel: ``(_HASHED_SCAN, table_op_id) -> scan length``.  Left by
#: :meth:`CInnerJoin._try_sorted_probe` for a scan it answered from the
#: table's indexes without materializing; the row engines *did* materialize
#: that scan (their hash join calls ``rows()``), so join-order estimates and
#: probe decisions consult the sentinel to keep mirroring their memo state.
_HASHED_SCAN = "hashed-scan"


def _gather(column: Sequence[Any], indexes: Sequence[int]) -> list:
    return [column[i] for i in indexes]


def _key_rows(
    columns: Sequence[Sequence[Any]], slots: Sequence[int], length: int
) -> list[tuple]:
    """Join/grouping keys, one tuple per row, extracted column-at-a-time."""
    if len(slots) == 1:
        return [(value,) for value in columns[slots[0]]]
    if not slots:
        return [()] * length
    return list(zip(*(columns[s] for s in slots)))


# ---------------------------------------------------------------------------
# Columnar operators
# ---------------------------------------------------------------------------


class ColumnarOp:
    """One columnar operator: produces a :class:`ColumnBatch` for a logical node.

    The caching protocol is byte-compatible with
    :meth:`repro.xqgm.physical.PhysicalOp.rows`: same stability classes, same
    stamp assembly, same two-step retention — only the in-memory exchange
    format differs, and the cache itself stays row-major.
    """

    __slots__ = ("logical", "logical_id", "kind", "rows_counter", "layout",
                 "table_deps", "stability", "cache_eligible", "width")

    def __init__(self, logical: Operator, layout: SlotLayout) -> None:
        self.logical = logical
        self.logical_id = logical.id
        self.kind = logical.kind.lower()
        self.rows_counter = "rows_" + self.kind
        self.layout = layout
        self.width = len(layout.columns)
        self.table_deps: tuple[str, ...] = ()
        self.stability = VOLATILE
        self.cache_eligible = False

    def batch(self, ctx: EvaluationContext, memo: dict[int, Any]) -> ColumnBatch:
        """The node's batch (memoized per execution, cached across firings)."""
        hit = memo.get(self.logical_id)
        if hit is not None:
            return hit
        cache = ctx.result_cache
        stamp = None
        if cache is not None and self.cache_eligible:
            database = ctx.database
            if self.stability == STABLE:
                stamp = tuple(
                    database.table(name).version_stamp for name in self.table_deps
                )
            elif ctx.cache_context_results and ctx.trigger_context is not None:
                stamp = (ctx.trigger_context.context_token,) + tuple(
                    database.table(name).version_stamp for name in self.table_deps
                )
            if stamp is not None:
                cached = cache.lookup(self.logical_id, stamp)
                if cached is not None:
                    ctx._bump("cache_hits")
                    out = ColumnBatch.from_rows(cached, self.width)
                    memo[self.logical_id] = out
                    return out
        out = self._compute(ctx, memo)
        ctx.columnar_batches += 1
        if stamp is not None:
            cache.store(self.logical_id, stamp, out.to_rows())
        memo[self.logical_id] = out
        if ctx.collect_stats:
            ctx._bump(self.rows_counter, len(out))
        return out

    def _compute(self, ctx: EvaluationContext, memo: dict[int, Any]) -> ColumnBatch:
        raise NotImplementedError  # pragma: no cover - abstract

    def _empty(self) -> ColumnBatch:
        return ColumnBatch([[] for _ in range(self.width)], 0)


class CTableScan(ColumnarOp):
    """Transpose a base-table (or transition-variant) scan into columns."""

    __slots__ = ("schema", "projection")

    def __init__(self, logical: TableOp, schema) -> None:
        if logical.columns is None:
            logical.bind_schema(schema.column_names)
        super().__init__(logical, SlotLayout(
            [logical.qualified(c) for c in logical.columns]
        ))
        self.schema = schema
        self.projection = tuple(schema.column_index(c) for c in logical.columns)
        self.table_deps = (logical.table,)

    def _compute(self, ctx: EvaluationContext, memo: dict[int, Any]) -> ColumnBatch:
        ctx._bump("table_scans")
        raw = _table_rows(self.logical, ctx)
        length = len(raw)
        if not length:
            return self._empty()
        # One transpose of the storage tuples; the projection both reorders
        # and drops schema columns the scan does not expose.
        transposed = list(zip(*raw))
        return ColumnBatch([transposed[i] for i in self.projection], length)


class CConstants(ColumnarOp):
    """Columnar scan of an in-memory constants table bound via the context."""

    __slots__ = ()

    def __init__(self, logical: ConstantsOp) -> None:
        super().__init__(logical, SlotLayout(logical.output_columns))

    def _compute(self, ctx: EvaluationContext, memo: dict[int, Any]) -> ColumnBatch:
        logical = self.logical
        rows = ctx.constants_tables.get(logical.name)
        if rows is None:
            raise EvaluationError(
                f"constants table {logical.name!r} not bound in the evaluation context"
            )
        columns = self.layout.columns
        output: list[list] = [[] for _ in columns]
        for row in rows:
            missing = [c for c in columns if c not in row]
            if missing:
                raise EvaluationError(
                    f"constants table {logical.name!r} row is missing columns {missing!r}"
                )
            for slot, column in enumerate(columns):
                output[slot].append(row[column])
        return ColumnBatch(output, len(rows))


class CSelect(ColumnarOp):
    """Narrow a batch by a vectorized predicate mask — columns are shared."""

    __slots__ = ("input", "mask")

    def __init__(self, logical: SelectOp, input_op: ColumnarOp) -> None:
        super().__init__(logical, input_op.layout)
        self.input = input_op
        self.mask = compile_predicate_columns(logical.predicate, input_op.layout.index)

    def _compute(self, ctx: EvaluationContext, memo: dict[int, Any]) -> ColumnBatch:
        batch = self.input.batch(ctx, memo).materialize()
        flags = self.mask(batch.columns, batch.length, ctx.parameters)
        sel = [i for i, keep in enumerate(flags) if keep]
        if len(sel) == batch.length:
            return batch
        return ColumnBatch(batch.columns, batch.length, sel)


class CProject(ColumnarOp):
    """Column permutation when possible, vectorized expressions otherwise."""

    __slots__ = ("input", "permutation", "expressions")

    def __init__(self, logical: ProjectOp, input_op: ColumnarOp) -> None:
        super().__init__(logical, SlotLayout([name for name, _ in logical.projections]))
        self.input = input_op
        index = input_op.layout.index
        self.permutation: tuple[int, ...] | None = None
        if all(
            isinstance(expression, ColumnRef) and expression.name in index
            for _, expression in logical.projections
        ):
            self.permutation = tuple(
                index[expression.name] for _, expression in logical.projections
            )
            self.expressions: tuple = ()
        else:
            self.expressions = tuple(
                compile_expr_columns(expression, index)
                for _, expression in logical.projections
            )

    def _compute(self, ctx: EvaluationContext, memo: dict[int, Any]) -> ColumnBatch:
        batch = self.input.batch(ctx, memo).materialize()
        permutation = self.permutation
        if permutation is not None:
            # Pure rename/reorder: share the column objects, copy nothing.
            return ColumnBatch([batch.columns[i] for i in permutation], batch.length)
        columns, length = batch.columns, batch.length
        parameters = ctx.parameters
        return ColumnBatch(
            [fn(columns, length, parameters) for fn in self.expressions], length
        )


def _merge_columns_left_wins(
    spec: _MergeSpec,
    acc_columns: Sequence[Sequence[Any]],
    left_indexes: Sequence[int],
    right_columns: Sequence[Sequence[Any]],
    right_indexes: Sequence[int],
) -> list[list]:
    """Columnar ``merge_left_wins``: gather-left ++ gather-appended-right."""
    out = [_gather(column, left_indexes) for column in acc_columns]
    out.extend(_gather(right_columns[s], right_indexes) for s in spec.append)
    return out


class CInnerJoin(ColumnarOp):
    """N-ary inner join: bulk hash build/probe over key columns.

    The driver replays the compiled engine's adaptive ordering decisions
    (input sort by :func:`~repro.xqgm.evaluate._input_cost_estimate`,
    connected-input preference, build-side pick, index-probe profitability)
    over the same logical ids, but materializes each merge column-at-a-time
    from gathered row-index pairs instead of allocating one tuple per output
    row inside the probe loop.
    """

    __slots__ = ("children", "has_condition", "_conditions", "_merge_specs",
                 "_permutations")

    def __init__(self, logical: JoinOp, children: Sequence[ColumnarOp]) -> None:
        super().__init__(logical, SlotLayout(logical.output_columns))
        self.children = tuple(children)
        self.has_condition = logical.condition is not None
        self._conditions: dict[tuple, Any] = {}
        self._merge_specs: dict[tuple, _MergeSpec] = {}
        self._permutations: dict[tuple, tuple[int, ...] | None] = {}

    def _merge_spec(self, acc_layout: SlotLayout, right_columns: tuple[str, ...]) -> _MergeSpec:
        key = (acc_layout.columns, right_columns)
        spec = self._merge_specs.get(key)
        if spec is None:
            spec = _MergeSpec(acc_layout, right_columns)
            self._merge_specs[key] = spec
        return spec

    def _permutation(self, acc_layout: SlotLayout) -> tuple[int, ...] | None:
        key = acc_layout.columns
        if key not in self._permutations:
            if key == self.layout.columns:
                self._permutations[key] = None
            else:
                self._permutations[key] = tuple(
                    acc_layout.index[column] for column in self.layout.columns
                )
        return self._permutations[key]

    def _input_estimate(
        self, logical_input, ctx: EvaluationContext, memo: dict[int, Any]
    ):
        """Input cost estimate, mirroring the row engines' memo state.

        A scan the columnar engine answered with a sorted probe was *hash
        materialized* by the row engines at the same point (they have no
        probe for memoized scans), so their estimate sees it as free.  The
        sentinel left by :meth:`_try_sorted_probe` carries the scan length;
        echoing ``(0, length)`` here keeps the adaptive join driver choosing
        the same input order as the row engines.
        """
        if logical_input.id not in memo:
            length = memo.get((_HASHED_SCAN, logical_input.id))
            if length is not None:
                return (0, length)
        return _input_cost_estimate(logical_input, ctx, memo)

    def _compute(self, ctx: EvaluationContext, memo: dict[int, Any]) -> ColumnBatch:
        logical: JoinOp = self.logical  # type: ignore[assignment]
        children = self.children
        indexed = list(range(len(children)))
        indexed.sort(
            key=lambda i: (self._input_estimate(logical.inputs[i], ctx, memo), i)
        )

        acc_columns: Sequence[Sequence[Any]] | None = None
        acc_length = 0
        acc_layout: SlotLayout | None = None
        consumed_pairs: set[tuple[str, str]] = set()
        remaining = list(indexed)

        while remaining:
            if acc_columns is None:
                first = children[remaining.pop(0)]
                batch = first.batch(ctx, memo).materialize()
                acc_columns, acc_length, acc_layout = batch.columns, batch.length, first.layout
                continue
            acc_names = set(acc_layout.columns)
            chosen_index = None
            for candidate_index, child_position in enumerate(remaining):
                candidate = children[child_position]
                if _pairs_for(
                    acc_names, set(candidate.layout.columns), logical.equi_pairs
                ):
                    chosen_index = candidate_index
                    break
            if chosen_index is None:
                chosen_index = 0
            child = children[remaining.pop(chosen_index)]
            pairs = _pairs_for(acc_names, set(child.layout.columns), logical.equi_pairs)
            pairs = [pair for pair in pairs if pair not in consumed_pairs]
            if pairs:
                acc_columns, acc_length, acc_layout = self._join_with(
                    acc_columns, acc_length, acc_layout, child, pairs, ctx, memo
                )
                consumed_pairs.update(pairs)
                consumed_pairs.update((b, a) for a, b in pairs)
            else:
                # Cross product ({**left, **right}: the right side wins dups).
                right = child.batch(ctx, memo).materialize()
                spec = self._merge_spec(acc_layout, child.layout.columns)
                right_length = right.length
                left_indexes = [
                    i for i in range(acc_length) for _ in range(right_length)
                ]
                right_indexes = list(range(right_length)) * acc_length
                out = [_gather(column, left_indexes) for column in acc_columns]
                for acc_slot, right_slot in spec.overwrite:
                    out[acc_slot] = _gather(right.columns[right_slot], right_indexes)
                out.extend(
                    _gather(right.columns[s], right_indexes) for s in spec.append
                )
                acc_columns = out
                acc_length = len(left_indexes)
                acc_layout = spec.layout

        if acc_columns is None:
            return self._empty()
        if self.has_condition:
            mask = self._conditions.get(acc_layout.columns)
            if mask is None:
                mask = compile_predicate_columns(logical.condition, acc_layout.index)
                self._conditions[acc_layout.columns] = mask
            flags = mask(acc_columns, acc_length, ctx.parameters)
            sel = [i for i, keep in enumerate(flags) if keep]
            if len(sel) != acc_length:
                acc_columns = [_gather(column, sel) for column in acc_columns]
                acc_length = len(sel)
        permutation = self._permutation(acc_layout)
        if permutation is not None:
            acc_columns = [acc_columns[i] for i in permutation]
        return ColumnBatch(list(acc_columns), acc_length)

    def _join_with(
        self,
        acc_columns: Sequence[Sequence[Any]],
        acc_length: int,
        acc_layout: SlotLayout,
        child: ColumnarOp,
        pairs: list[tuple[str, str]],
        ctx: EvaluationContext,
        memo: dict[int, Any],
    ) -> tuple[list[list], int, SlotLayout]:
        left_columns = [a for a, _ in pairs]
        right_columns = [b for _, b in pairs]

        probed = self._try_index_probe(
            acc_columns, acc_length, acc_layout, left_columns, child, right_columns,
            ctx, memo,
        )
        if probed is not None:
            return probed

        probed = self._try_sorted_probe(
            acc_columns, acc_length, acc_layout, left_columns, child, right_columns,
            ctx, memo,
        )
        if probed is not None:
            return probed

        right = child.batch(ctx, memo).materialize()
        ctx._bump("hash_joins")
        left_key = acc_layout.slots(left_columns)
        right_key = child.layout.slots(right_columns)
        spec = self._merge_spec(acc_layout, child.layout.columns)
        left_keys = _key_rows(acc_columns, left_key, acc_length)
        right_keys = _key_rows(right.columns, right_key, right.length)
        left_indexes: list[int] = []
        right_indexes: list[int] = []
        table: dict[tuple, list[int]] = {}
        # Same build-side choice as the row engines (build the smaller side,
        # iterate the larger in input order), so output order is identical.
        if right.length <= acc_length:
            for j, key in enumerate(right_keys):
                table.setdefault(key, []).append(j)
            for i, key in enumerate(left_keys):
                for j in table.get(key, ()):
                    left_indexes.append(i)
                    right_indexes.append(j)
        else:
            for i, key in enumerate(left_keys):
                table.setdefault(key, []).append(i)
            for j, key in enumerate(right_keys):
                for i in table.get(key, ()):
                    left_indexes.append(i)
                    right_indexes.append(j)
        out = _merge_columns_left_wins(
            spec, acc_columns, left_indexes, right.columns, right_indexes
        )
        return out, len(left_indexes), spec.layout

    def _try_index_probe(
        self,
        acc_columns: Sequence[Sequence[Any]],
        acc_length: int,
        acc_layout: SlotLayout,
        left_columns: list[str],
        child: ColumnarOp,
        right_columns: list[str],
        ctx: EvaluationContext,
        memo: dict[int, Any],
    ) -> tuple[list[list], int, SlotLayout] | None:
        """Bulk index nested-loop probe (same profitability test as the oracle)."""
        if not isinstance(child, CTableScan):
            return None
        right_op: TableOp = child.logical  # type: ignore[assignment]
        if right_op.variant not in (TableVariant.CURRENT, TableVariant.OLD):
            return None
        transition = ctx.trigger_context
        old_of_updated_table = (
            right_op.variant is TableVariant.OLD
            and transition is not None
            and transition.table == right_op.table
        )
        if right_op.id in memo or (_HASHED_SCAN, right_op.id) in memo:
            return None  # the row engines hash here; _try_sorted_probe mirrors them
        table = ctx.database.table(right_op.table)
        schema = table.schema
        prefix = f"{right_op.alias}."
        base_columns = []
        for column in right_columns:
            if not column.startswith(prefix):
                return None
            base_columns.append(column[len(prefix):])
        primary = tuple(base_columns) == tuple(schema.primary_key)
        if not (primary or table.has_index_on(base_columns)):
            return None
        if acc_length > max(16, _PROBE_RATIO * len(table)):
            return None
        ctx._bump("index_probes", acc_length)

        inserted_keys: set[tuple] = set()
        deleted_by_probe: dict[tuple, list[tuple]] = {}
        if old_of_updated_table and transition is not None:
            inserted_keys = {schema.key_of(row) for row in transition.net_inserted}
            probe_indexes = [schema.column_index(column) for column in base_columns]
            for row in transition.net_deleted:
                deleted_by_probe.setdefault(
                    tuple(row[i] for i in probe_indexes), []
                ).append(row)

        # Matches are raw storage tuples, so the merge reads them through
        # schema indexes ({**left, ...right columns...}: right wins dups).
        spec = self._merge_spec(acc_layout, child.layout.columns)
        column_order = [schema.column_index(name) for name in right_op.columns]
        append_sources = tuple(column_order[i] for i in spec.append)
        overwrite_sources = tuple(
            (acc_slot, column_order[right_slot]) for acc_slot, right_slot in spec.overwrite
        )
        left_key = acc_layout.slots(left_columns)

        left_indexes: list[int] = []
        matched_rows: list[tuple] = []
        for i, probe_value in enumerate(_key_rows(acc_columns, left_key, acc_length)):
            if primary:
                match = table.get(probe_value)
                matches = [match] if match is not None else []
            else:
                matches = table.lookup(base_columns, probe_value)
            if old_of_updated_table:
                matches = [row for row in matches if schema.key_of(row) not in inserted_keys]
                matches = matches + deleted_by_probe.get(probe_value, [])
            for row in matches:
                left_indexes.append(i)
                matched_rows.append(row)

        out = [_gather(column, left_indexes) for column in acc_columns]
        for acc_slot, source in overwrite_sources:
            out[acc_slot] = [row[source] for row in matched_rows]
        out.extend([row[source] for row in matched_rows] for source in append_sources)
        return out, len(left_indexes), spec.layout

    def _try_sorted_probe(
        self,
        acc_columns: Sequence[Sequence[Any]],
        acc_length: int,
        acc_layout: SlotLayout,
        left_columns: list[str],
        child: ColumnarOp,
        right_columns: list[str],
        ctx: EvaluationContext,
        memo: dict[int, Any],
    ) -> tuple[list[list], int, SlotLayout] | None:
        """Bulk index probe that reproduces hash-join output order.

        The row engines refuse to index-probe a scan that is already
        materialized in the memo and hash-join instead, iterating the larger
        (scan) side in storage order — O(table) per firing even when the
        accumulator is a handful of delta rows.  That re-iteration is the
        single hottest per-statement cost on the trigger-scaling stress.

        The columnar engine probes the table's incrementally-maintained hash
        indexes instead (O(matched rows)), then sorts the matches by their
        position in scan order — :meth:`Table.scan_positions` — which makes
        the output row order *identical* to the hash join the row engines
        ran: iterating the scan side emits matches right-major, ties in left
        (accumulator) order.  Order equivalence matters because downstream
        GroupBy operators fold XML fragments in input order.

        The probe leaves a ``(_HASHED_SCAN, id, length)`` sentinel in the
        memo so later join-order estimates and probe decisions keep
        mirroring the row engines, whose memo *does* hold the scan after
        their hash join materialized it.
        """
        if not isinstance(child, CTableScan):
            return None
        right_op: TableOp = child.logical  # type: ignore[assignment]
        if right_op.variant not in (TableVariant.CURRENT, TableVariant.OLD):
            return None
        if right_op.id not in memo and (_HASHED_SCAN, right_op.id) not in memo:
            return None  # an unmaterialized scan is _try_index_probe's case
        transition = ctx.trigger_context
        old_of_updated_table = (
            right_op.variant is TableVariant.OLD
            and transition is not None
            and transition.table == right_op.table
        )
        table = ctx.database.table(right_op.table)
        schema = table.schema
        if old_of_updated_table and not schema.primary_key:
            return None  # OLD reconstruction removes inserted rows by key
        prefix = f"{right_op.alias}."
        base_columns = []
        for column in right_columns:
            if not column.startswith(prefix):
                return None
            base_columns.append(column[len(prefix):])
        primary = tuple(base_columns) == tuple(schema.primary_key)
        if not (primary or table.has_index_on(base_columns)):
            return None

        inserted_keys: set[tuple] = set()
        deleted_with_pos: dict[tuple, list[tuple[int, tuple]]] = {}
        right_len = len(table)
        if old_of_updated_table and transition is not None:
            inserted_keys = {schema.key_of(row) for row in transition.net_inserted}
            probe_indexes = [schema.column_index(column) for column in base_columns]
            # Deleted rows follow every current row in OLD scan order, in
            # net-delta order (TriggerContext.old_table_rows), so their sort
            # positions start past the current table's.
            for ordinal, row in enumerate(transition.net_deleted):
                deleted_with_pos.setdefault(
                    tuple(row[i] for i in probe_indexes), []
                ).append((len(table) + ordinal, row))
            right_len = (
                len(table)
                - sum(1 for key in inserted_keys if table.contains_key(key))
                + len(transition.net_deleted)
            )
        # This path replaces only the hash branch that iterates the scan side
        # (right strictly larger); with the accumulator at least as large the
        # row engines iterate it instead, which stays cheap — let them.
        if right_len <= acc_length:
            return None
        if acc_length > max(16, _PROBE_RATIO * right_len):
            return None
        ctx._bump("index_probes", acc_length)

        positions = table.scan_positions()
        spec = self._merge_spec(acc_layout, child.layout.columns)
        column_order = [schema.column_index(name) for name in right_op.columns]
        append_sources = tuple(column_order[i] for i in spec.append)
        overwrite_sources = tuple(
            (acc_slot, column_order[right_slot]) for acc_slot, right_slot in spec.overwrite
        )
        left_key = acc_layout.slots(left_columns)

        hits: list[tuple[int, int, tuple]] = []  # (scan position, left index, row)
        for i, probe_value in enumerate(_key_rows(acc_columns, left_key, acc_length)):
            if primary:
                row = table.get(probe_value)
                if row is not None and probe_value not in inserted_keys:
                    hits.append((positions[probe_value], i, row))
            else:
                for storage_key, row in table.indexed_rows(base_columns, probe_value):
                    if old_of_updated_table and schema.key_of(row) in inserted_keys:
                        continue
                    hits.append((positions[storage_key], i, row))
            for pos, row in deleted_with_pos.get(probe_value, ()):
                hits.append((pos, i, row))
        hits.sort(key=lambda hit: (hit[0], hit[1]))
        memo[(_HASHED_SCAN, right_op.id)] = right_len

        left_indexes = [hit[1] for hit in hits]
        matched_rows = [hit[2] for hit in hits]
        out = [_gather(column, left_indexes) for column in acc_columns]
        for acc_slot, source in overwrite_sources:
            out[acc_slot] = [row[source] for row in matched_rows]
        out.extend([row[source] for row in matched_rows] for source in append_sources)
        return out, len(hits), spec.layout


class CTwoWayJoin(ColumnarOp):
    """Left-outer and anti joins over column batches.

    Candidate matches are filtered by the row-compiled join condition (these
    joins apply it per *candidate pair*, which has no batch shape), then the
    kept index pairs materialize column-wise; the trailing post-condition —
    the interpreter applies join conditions twice for these kinds — runs
    vectorized over the assembled output batch.
    """

    __slots__ = ("left", "right", "join_kind", "left_key", "right_key",
                 "merge_spec", "condition", "post_mask")

    def __init__(self, logical: JoinOp, left: ColumnarOp, right: ColumnarOp) -> None:
        super().__init__(logical, SlotLayout(logical.output_columns))
        self.left = left
        self.right = right
        self.join_kind = logical.join_kind
        pairs = _pairs_for(
            set(left.layout.columns), set(right.layout.columns), logical.equi_pairs
        )
        self.left_key = left.layout.slots([a for a, _ in pairs])
        self.right_key = right.layout.slots([b for _, b in pairs])
        # {**left, **match}: the right side wins duplicated columns.
        self.merge_spec = _MergeSpec(left.layout, right.layout.columns)
        self.condition = (
            compile_predicate(logical.condition, self.merge_spec.layout.index)
            if logical.condition is not None
            else None
        )
        self.post_mask = (
            compile_predicate_columns(logical.condition, self.layout.index)
            if logical.condition is not None
            else None
        )

    def _matches(
        self,
        table: dict[tuple, list[int]],
        key: tuple,
        left_row: tuple | None,
        left_batch: ColumnBatch,
        right_batch: ColumnBatch,
        parameters,
    ) -> list[int]:
        matches = table.get(key, [])
        condition = self.condition
        if condition is not None and matches:
            merge = self.merge_spec.merge_right_wins
            right_columns = right_batch.columns
            matches = [
                j
                for j in matches
                if condition(
                    merge(left_row, tuple(column[j] for column in right_columns)),
                    parameters,
                )
            ]
        return matches

    def _compute(self, ctx: EvaluationContext, memo: dict[int, Any]) -> ColumnBatch:
        left = self.left.batch(ctx, memo).materialize()
        right = self.right.batch(ctx, memo).materialize()
        ctx._bump("hash_joins")
        table: dict[tuple, list[int]] = {}
        for j, key in enumerate(_key_rows(right.columns, self.right_key, right.length)):
            table.setdefault(key, []).append(j)

        left_keys = _key_rows(left.columns, self.left_key, left.length)
        parameters = ctx.parameters
        needs_left_row = self.condition is not None
        left_columns = left.columns

        if self.join_kind is JoinKind.ANTI:
            sel: list[int] = []
            for i, key in enumerate(left_keys):
                left_row = (
                    tuple(column[i] for column in left_columns) if needs_left_row else None
                )
                if not self._matches(table, key, left_row, left, right, parameters):
                    sel.append(i)
            if len(sel) == left.length:
                output = left
            else:
                output = ColumnBatch(left.columns, left.length, sel).materialize()
        elif self.join_kind is JoinKind.LEFT_OUTER:
            left_indexes: list[int] = []
            right_indexes: list[int] = []  # -1 marks the null-extended row
            for i, key in enumerate(left_keys):
                left_row = (
                    tuple(column[i] for column in left_columns) if needs_left_row else None
                )
                matches = self._matches(table, key, left_row, left, right, parameters)
                if matches:
                    for j in matches:
                        left_indexes.append(i)
                        right_indexes.append(j)
                else:
                    left_indexes.append(i)
                    right_indexes.append(-1)
            spec = self.merge_spec
            out = [_gather(column, left_indexes) for column in left.columns]
            for acc_slot, right_slot in spec.overwrite:
                column = right.columns[right_slot]
                out[acc_slot] = [column[j] if j >= 0 else None for j in right_indexes]
            for right_slot in spec.append:
                column = right.columns[right_slot]
                out.append([column[j] if j >= 0 else None for j in right_indexes])
            output = ColumnBatch(out, len(left_indexes))
        else:
            raise EvaluationError(
                f"unsupported join kind {self.join_kind!r}"
            )  # pragma: no cover
        post_mask = self.post_mask
        if post_mask is not None:
            flags = post_mask(output.columns, output.length, parameters)
            sel = [i for i, keep in enumerate(flags) if keep]
            if len(sel) != output.length:
                output = ColumnBatch(output.columns, output.length, sel).materialize()
        return output


class CGroupBy(ColumnarOp):
    """Group row indexes per key and run vectorized aggregates per run."""

    __slots__ = ("input", "grouping_slots", "order_slots", "aggregates")

    def __init__(self, logical: GroupByOp, input_op: ColumnarOp) -> None:
        super().__init__(logical, SlotLayout(logical.output_columns))
        self.input = input_op
        self.grouping_slots = input_op.layout.slots(logical.grouping)
        self.order_slots = input_op.layout.slots(logical.order_within_group)
        self.aggregates = tuple(
            aggregate.compile_columns(input_op.layout.index)
            for aggregate in logical.aggregates
        )

    def _compute(self, ctx: EvaluationContext, memo: dict[int, Any]) -> ColumnBatch:
        batch = self.input.batch(ctx, memo).materialize()
        columns, length = batch.columns, batch.length
        grouping_slots = self.grouping_slots
        groups: dict[tuple, list[int]] = {}
        order: list[tuple] = []
        for i, key in enumerate(_key_rows(columns, grouping_slots, length)):
            run = groups.get(key)
            if run is None:
                groups[key] = run = []
                order.append(key)
            run.append(i)

        if not grouping_slots and not groups:
            groups[()] = []
            order.append(())

        order_slots = self.order_slots
        aggregates = self.aggregates
        parameters = ctx.parameters
        key_width = len(grouping_slots)
        output: list[list] = [[] for _ in range(self.width)]
        for key in order:
            run = groups[key]
            if order_slots:
                # Sort-clustered runs: indexes ordered per order_within_group
                # (stable, so ties keep input order like the row engines).
                run = sorted(
                    run,
                    key=lambda i: tuple(sort_key(columns[s][i]) for s in order_slots),
                )
            for slot in range(key_width):
                output[slot].append(key[slot])
            for offset, aggregate in enumerate(aggregates):
                output[key_width + offset].append(aggregate(columns, run, parameters))
        return ColumnBatch(output, len(order))


class CUnion(ColumnarOp):
    """Union with per-input column permutations and optional deduplication."""

    __slots__ = ("children", "projections", "all")

    def __init__(self, logical: UnionOp, children: Sequence[ColumnarOp]) -> None:
        super().__init__(logical, SlotLayout(logical.output_columns))
        self.children = tuple(children)
        self.all = logical.all
        projections = []
        for child, mapping in zip(children, logical.mappings):
            projections.append(
                child.layout.slots(
                    [mapping[column] for column in logical.output_columns]
                )
            )
        self.projections = tuple(projections)

    def _compute(self, ctx: EvaluationContext, memo: dict[int, Any]) -> ColumnBatch:
        output: list[list] = [[] for _ in range(self.width)]
        length = 0
        seen: set[tuple] = set()
        keep_all = self.all
        for child, projection in zip(self.children, self.projections):
            batch = child.batch(ctx, memo).materialize()
            projected = [batch.columns[i] for i in projection]
            if keep_all:
                for slot, column in enumerate(projected):
                    output[slot].extend(column)
                length += batch.length
                continue
            rows = zip(*projected) if projected else iter([()] * batch.length)
            for row in rows:
                fingerprint = tuple(_hashable(value) for value in row)
                if fingerprint in seen:
                    continue
                seen.add(fingerprint)
                for slot, value in enumerate(row):
                    output[slot].append(value)
                length += 1
        return ColumnBatch(output, length)


class CUnnest(ColumnarOp):
    """Explode an XML fragment column into one output row per item."""

    __slots__ = ("input", "source_slot", "item_slot", "ordinal_slot")

    def __init__(self, logical: UnnestOp, input_op: ColumnarOp) -> None:
        super().__init__(logical, SlotLayout(logical.output_columns))
        self.input = input_op
        self.source_slot = input_op.layout.index.get(logical.source_column)
        self.item_slot = self.layout.index[logical.item_column]
        self.ordinal_slot = (
            self.layout.index[logical.ordinal_column] if logical.ordinal_column else None
        )

    def _compute(self, ctx: EvaluationContext, memo: dict[int, Any]) -> ColumnBatch:
        from repro.xmlmodel.node import Fragment

        source_slot = self.source_slot
        if source_slot is None:
            return self._empty()  # row.get(missing source) is None for every row
        batch = self.input.batch(ctx, memo).materialize()
        item_slot = self.item_slot
        ordinal_slot = self.ordinal_slot
        width = self.width
        input_width = len(batch.columns)
        source = batch.columns[source_slot]
        # First pass: explode the source column into (input row, item) pairs;
        # second pass: gather every passthrough column once.
        input_indexes: list[int] = []
        items: list[Any] = []
        ordinals: list[int] = []
        for i in range(batch.length):
            value = source[i]
            if value is None:
                continue
            if isinstance(value, Fragment):
                exploded = list(value.items)
            elif isinstance(value, (list, tuple)):
                exploded = list(value)
            else:
                exploded = [value]
            for ordinal, item in enumerate(exploded):
                input_indexes.append(i)
                items.append(item)
                ordinals.append(ordinal)
        length = len(input_indexes)
        output: list[list] = []
        for slot in range(width):
            if slot == item_slot:
                output.append(items)
            elif ordinal_slot is not None and slot == ordinal_slot:
                output.append(ordinals)
            elif slot < input_width:
                output.append(_gather(batch.columns[slot], input_indexes))
            else:
                output.append([None] * length)
        return ColumnBatch(output, length)


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------


class ColumnarPlan:
    """A compiled, immutable columnar plan for one logical graph.

    Like :class:`~repro.xqgm.physical.PhysicalPlan`, plans bind only schema
    information and receive the database through the evaluation context, so
    one plan is safe to share across threads and shard services.
    """

    def __init__(self, root: ColumnarOp) -> None:
        self.root = root
        self.layout = root.layout

    def execute(self, context: EvaluationContext) -> ColumnBatch:
        """Evaluate the plan; returns the root's :class:`ColumnBatch`."""
        memo: dict[int, Any] = {}
        return self.root.batch(context, memo)

    def result_stamp(
        self, context: EvaluationContext, cache_context_results: bool
    ) -> tuple | None:
        """The root's freshness stamp, or ``None`` when results can't be reused.

        This is exactly the stamp :meth:`ColumnarOp.batch` would assemble for
        the root: two executions under equal stamps produce equal results, so
        callers (the pushdown layer's per-translation pairs memo) may reuse a
        derived result without entering the engine at all.  Returns ``None``
        for VOLATILE roots and for CONTEXT roots outside a firing (or when
        context-scoped reuse is disabled), mirroring the result cache's
        eligibility gate.
        """
        root = self.root
        database = context.database
        if root.stability == STABLE:
            return tuple(
                database.table(name).version_stamp for name in root.table_deps
            )
        if (
            root.stability == CONTEXT
            and cache_context_results
            and context.trigger_context is not None
        ):
            return (context.trigger_context.context_token,) + tuple(
                database.table(name).version_stamp for name in root.table_deps
            )
        return None

    def execute_rows(self, context: EvaluationContext) -> list[tuple]:
        """Evaluate and convert to the physical engine's slot-row form."""
        return self.execute(context).to_rows()

    def execute_mappings(self, context: EvaluationContext) -> list[dict[str, Any]]:
        """Evaluate and convert to the interpreter's dict-row representation."""
        columns = self.layout.columns
        return [dict(zip(columns, row)) for row in self.execute_rows(context)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ColumnarPlan(root={self.root.kind}, columns={list(self.layout.columns)})"


def _expression_uses_parameters_precise(expression: Any) -> bool:
    """Parameter-dependence test honouring a ``uses_parameters()`` hook.

    Falls back to the conservative
    :func:`~repro.xqgm.expressions.expression_uses_parameters` for expression
    types without the hook.  The row compiler deliberately keeps the
    conservative test (its classification — and therefore its measured
    baseline — is pinned by PR 4's suites); only the columnar engine opts
    into precision.
    """
    hook = getattr(expression, "uses_parameters", None)
    if hook is not None:
        return bool(hook())
    return expression_uses_parameters(expression)


class _ColumnarCompiler:
    """Mirror of :class:`repro.xqgm.physical._Compiler` for columnar nodes.

    The stability derivation is identical except for the precise
    parameter-dependence test (see module docstring); the heavy-subtree
    eligibility rule and table-dependency union are byte-for-byte the same.
    """

    def __init__(self, catalog) -> None:
        self.catalog = catalog
        self.memo: dict[int, ColumnarOp] = {}
        self._heavy: dict[int, bool] = {}

    def compile(self, op: Operator) -> ColumnarOp:
        node = self.memo.get(op.id)
        if node is not None:
            return node
        node = self._build(op)
        if isinstance(op, TableOp):
            children: list[ColumnarOp] = []
            stability = STABLE if op.variant is TableVariant.CURRENT else CONTEXT
        elif isinstance(op, ConstantsOp):
            children = []
            stability = VOLATILE
        else:
            children = [self.memo[input_op.id] for input_op in op.inputs]
            stability = min(child.stability for child in children)
            if stability != VOLATILE and _operator_uses_parameters(
                op, _expression_uses_parameters_precise
            ):
                stability = VOLATILE
        deps: set[str] = set()
        for child in children:
            deps.update(child.table_deps)
        if isinstance(op, TableOp):
            deps.add(op.table)
        node.table_deps = tuple(sorted(deps))
        node.stability = stability
        self._heavy[op.id] = isinstance(op, (JoinOp, GroupByOp, UnionOp)) or any(
            self._heavy[input_op.id] for input_op in op.inputs
        )
        node.cache_eligible = stability != VOLATILE and self._heavy[op.id]
        self.memo[op.id] = node
        return node

    def _build(self, op: Operator) -> ColumnarOp:
        if isinstance(op, TableOp):
            return CTableScan(op, self.catalog.schema(op.table))
        if isinstance(op, ConstantsOp):
            return CConstants(op)
        if isinstance(op, SelectOp):
            return CSelect(op, self.compile(op.input))
        if isinstance(op, ProjectOp):
            return CProject(op, self.compile(op.input))
        if isinstance(op, JoinOp):
            children = [self.compile(input_op) for input_op in op.inputs]
            if op.join_kind is JoinKind.INNER:
                return CInnerJoin(op, children)
            return CTwoWayJoin(op, children[0], children[1])
        if isinstance(op, GroupByOp):
            return CGroupBy(op, self.compile(op.input))
        if isinstance(op, UnionOp):
            return CUnion(op, [self.compile(input_op) for input_op in op.inputs])
        if isinstance(op, UnnestOp):
            return CUnnest(op, self.compile(op.input))
        raise EvaluationError(f"cannot compile operator {op.kind} to columnar form")


def compile_columnar_plan(top: Operator, catalog) -> ColumnarPlan:
    """Lower the logical graph rooted at ``top`` into a columnar plan.

    ``catalog`` is the :class:`~repro.relational.database.Database` whose
    schemas bind unbound table scans; only schema information is captured, so
    one compiled plan may execute against any database with the same catalog.
    Raises :class:`~repro.errors.EvaluationError` for operators without a
    columnar lowering — callers (the pushdown translator) record the error
    and fall back to the row engines, counting the fallback in
    ``evaluation_report`` so it is never silent.
    """
    root = _ColumnarCompiler(catalog).compile(top)
    if root.stability != VOLATILE:
        root.cache_eligible = True
    return ColumnarPlan(root)
