"""Evaluation of XQGM graphs over the relational database.

The evaluator plays two roles:

* it materializes XML views and path graphs for the MATERIALIZED baseline,
  the oracle used in tests, and ad-hoc queries over views;
* it executes the *generated* trigger graphs (affected keys, affected nodes,
  grouped parameters) inside SQL statement triggers, reading the transition
  tables through the :class:`~repro.relational.triggers.TriggerContext`.

Joins use hash joins by default, and — mirroring the join/selection pushdown
the paper inherits from XPERANTO [23] plus the indexes built in Section 6.1 —
switch to *index nested-loop probing* when one side is a base-table scan with
a matching hash index and the other side is already small (the typical shape
after affected-key computation: a handful of keys probing a large table).
This is what keeps trigger evaluation roughly independent of database size
(Figure 23).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import EvaluationError
from repro.relational.database import Database
from repro.relational.triggers import TriggerContext
from repro.xqgm.expressions import predicate_holds
from repro.xqgm.operators import (
    ConstantsOp,
    GroupByOp,
    JoinKind,
    JoinOp,
    Operator,
    ProjectOp,
    SelectOp,
    TableOp,
    TableVariant,
    UnionOp,
    UnnestOp,
)
from repro.relational.types import sort_key
from repro.xmlmodel.node import Fragment, XmlNode

__all__ = ["EvaluationContext", "evaluate"]

Row = dict[str, Any]

# Probing a base table through an index beats a hash join when the driving
# side is much smaller than the table; this threshold guards the switch.
_PROBE_RATIO = 0.5


@dataclass
class EvaluationContext:
    """Everything needed to evaluate an XQGM graph.

    ``trigger_context`` supplies the transition tables and the pre-update
    table state when the graph contains non-CURRENT table variants.
    ``parameters`` binds :class:`~repro.xqgm.expressions.Parameter`
    expressions (used for correlated grouped evaluation).
    ``constants_tables`` maps constants-table names to their rows
    (Section 5.1).
    """

    database: Database
    trigger_context: TriggerContext | None = None
    parameters: Mapping[str, Any] | None = None
    constants_tables: Mapping[str, Sequence[Mapping[str, Any]]] = field(default_factory=dict)
    collect_stats: bool = False
    stats: dict[str, int] = field(default_factory=dict)
    #: Optional :class:`repro.xqgm.physical.ResultCache` enabling the
    #: version-stamped reuse of stable subplan results across firings.  Only
    #: consulted by the compiled physical engine; the interpreter (the oracle)
    #: always evaluates from scratch.
    result_cache: Any = None
    #: Whether CONTEXT-level (delta-dependent, statement-shared) subplan
    #: results may be cached.  Services disable this when only one trigger
    #: group is installed — each plan then runs once per firing, so there is
    #: nothing to share and the bookkeeping would be pure overhead; STABLE
    #: (cross-statement) caching stays on regardless.
    cache_context_results: bool = True
    #: Number of column batches materialized by the columnar engine
    #: (:mod:`repro.xqgm.columnar`) during this evaluation — one per operator
    #: `_compute`, excluding memo/result-cache hits.  Always maintained (not
    #: gated on ``collect_stats``) so services can report batch counts from
    #: the hot path; the row engines leave it at zero.
    columnar_batches: int = 0

    def _bump(self, counter: str, amount: int = 1) -> None:
        """Increment a stats counter when stats collection is enabled.

        Counters maintained by both engines: per-operator output sizes
        (``rows_<kind>``), ``table_scans``, ``index_probes`` and
        ``hash_joins``; the physical engine additionally counts
        ``cache_hits`` (version-stamped result-cache reuse).
        """
        if self.collect_stats:
            self.stats[counter] = self.stats.get(counter, 0) + amount


def evaluate(top: Operator, context: EvaluationContext) -> list[Row]:
    """Evaluate the graph rooted at ``top`` and return its output tuples."""
    memo: dict[int, list[Row]] = {}
    return _evaluate(top, context, memo)


def _evaluate(op: Operator, ctx: EvaluationContext, memo: dict[int, list[Row]]) -> list[Row]:
    if op.id in memo:
        return memo[op.id]
    if isinstance(op, TableOp):
        rows = _evaluate_table(op, ctx)
    elif isinstance(op, ConstantsOp):
        rows = _evaluate_constants(op, ctx)
    elif isinstance(op, SelectOp):
        rows = [
            row
            for row in _evaluate(op.input, ctx, memo)
            if predicate_holds(op.predicate, row, ctx.parameters)
        ]
    elif isinstance(op, ProjectOp):
        rows = [
            {name: expr.evaluate(row, ctx.parameters) for name, expr in op.projections}
            for row in _evaluate(op.input, ctx, memo)
        ]
    elif isinstance(op, JoinOp):
        rows = _evaluate_join(op, ctx, memo)
    elif isinstance(op, GroupByOp):
        rows = _evaluate_groupby(op, ctx, memo)
    elif isinstance(op, UnionOp):
        rows = _evaluate_union(op, ctx, memo)
    elif isinstance(op, UnnestOp):
        rows = _evaluate_unnest(op, ctx, memo)
    else:  # pragma: no cover - defensive
        raise EvaluationError(f"cannot evaluate operator {op.kind}")
    memo[op.id] = rows
    ctx._bump(f"rows_{op.kind.lower()}", len(rows))
    return rows


# ---------------------------------------------------------------------------
# Table variants
# ---------------------------------------------------------------------------


def _table_rows(op: TableOp, ctx: EvaluationContext) -> list[tuple]:
    table = ctx.database.table(op.table)
    variant = op.variant
    if variant is TableVariant.CURRENT:
        return table.rows()

    transition = ctx.trigger_context
    if variant is TableVariant.OLD:
        if transition is None or transition.table != op.table:
            # A table untouched by the triggering statement has identical old
            # and new contents (statement triggers see exactly one table's
            # changes at a time).
            return table.rows()
        return transition.old_table_rows()

    if transition is None:
        raise EvaluationError(
            f"table variant {variant.value!r} on {op.table!r} requires a trigger context"
        )
    if transition.table != op.table:
        return []
    # Delta scans read the *net* transition tables: identical to the plain
    # statement tables for per-statement firings, and the whole batch's net
    # delta for batched firings — so every event slice of a batch computes
    # affected keys and compensated old aggregates over the same (complete)
    # change set.
    if variant is TableVariant.DELTA_INSERTED:
        return list(transition.net_inserted.rows)
    if variant is TableVariant.DELTA_DELETED:
        return list(transition.net_deleted.rows)
    if variant is TableVariant.PRUNED_INSERTED:
        return list(transition.net_pruned_inserted().rows)
    if variant is TableVariant.PRUNED_DELETED:
        return list(transition.net_pruned_deleted().rows)
    raise EvaluationError(f"unknown table variant {variant!r}")  # pragma: no cover


def _evaluate_table(op: TableOp, ctx: EvaluationContext) -> list[Row]:
    schema = ctx.database.schema(op.table)
    if op.columns is None:
        op.bind_schema(schema.column_names)
    ctx._bump("table_scans")
    rows = _table_rows(op, ctx)
    column_indexes = [(op.qualified(name), schema.column_index(name)) for name in op.columns]
    return [{qualified: row[index] for qualified, index in column_indexes} for row in rows]


def _evaluate_constants(op: ConstantsOp, ctx: EvaluationContext) -> list[Row]:
    rows = ctx.constants_tables.get(op.name)
    if rows is None:
        raise EvaluationError(f"constants table {op.name!r} not bound in the evaluation context")
    output = []
    for row in rows:
        missing = [c for c in op.output_columns if c not in row]
        if missing:
            raise EvaluationError(
                f"constants table {op.name!r} row is missing columns {missing!r}"
            )
        output.append({c: row[c] for c in op.output_columns})
    return output


# ---------------------------------------------------------------------------
# Joins
# ---------------------------------------------------------------------------


def _evaluate_join(op: JoinOp, ctx: EvaluationContext, memo: dict[int, list[Row]]) -> list[Row]:
    if op.join_kind is JoinKind.INNER:
        rows = _evaluate_inner_join(op, ctx, memo)
    else:
        rows = _evaluate_two_way_join(op, ctx, memo)
    if op.condition is not None:
        rows = [row for row in rows if predicate_holds(op.condition, row, ctx.parameters)]
    return rows


def _pairs_for(
    accumulated_columns: set[str], new_columns: set[str], equi_pairs: Sequence[tuple[str, str]]
) -> list[tuple[str, str]]:
    """Equi pairs usable when joining the accumulated result with a new input.

    Each returned pair is oriented as (accumulated column, new-input column).
    """
    usable = []
    for a, b in equi_pairs:
        if a in accumulated_columns and b in new_columns:
            usable.append((a, b))
        elif b in accumulated_columns and a in new_columns:
            usable.append((b, a))
    return usable


def _zero_size(database: Database) -> int:
    return 0


def _cost_template(op: Operator) -> tuple[int, Callable[[Database], int]]:
    """Static ``(rank, size estimator)`` summary of an operator subtree.

    The template is structural, so it is computed once and cached on the
    operator (graphs are immutable after translation): ``rank`` 0 marks
    delta-driven subtrees (bounded by transition-table size, estimated ~0),
    2 marks bare base-table scans (probe-friendly — they must come last so
    the index probe can kick in), and 1 everything in between.  The size
    estimator reads current table sizes at evaluation time through a
    compiled closure chain: equi joins and unary operators are bounded by
    their smallest input, while a union's output is the *sum* of its
    branches (the UNION ALL bound; distinct unions are smaller).
    """
    cached = getattr(op, "_cost_template", None)
    if cached is not None:
        return cached
    if isinstance(op, TableOp):
        if op.variant.is_delta:
            template: tuple[int, Callable[[Database], int]] = (0, _zero_size)
        else:
            template = (
                2, lambda database, _name=op.table: len(database.table(_name))
            )
    elif isinstance(op, ConstantsOp):
        template = (0, _zero_size)
    else:
        inner = [_cost_template(input_op) for input_op in op.inputs]
        if not inner:
            template = (1, _zero_size)
        elif isinstance(op, UnionOp):
            rank = min(1, max(r for r, _ in inner))
            sizes = tuple(fn for _, fn in inner)
            template = (
                rank,
                lambda database, _fns=sizes: sum(fn(database) for fn in _fns),
            )
        else:
            # Unary operators and joins are bounded by their smallest input;
            # a subtree with any delta-driven leg is itself delta-driven.
            rank = min(1, min(r for r, _ in inner))
            if rank == 0:
                template = (0, _zero_size)
            elif len(inner) == 1:
                template = (rank, inner[0][1])
            else:
                sizes = tuple(fn for _, fn in inner)
                template = (
                    rank,
                    lambda database, _fns=sizes: min(fn(database) for fn in _fns),
                )
    op._cost_template = template  # idempotent; safe to race under the GIL
    return template


def _input_cost_estimate(
    op: Operator, ctx: EvaluationContext, memo: Mapping[int, Sequence]
) -> tuple:
    """Rough ``(rank, estimated rows)`` ordering heuristic for inner-join inputs.

    Transition-table scans (a handful of rows) should drive the join; bare
    base-table scans should come last so the index-probe path can kick in.
    This mirrors the join ordering a cost-based optimizer picks for the
    generated trigger queries (delta-driven plans, Figure 16).

    Already-evaluated (memoized) inputs report their exact cardinality at
    rank 0.  Unmemoized intermediates derive rank and a cardinality bound
    from their static subtree template instead of a flat ``(1, 0)``: a
    Select over a delta scan ranks with the deltas (tiny), while a GroupBy
    over a base table carries that table's size — so delta-driven
    intermediates drive the join and large stable subtrees sink toward the
    probe-friendly end.  The same function orders the compiled physical
    engine's joins (its memo maps the same logical operator ids to slot
    rows), keeping both engines' output row order identical whenever no
    result-cache hit has skipped a shared subplan's evaluation (a hit
    leaves nodes below it out of the memo, so a later join may fall back
    to the static estimates; the output multiset is unaffected).
    """
    if op.id in memo:
        return (0, len(memo[op.id]))
    rank, size = _cost_template(op)
    return (rank, size(ctx.database))


def _evaluate_inner_join(op: JoinOp, ctx: EvaluationContext, memo: dict[int, list[Row]]) -> list[Row]:
    # Order the inputs so that small / delta-driven inputs come first and
    # base-table scans last (probe-friendly); keep relative order for ties.
    indexed = list(enumerate(op.inputs))
    indexed.sort(key=lambda item: (_input_cost_estimate(item[1], ctx, memo), item[0]))
    ordered = [input_op for _, input_op in indexed]

    result: list[Row] | None = None
    result_columns: set[str] = set()
    consumed_pairs: set[tuple[str, str]] = set()
    remaining = list(ordered)

    while remaining:
        if result is None:
            input_op = remaining.pop(0)
            result = list(_evaluate(input_op, ctx, memo))
            result_columns = set(input_op.output_columns)
            continue
        # Prefer the next input that is connected to the accumulated result
        # through an equi pair (avoids intermediate cross products).
        chosen_index = None
        for candidate_index, candidate in enumerate(remaining):
            if _pairs_for(result_columns, set(candidate.output_columns), op.equi_pairs):
                chosen_index = candidate_index
                break
        if chosen_index is None:
            chosen_index = 0
        input_op = remaining.pop(chosen_index)
        input_columns = set(input_op.output_columns)
        pairs = _pairs_for(result_columns, input_columns, op.equi_pairs)
        pairs = [pair for pair in pairs if pair not in consumed_pairs]
        if pairs:
            result = _join_with(result, input_op, pairs, ctx, memo)
            consumed_pairs.update(pairs)
            consumed_pairs.update((b, a) for a, b in pairs)
        else:
            # Cross product (used by CreateAKGraph's union-of-cross-products).
            right_rows = _evaluate(input_op, ctx, memo)
            result = [{**left, **right} for left in result for right in right_rows]
        result_columns |= input_columns
    return result if result is not None else []


def _join_with(
    left_rows: list[Row],
    right_op: Operator,
    pairs: list[tuple[str, str]],
    ctx: EvaluationContext,
    memo: dict[int, list[Row]],
) -> list[Row]:
    left_columns = [a for a, _ in pairs]
    right_columns = [b for _, b in pairs]

    probe_rows = _try_index_probe(left_rows, left_columns, right_op, right_columns, ctx, memo)
    if probe_rows is not None:
        return probe_rows

    right_rows = _evaluate(right_op, ctx, memo)
    ctx._bump("hash_joins")
    # Hash join: build on the smaller side.
    if len(right_rows) <= len(left_rows):
        build_rows, build_cols, probe_rows_, probe_cols = right_rows, right_columns, left_rows, left_columns
        swap = False
    else:
        build_rows, build_cols, probe_rows_, probe_cols = left_rows, left_columns, right_rows, right_columns
        swap = True
    table: dict[tuple, list[Row]] = {}
    for row in build_rows:
        key = tuple(row[c] for c in build_cols)
        table.setdefault(key, []).append(row)
    output: list[Row] = []
    for row in probe_rows_:
        key = tuple(row[c] for c in probe_cols)
        for match in table.get(key, ()):
            output.append({**match, **row} if swap is False else {**row, **match})
    return output


def _try_index_probe(
    left_rows: list[Row],
    left_columns: list[str],
    right_op: Operator,
    right_columns: list[str],
    ctx: EvaluationContext,
    memo: dict[int, list[Row]],
) -> list[Row] | None:
    """Index nested-loop probe of a base table, when profitable and possible.

    Probing works for CURRENT scans and — when the transition tables are
    available — for OLD scans of the updated table: the current table is
    probed through its index and then corrected with the (small) transition
    tables, i.e. ``B_old[probe] = (B[probe] − ΔB) ∪ ∇B[probe]``.  This is the
    index-friendly equivalent of the paper's ``(B EXCEPT ΔB) UNION ∇B``
    reconstruction, and is what keeps the GROUPED strategy's old-side work
    independent of the database size.
    """
    if not isinstance(right_op, TableOp):
        return None
    if right_op.variant not in (TableVariant.CURRENT, TableVariant.OLD):
        return None
    transition = ctx.trigger_context
    old_of_updated_table = (
        right_op.variant is TableVariant.OLD
        and transition is not None
        and transition.table == right_op.table
    )
    if right_op.variant is TableVariant.OLD and transition is not None and not old_of_updated_table:
        # OLD scan of an untouched table is identical to CURRENT.
        old_of_updated_table = False
    if right_op.id in memo:  # already materialized; a hash join is cheaper
        return None
    table = ctx.database.table(right_op.table)
    schema = table.schema
    if right_op.columns is None:
        right_op.bind_schema(schema.column_names)
    # Right-side join columns must all belong to this table operator.
    prefix = f"{right_op.alias}."
    base_columns = []
    for column in right_columns:
        if not column.startswith(prefix):
            return None
        base_columns.append(column[len(prefix):])
    usable = (
        tuple(base_columns) == tuple(schema.primary_key)
        or table.has_index_on(base_columns)
    )
    if not usable:
        return None
    if len(left_rows) > max(16, _PROBE_RATIO * len(table)):
        return None
    ctx._bump("index_probes", len(left_rows))
    column_indexes = [
        (right_op.qualified(name), schema.column_index(name)) for name in right_op.columns
    ]

    inserted_keys: set[tuple] = set()
    deleted_by_probe: dict[tuple, list[tuple]] = {}
    if old_of_updated_table and transition is not None:
        # net_inserted / net_deleted cover the whole batch in batched firings,
        # so the probe correction matches old_table_rows() exactly.
        inserted_keys = {schema.key_of(row) for row in transition.net_inserted}
        probe_indexes = [schema.column_index(column) for column in base_columns]
        for row in transition.net_deleted:
            deleted_by_probe.setdefault(tuple(row[i] for i in probe_indexes), []).append(row)

    output: list[Row] = []
    for left in left_rows:
        probe_value = tuple(left[c] for c in left_columns)
        if tuple(base_columns) == tuple(schema.primary_key):
            match = table.get(probe_value)
            matches = [match] if match is not None else []
        else:
            matches = table.lookup(base_columns, probe_value)
        if old_of_updated_table:
            matches = [row for row in matches if schema.key_of(row) not in inserted_keys]
            matches = matches + deleted_by_probe.get(probe_value, [])
        for row in matches:
            merged = dict(left)
            for qualified, index in column_indexes:
                merged[qualified] = row[index]
            output.append(merged)
    return output


def _evaluate_two_way_join(op: JoinOp, ctx: EvaluationContext, memo: dict[int, list[Row]]) -> list[Row]:
    left_op, right_op = op.inputs
    left_rows = _evaluate(left_op, ctx, memo)
    right_rows = _evaluate(right_op, ctx, memo)
    left_cols = set(left_op.output_columns)
    right_cols = set(right_op.output_columns)
    pairs = _pairs_for(left_cols, right_cols, op.equi_pairs)

    ctx._bump("hash_joins")
    table: dict[tuple, list[Row]] = {}
    for row in right_rows:
        key = tuple(row[b] for _, b in pairs)
        table.setdefault(key, []).append(row)

    output: list[Row] = []
    if op.join_kind is JoinKind.ANTI:
        for left in left_rows:
            key = tuple(left[a] for a, _ in pairs)
            matches = table.get(key, [])
            if op.condition is not None:
                matches = [
                    m for m in matches
                    if predicate_holds(op.condition, {**left, **m}, ctx.parameters)
                ]
            if not matches:
                output.append(dict(left))
        return output

    if op.join_kind is JoinKind.LEFT_OUTER:
        null_right = {column: None for column in right_op.output_columns}
        for left in left_rows:
            key = tuple(left[a] for a, _ in pairs)
            matches = table.get(key, [])
            if op.condition is not None:
                matches = [
                    m for m in matches
                    if predicate_holds(op.condition, {**left, **m}, ctx.parameters)
                ]
            if matches:
                for match in matches:
                    output.append({**left, **match})
            else:
                output.append({**left, **null_right})
        return output

    raise EvaluationError(f"unsupported join kind {op.join_kind!r}")  # pragma: no cover


# ---------------------------------------------------------------------------
# GroupBy / Union / Unnest
# ---------------------------------------------------------------------------


def _evaluate_groupby(op: GroupByOp, ctx: EvaluationContext, memo: dict[int, list[Row]]) -> list[Row]:
    input_rows = _evaluate(op.input, ctx, memo)
    groups: dict[tuple, list[Row]] = {}
    order: list[tuple] = []
    for row in input_rows:
        key = tuple(row[column] for column in op.grouping)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)

    if not op.grouping and not groups:
        groups[()] = []
        order.append(())

    output: list[Row] = []
    for key in order:
        rows = groups[key]
        if op.order_within_group:
            rows = sorted(
                rows,
                key=lambda row: tuple(sort_key(row[c]) for c in op.order_within_group),
            )
        out: Row = dict(zip(op.grouping, key))
        for aggregate in op.aggregates:
            out[aggregate.name] = aggregate.compute(rows, ctx.parameters)
        output.append(out)
    return output


def _hashable(value: Any) -> Any:
    if isinstance(value, XmlNode):
        return ("xml", hash(value))
    return value


def _evaluate_union(op: UnionOp, ctx: EvaluationContext, memo: dict[int, list[Row]]) -> list[Row]:
    output: list[Row] = []
    seen: set[tuple] = set()
    for input_op, mapping in zip(op.inputs, op.mappings):
        for row in _evaluate(input_op, ctx, memo):
            projected = {
                output_column: row[input_column]
                for output_column, input_column in mapping.items()
            }
            if op.all:
                output.append(projected)
                continue
            fingerprint = tuple(_hashable(projected[c]) for c in op.output_columns)
            if fingerprint in seen:
                continue
            seen.add(fingerprint)
            output.append(projected)
    return output


def _evaluate_unnest(op: UnnestOp, ctx: EvaluationContext, memo: dict[int, list[Row]]) -> list[Row]:
    output: list[Row] = []
    for row in _evaluate(op.input, ctx, memo):
        value = row.get(op.source_column)
        if value is None:
            continue
        items: Iterable[Any]
        if isinstance(value, Fragment):
            items = list(value.items)
        elif isinstance(value, (list, tuple)):
            items = list(value)
        else:
            items = [value]
        for ordinal, item in enumerate(items):
            new_row = dict(row)
            new_row[op.item_column] = item
            if op.ordinal_column:
                new_row[op.ordinal_column] = ordinal
            output.append(new_row)
    return output
